"""Benchmark E10 — future-work extensions: RSM + availability manager (Section 5).

Regenerates the E10 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e10_extensions


def test_e10(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e10_extensions)
    assert tables and all(table.rows for table in tables)
