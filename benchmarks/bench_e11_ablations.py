"""Benchmark E11 — ablations of the design choices DESIGN.md §6 calls out.

Regenerates the E11 table; see EXPERIMENTS.md for the recorded output.
"""

from repro.experiments import e11_ablations


def test_e11(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e11_ablations)
    assert tables and all(table.rows for table in tables)
