"""Benchmark E1 — context-update loss vs backups and propagation period (Section 4).

Regenerates the E1 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e1_context_loss


def test_e1(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e1_context_loss)
    assert tables and all(table.rows for table in tables)
