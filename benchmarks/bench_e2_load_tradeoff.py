"""Benchmark E2 — per-server load vs backups and propagation period (Section 4).

Regenerates the E2 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e2_load_tradeoff


def test_e2(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e2_load_tradeoff)
    assert tables and all(table.rows for table in tables)
