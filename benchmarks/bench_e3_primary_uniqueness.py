"""Benchmark E3 — unique-primary violations by fault scenario (Section 4).

Regenerates the E3 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e3_primary_uniqueness


def test_e3(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e3_primary_uniqueness)
    assert tables and all(table.rows for table in tables)
