"""Benchmark E4 — failover duplicates vs propagation period (Section 3.1).

Regenerates the E4 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e4_failover_duplicates


def test_e4(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e4_failover_duplicates)
    assert tables and all(table.rows for table in tables)
