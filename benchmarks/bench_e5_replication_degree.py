"""Benchmark E5 — service outage vs replication degree (Section 4).

Regenerates the E5 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e5_replication_degree


def test_e5(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e5_replication_degree)
    assert tables and all(table.rows for table in tables)
