"""Benchmark E6 — failure-only vs join-type takeover (Section 3.4).

Regenerates the E6 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e6_takeover_latency


def test_e6(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e6_takeover_latency)
    assert tables and all(table.rows for table in tables)
