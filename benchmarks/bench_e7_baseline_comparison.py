"""Benchmark E7 — framework vs single-server / no-backup [2] / full-sync.

Regenerates the E7 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e7_baseline_comparison


def test_e7(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e7_baseline_comparison)
    assert tables and all(table.rows for table in tables)
