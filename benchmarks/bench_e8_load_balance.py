"""Benchmark E8 — fair client redistribution (Section 3.4).

Regenerates the E8 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e8_load_balance


def test_e8(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e8_load_balance)
    assert tables and all(table.rows for table in tables)
