"""Benchmark E9 — duplicate-vs-loss policies incl. MPEG (Section 4).

Regenerates the E9 table(s); see EXPERIMENTS.md for the recorded output
and the paper-vs-measured discussion.
"""

from repro.experiments import e9_uncertainty_policy


def test_e9(benchmark, experiment_runner):
    tables = experiment_runner(benchmark, e9_uncertainty_policy)
    assert tables and all(table.rows for table in tables)
