"""G1 — GCS micro-benchmarks: the substrate the framework stands on.

Not a paper table; these quantify the primitives Section 3.2 assumes:
totally ordered multicast throughput (simulated messages per wall-second,
i.e. simulator efficiency), view-change convergence latency vs group
size, and the client open-group injection path.
"""

import os

from repro.metrics.report import Table
from tests.gcs.conftest import GcsWorld


def _throughput_world(n_daemons: int, n_messages: int) -> float:
    world = GcsWorld(n_daemons)
    world.settle()
    for node in world.daemon_ids:
        world.daemons[node].join("g")
    world.run(1.0)
    for index in range(n_messages):
        world.daemons[world.daemon_ids[index % n_daemons]].mcast("g", index)
    world.run(30.0)
    delivered = len(world.apps[world.daemon_ids[0]].payloads("g"))
    assert delivered == n_messages
    return world.sim.now


def test_total_order_throughput(benchmark):
    n_messages = 300 if os.environ.get("REPRO_BENCH_FULL") != "1" else 2000

    result = benchmark.pedantic(
        lambda: _throughput_world(4, n_messages), rounds=1, iterations=1
    )
    print(f"\nordered {n_messages} multicasts across 4 daemons "
          f"(simulated time {result:.1f}s)")


def test_view_change_latency(benchmark):
    table = Table(
        title="G1: view convergence latency after one crash vs group size",
        columns=["daemons", "converge_s"],
    )

    def sweep():
        for n in (2, 4, 8):
            world = GcsWorld(n)
            world.settle()
            world.daemons[world.daemon_ids[-1]].crash()
            t0 = world.sim.now
            survivors = world.daemon_ids[:-1]
            deadline = t0 + 10.0
            while world.sim.now < deadline:
                world.run(0.05)
                views = {world.daemons[s].config.view_id for s in survivors}
                members_ok = all(
                    set(world.daemons[s].config.members) == set(survivors)
                    for s in survivors
                )
                if len(views) == 1 and members_ok:
                    break
            table.add_row(n, world.sim.now - t0)
        return table

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(result.render())


def test_client_injection_roundtrip(benchmark):
    def once():
        world = GcsWorld(3)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        client, _ = world.add_client("c0")
        request_count = 50
        for index in range(request_count):
            client.mcast("g", index)
        world.run(5.0)
        delivered = len(world.apps["s0"].payloads("g"))
        assert delivered == request_count
        assert client.unacked_count == 0
        return delivered

    benchmark.pedantic(once, rounds=1, iterations=1)
