"""G1 — GCS micro-benchmarks: the substrate the framework stands on.

Not a paper table; these quantify the primitives Section 3.2 assumes:
totally ordered multicast throughput (both simulated seconds consumed
and real wall-clock msgs/s, i.e. simulator efficiency), the wire cost
of a delivered multicast with sequencer batching + heartbeat
piggybacking on vs off, view-change convergence latency vs group size,
and the client open-group injection path.

Results persist to ``BENCH_gcs_micro.json`` (see ``persist_bench`` in
``conftest.py``) so successive PRs can track the perf trajectory.
"""

import os
import time

from repro.gcs.settings import GcsSettings
from repro.metrics.report import Table
from tests.gcs.conftest import GcsWorld

# The hot-path tuning under test: defaults (sequencer batching +
# heartbeat piggybacking) vs the pre-batching wire format.
TUNED = GcsSettings()
UNTUNED = GcsSettings(batch_window=0.0, piggyback_liveness=False)


def _throughput_world(
    n_daemons: int, n_messages: int, settings: GcsSettings | None = None
) -> dict:
    """Order ``n_messages`` multicasts across ``n_daemons`` and report both
    clocks: simulated seconds consumed (protocol efficiency) and wall
    seconds (simulator efficiency).  These are different quantities — an
    earlier version reported ``sim.now`` under a wall-clock label."""
    wall_start = time.perf_counter()
    world = GcsWorld(n_daemons, settings=settings)
    world.settle()
    for node in world.daemon_ids:
        world.daemons[node].join("g")
    world.run(1.0)
    sim_start = world.sim.now
    for index in range(n_messages):
        world.daemons[world.daemon_ids[index % n_daemons]].mcast("g", index)
    world.run(30.0)
    wall_seconds = time.perf_counter() - wall_start
    delivered = len(world.apps[world.daemon_ids[0]].payloads("g"))
    assert delivered == n_messages
    return {
        "n_daemons": n_daemons,
        "n_messages": n_messages,
        "sim_seconds": round(world.sim.now - sim_start, 3),
        "wall_seconds": round(wall_seconds, 3),
        "msgs_per_wall_second": round(n_messages / wall_seconds, 1),
    }


def test_total_order_throughput(benchmark, bench_persist):
    n_messages = 300 if os.environ.get("REPRO_BENCH_FULL") != "1" else 2000

    def sweep():
        return {
            "batched": _throughput_world(4, n_messages, TUNED),
            "unbatched": _throughput_world(4, n_messages, UNTUNED),
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bench_persist("gcs_micro", {"total_order_throughput": result})
    for mode, r in result.items():
        print(
            f"\n[{mode}] ordered {r['n_messages']} multicasts across "
            f"{r['n_daemons']} daemons: {r['sim_seconds']:.1f} simulated s, "
            f"{r['wall_seconds']:.2f} wall s "
            f"({r['msgs_per_wall_second']:.0f} msgs/wall-s)"
        )


def _messages_per_multicast(
    n_daemons: int, settings: GcsSettings, bursts: int = 10, burst: int = 20
) -> dict:
    """Steady-state wire cost: total GCS messages sent (requests,
    sequenced traffic, heartbeats — everything) per delivered multicast,
    measured after the group has settled, over a busy window of
    ``bursts`` bursts of ``burst`` back-to-back submissions."""
    world = GcsWorld(n_daemons, settings=settings)
    world.settle()
    for node in world.daemon_ids:
        world.daemons[node].join("g")
    world.run(2.0)  # past joins and request-resubmit transients
    world.network.reset_stats()
    n_messages = bursts * burst
    payload = 0
    for _ in range(bursts):
        for _ in range(burst):
            world.daemons[world.daemon_ids[payload % n_daemons]].mcast(
                "g", payload
            )
            payload += 1
        world.run(0.1)
    world.run(0.5)
    total_sent = world.network.total_sent
    delivered = len(world.apps[world.daemon_ids[0]].payloads("g"))
    assert delivered == n_messages
    return {
        "n_daemons": n_daemons,
        "multicasts": n_messages,
        "total_messages_sent": total_sent,
        "messages_per_multicast": round(total_sent / n_messages, 2),
    }


def test_messages_per_delivered_multicast(benchmark, bench_persist):
    """The PR's headline gate: with defaults at 8 daemons, steady-state
    messages per delivered multicast must drop >= 2x vs the unbatched,
    unsuppressed seed behaviour."""
    sizes = (4, 8) if os.environ.get("REPRO_BENCH_FULL") != "1" else (2, 4, 8)

    def sweep():
        rows = {}
        for n in sizes:
            rows[str(n)] = {
                "batched": _messages_per_multicast(n, TUNED),
                "unbatched": _messages_per_multicast(n, UNTUNED),
            }
            rows[str(n)]["reduction_factor"] = round(
                rows[str(n)]["unbatched"]["messages_per_multicast"]
                / rows[str(n)]["batched"]["messages_per_multicast"],
                2,
            )
        return rows

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bench_persist("gcs_micro", {"messages_per_delivered_multicast": result})

    table = Table(
        title="G1: steady-state messages per delivered multicast",
        columns=["daemons", "batched", "unbatched", "reduction"],
    )
    for n, row in result.items():
        table.add_row(
            n,
            row["batched"]["messages_per_multicast"],
            row["unbatched"]["messages_per_multicast"],
            f"{row['reduction_factor']:.2f}x",
        )
    print()
    print(table.render())
    assert result["8"]["reduction_factor"] >= 2.0


def test_view_change_latency(benchmark, bench_persist):
    table = Table(
        title="G1: view convergence latency after one crash vs group size",
        columns=["daemons", "converge_s"],
    )

    def sweep():
        latencies = {}
        for n in (2, 4, 8):
            world = GcsWorld(n)
            world.settle()
            world.daemons[world.daemon_ids[-1]].crash()
            t0 = world.sim.now
            survivors = world.daemon_ids[:-1]
            deadline = t0 + 10.0
            while world.sim.now < deadline:
                world.run(0.05)
                views = {world.daemons[s].config.view_id for s in survivors}
                members_ok = all(
                    set(world.daemons[s].config.members) == set(survivors)
                    for s in survivors
                )
                if len(views) == 1 and members_ok:
                    break
            latency = world.sim.now - t0
            latencies[str(n)] = round(latency, 3)
            table.add_row(n, latency)
        return latencies

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bench_persist("gcs_micro", {"view_convergence_seconds": result})
    print()
    print(table.render())


def test_client_injection_roundtrip(benchmark):
    def once():
        world = GcsWorld(3)
        world.settle()
        for node in world.daemon_ids:
            world.daemons[node].join("g")
        world.run(1.0)
        client, _ = world.add_client("c0")
        request_count = 50
        for index in range(request_count):
            client.mcast("g", index)
        world.run(5.0)
        delivered = len(world.apps["s0"].payloads("g"))
        assert delivered == request_count
        assert client.unacked_count == 0
        return delivered

    benchmark.pedantic(once, rounds=1, iterations=1)
