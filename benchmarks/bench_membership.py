"""Membership scaling: SWIM gossip vs the all-pairs heartbeat mesh.

Sweeps raw daemon clusters from 8 to 200+ nodes in both
``membership_mode`` settings and records, per mode and size:

* liveness traffic per node per second (frames and real abstract bytes) —
  the mesh grows linearly with the world size, gossip stays ~flat;
* detection latency p50/p99 — crash one daemon, measure how long each
  survivor's detector takes to drop it from the estimate;
* false suspicions during the clean measurement window (must be zero).

A WAN-latency variant checks the suspicion machinery against lognormal
30ms-median delays, and a live loopback run exercises gossip mode over
real UDP sockets.  Results land in ``BENCH_membership.json``;
``benchmarks/check_membership_regression.py`` gates CI on them.

``REPRO_BENCH_MEMBERSHIP_SIZES`` (comma list) overrides the sweep sizes —
CI caps at 64; the committed results use the full ``8,64,200``.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np

from repro.gcs.daemon import GcsDaemon
from repro.gcs.settings import GcsSettings
from repro.metrics.collectors import split_liveness
from repro.net.cluster import LiveClusterOptions, build_live_cluster, schedule_workload
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, wan_latency
from repro.sim.network import Network
from repro.sim.topology import Topology
from repro.sim.trace import TraceLog

from conftest import persist_bench


def _sweep_sizes() -> list[int]:
    override = os.environ.get("REPRO_BENCH_MEMBERSHIP_SIZES")
    if override:
        return [int(part) for part in override.split(",") if part.strip()]
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        return [8, 64, 200]
    return [8, 32]


def _settings(mode: str, scale: float = 1.0) -> GcsSettings:
    base = GcsSettings(membership_mode=mode)
    return base.scaled(scale) if scale != 1.0 else base


class DaemonCluster:
    """N bare GCS daemons on one simulated network (no framework layer —
    this bench isolates the membership substrate)."""

    def __init__(self, n: int, settings: GcsSettings, latency=None):
        self.sim = Simulator()
        self.network = Network(
            self.sim,
            Topology(),
            latency or FixedLatency(0.002),
            trace=TraceLog(enabled=False),
        )
        self.settings = settings
        self.ids = [f"s{i}" for i in range(n)]
        self.daemons = {
            node: GcsDaemon(node, self.network, world=self.ids, settings=settings)
            for node in self.ids
        }
        for daemon in self.daemons.values():
            daemon.start()

    def run(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration, max_events=50_000_000)

    def single_view(self, expected: set[str] | None = None) -> bool:
        live = [d for d in self.daemons.values() if d.is_up()]
        views = {d.config.view_id for d in live}
        if len(views) != 1:
            return False
        members = set(live[0].config.members)
        return members == (expected or {d.node_id for d in live})

    def settle(self, budget: float = 90.0) -> float:
        """Run until every daemon sits in one full view; returns the sim
        time it took (the boot-convergence time)."""
        start = self.sim.now
        deadline = start + budget
        while self.sim.now < deadline:
            if self.single_view():
                return self.sim.now - start
            self.run(0.5)
        raise AssertionError(
            f"cluster of {len(self.ids)} never converged within {budget}s "
            f"({self.settings.membership_mode})"
        )

    def liveness_rates(self, window: float) -> dict[str, float]:
        """Per-node per-second liveness/data traffic over the last
        ``window`` seconds (stats must have been reset at window start)."""
        nodes = len(self.ids)
        liveness_bytes = data_bytes = liveness_frames = data_frames = 0
        for node in self.ids:
            per_kind = self.network.sent_kind_stats(node)
            frames = {kind: sent for kind, (sent, _b) in per_kind.items()}
            abstract = {kind: b for kind, (_s, b) in per_kind.items()}
            lf, df = split_liveness(frames)
            lb, db = split_liveness(abstract)
            liveness_frames += lf
            data_frames += df
            liveness_bytes += lb
            data_bytes += db
        return {
            "liveness_frames_per_node_per_sec": round(
                liveness_frames / nodes / window, 2
            ),
            "liveness_bytes_per_node_per_sec": round(
                liveness_bytes / nodes / window, 2
            ),
            "data_frames_per_node_per_sec": round(data_frames / nodes / window, 2),
        }

    def false_suspicions(self) -> dict[str, int]:
        """Detector-level counters summed over the cluster (gossip mode
        exposes them; the mesh has no suspicion stage)."""
        if self.settings.membership_mode != "gossip":
            return {}
        return {
            "suspicions_started": sum(
                d.swim.suspicions_started for d in self.daemons.values()
            ),
            "suspicions_refuted": sum(
                d.swim.suspicions_refuted for d in self.daemons.values()
            ),
            "evictions": sum(d.swim.evictions for d in self.daemons.values()),
        }

    def measure_detection(self, victim: str) -> list[float]:
        """Crash ``victim`` and poll every survivor's detector until it
        drops the victim from its estimate; returns per-survivor
        latencies (seconds from the crash)."""
        self.daemons[victim].crash()
        crash_at = self.sim.now
        survivors = [n for n in self.ids if n != victim]
        detected: dict[str, float] = {}
        give_up = crash_at + 30.0
        while len(detected) < len(survivors) and self.sim.now < give_up:
            self.run(0.01)
            for node in survivors:
                if node in detected:
                    continue
                if victim not in self.daemons[node].fd.alive_peers():
                    detected[node] = self.sim.now - crash_at
        assert len(detected) == len(survivors), (
            f"{len(survivors) - len(detected)} survivors never detected the crash"
        )
        return sorted(detected.values())


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _measure(mode: str, n: int, window: float) -> dict:
    cluster = DaemonCluster(n, _settings(mode))
    boot = cluster.settle()
    baseline = cluster.false_suspicions()
    cluster.network.reset_stats()
    cluster.run(window)
    assert cluster.single_view(), "view changed during the clean window"
    rates = cluster.liveness_rates(window)
    counters = cluster.false_suspicions()
    false_evictions = (
        counters.get("evictions", 0) - baseline.get("evictions", 0)
        if counters
        else 0
    )
    latencies = cluster.measure_detection(cluster.ids[-1])
    return {
        "boot_convergence_seconds": round(boot, 2),
        **rates,
        "false_evictions_in_window": false_evictions,
        "detection_p50_seconds": round(_percentile(latencies, 0.50), 4),
        "detection_p99_seconds": round(_percentile(latencies, 0.99), 4),
        **({"counters": counters} if counters else {}),
    }


def test_membership_scaling_sweep(benchmark, bench_persist):
    sizes = _sweep_sizes()
    window = 5.0 if os.environ.get("REPRO_BENCH_FULL") == "1" else 3.0

    def sweep():
        results: dict[str, dict] = {"mesh": {}, "gossip": {}}
        for mode_key, mode in (("mesh", "heartbeat"), ("gossip", "gossip")):
            for n in sizes:
                results[mode_key][str(n)] = _measure(mode, n, window)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for mode_key in ("mesh", "gossip"):
        for n in sizes:
            row = results[mode_key][str(n)]
            assert row["false_evictions_in_window"] == 0, (mode_key, n, row)
            print(
                f"\n{mode_key:7s} n={n:4d}: "
                f"{row['liveness_bytes_per_node_per_sec']:9.1f} liveness B/node/s, "
                f"detect p50={row['detection_p50_seconds']:.3f}s "
                f"p99={row['detection_p99_seconds']:.3f}s, "
                f"boot {row['boot_convergence_seconds']:.1f}s"
            )
    small, large = str(min(sizes)), str(max(sizes))
    mesh_growth = (
        results["mesh"][large]["liveness_bytes_per_node_per_sec"]
        / results["mesh"][small]["liveness_bytes_per_node_per_sec"]
    )
    gossip_growth = (
        results["gossip"][large]["liveness_bytes_per_node_per_sec"]
        / results["gossip"][small]["liveness_bytes_per_node_per_sec"]
    )
    print(
        f"\nliveness bytes/node growth {small}->{large}: "
        f"mesh {mesh_growth:.1f}x, gossip {gossip_growth:.1f}x"
    )
    assert gossip_growth < mesh_growth, "gossip must scale better than the mesh"
    bench_persist(
        "membership",
        {
            "sim_sweep": {
                "sizes": sizes,
                "window_seconds": window,
                "modes": results,
            }
        },
    )


def test_membership_wan_latency(benchmark, bench_persist):
    """Gossip under WAN delays (lognormal, 30ms median): the suspicion /
    refutation machinery must keep false evictions at zero while probe
    RTTs routinely exceed the LAN probe timeout."""
    n = 16 if os.environ.get("REPRO_BENCH_FULL") == "1" else 12
    window = 12.0

    def run():
        cluster = DaemonCluster(
            n,
            _settings("gossip", scale=3.0),
            latency=wan_latency(np.random.default_rng(7)),
        )
        boot = cluster.settle()
        cluster.network.reset_stats()
        before = cluster.false_suspicions()
        cluster.run(window)
        assert cluster.single_view(), "view changed during the WAN window"
        after = cluster.false_suspicions()
        rates = cluster.liveness_rates(window)
        return {
            "nodes": n,
            "boot_convergence_seconds": round(boot, 2),
            "settings_scale": 3.0,
            **rates,
            "suspicions_started_in_window": after["suspicions_started"]
            - before["suspicions_started"],
            "false_evictions_in_window": after["evictions"] - before["evictions"],
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result["false_evictions_in_window"] == 0, result
    print(
        f"\ngossip n={n} under WAN latency: "
        f"{result['suspicions_started_in_window']} transient suspicions, "
        f"0 false evictions, "
        f"{result['liveness_bytes_per_node_per_sec']:.1f} liveness B/node/s"
    )
    bench_persist("membership", {"wan": result})


async def _live_gossip_run(options: LiveClusterOptions) -> dict:
    cluster = await build_live_cluster(options)
    try:
        plan = schedule_workload(cluster, options)
        await cluster.runtime.run(plan.duration)
        # UDP loopback can drop frames under load, resyncing a node to a
        # singleton view mid-run; give gossip re-merge time to converge
        # instead of asserting a one-shot snapshot.
        expected = {str(node) for node in cluster.servers}
        extra = 0.0
        while extra < 20.0:
            views = {
                frozenset(str(m) for m in server.daemon.config.members)
                for server in cluster.servers.values()
            }
            if views == {frozenset(expected)}:
                break
            await cluster.runtime.run(1.0)
            extra += 1.0
        liveness_bytes = data_bytes = 0
        for node, network in cluster.networks.items():
            lb, db = split_liveness(network.actual_bytes_sent)
            liveness_bytes += lb
            data_bytes += db
        members = {
            str(node): sorted(str(m) for m in server.daemon.config.members)
            for node, server in cluster.servers.items()
        }
        return {
            "sim_seconds": plan.duration + extra,
            "nodes": options.nodes,
            "extra_convergence_seconds": extra,
            "liveness_bytes_sent": liveness_bytes,
            "data_bytes_sent": data_bytes,
            "members": members,
        }
    finally:
        await cluster.close()


def test_membership_live_loopback_gossip(benchmark, bench_persist):
    """Gossip mode over real UDP loopback sockets: the cluster must form
    a full view and serve the scripted workload — the live-wire proof
    that the SWIM path works outside the simulator."""
    nodes = 10 if os.environ.get("REPRO_BENCH_FULL") == "1" else 5
    options = LiveClusterOptions(
        nodes=nodes,
        loopback=True,
        requests=60,
        kill_primary=False,
        update_interval=0.02,
        warmup=2.5,
        settle=1.5,
        profile="live_lan_gossip",
    )

    def once():
        return asyncio.run(_live_gossip_run(options))

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    expected = sorted(f"s{i}" for i in range(nodes))
    full_views = sum(
        1 for members in result["members"].values() if members == expected
    )
    assert full_views == nodes, result["members"]
    per_node_rate = result["liveness_bytes_sent"] / nodes / result["sim_seconds"]
    out = {
        "nodes": nodes,
        "liveness_bytes_per_node_per_sec": round(per_node_rate, 1),
        "data_bytes_sent": result["data_bytes_sent"],
        "extra_convergence_seconds": result["extra_convergence_seconds"],
        "full_views": full_views,
    }
    bench_persist("membership", {"live_loopback_gossip": out})
    print(
        f"\nlive gossip over UDP loopback: {nodes} nodes, full view on all, "
        f"{per_node_rate:.0f} liveness B/node/s"
    )
