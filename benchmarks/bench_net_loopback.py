"""N1 — live-runtime loopback benchmarks: the socket path under the stack.

Four quantities for the live runtime added by the `repro.net` subsystem:
codec throughput on a protocol-shaped hot frame (fast path vs the
generic self-describing path), raw codec+socket frame throughput (UDP
loopback, no protocol above), client-observed request latency on a live
3-node VoD cluster (time from sending a context update to the first
response reflecting it), and failover takeover time when the primary is
killed mid-stream.

Unlike the simulation benchmarks these consume real wall seconds — the
live runtime paces the simulator one second per second — so the runs are
kept short.  Results persist to ``BENCH_net_loopback.json``; the
``anchor_pre_fastpath`` section there is the same workload measured on
the same machine immediately before the fast-path codec + coalescing
work, kept as the honest before/after baseline.
"""

import asyncio
import os
import time

from repro.gcs.messages import OrderRequest, RequestId, Sequenced
from repro.gcs.view import ViewId
from repro.net.cluster import (
    LiveClusterOptions,
    build_live_cluster,
    build_report,
    schedule_workload,
)
from repro.net.codec import WireEnvelope, decode_frame, encode_frame
from repro.net.transport import UdpLoopbackTransport


def _percentile(values: list, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ---------------------------------------------------------------------------
# codec: fast path vs generic on the hottest frame shape
# ---------------------------------------------------------------------------
def _hot_envelope() -> WireEnvelope:
    """The frame the live cluster sends most: an ordered request inside
    the envelope shell — every field on the struct-packed fast path."""
    rid = RequestId("c0", 1, 42)
    order = OrderRequest(rid, "unit:demo", {"op": "rate", "value": 24.0}, 33)
    return WireEnvelope(
        sender="s0",
        receiver="s1",
        kind="gcs",
        size=33,
        payload=Sequenced(ViewId(3, "s0"), 11, order),
    )


def _codec_rates(n: int, fast: bool) -> dict:
    envelope = _hot_envelope()
    started = time.perf_counter()
    for _ in range(n):
        frame = encode_frame(envelope, fast=fast)
    encode_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(n):
        decode_frame(frame)
    decode_seconds = time.perf_counter() - started
    return {
        "frame_bytes": len(frame),
        "encodes_per_second": round(n / encode_seconds, 1),
        "decodes_per_second": round(n / decode_seconds, 1),
    }


def test_codec_fast_vs_generic(benchmark, bench_persist):
    n = 20_000 if os.environ.get("REPRO_BENCH_FULL") != "1" else 200_000

    def once():
        return {
            "rounds": n,
            "fast": _codec_rates(n, fast=True),
            "generic": _codec_rates(n, fast=False),
        }

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    fast, generic = result["fast"], result["generic"]
    assert fast["frame_bytes"] <= generic["frame_bytes"]
    bench_persist("net_loopback", {"codec": result})
    print(
        f"\ncodec on the hot envelope: fast "
        f"{fast['encodes_per_second']:.0f} enc/s "
        f"{fast['decodes_per_second']:.0f} dec/s ({fast['frame_bytes']}B) "
        f"vs generic {generic['encodes_per_second']:.0f} enc/s "
        f"{generic['decodes_per_second']:.0f} dec/s "
        f"({generic['frame_bytes']}B)"
    )


# ---------------------------------------------------------------------------
# raw frame throughput (codec + UDP loopback, no protocol)
# ---------------------------------------------------------------------------
async def _pump_frames(n_frames: int) -> dict:
    sender, receiver = UdpLoopbackTransport("tx"), UdpLoopbackTransport("rx")
    got = []
    receiver.on_frame = got.append
    await sender.start()
    await receiver.start()
    sender.set_peer("rx", *receiver.address)
    frame = encode_frame(
        WireEnvelope(
            sender="tx",
            receiver="rx",
            kind="bench",
            size=1,
            payload={"op": "rate", "value": 30.0},
        )
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    for i in range(n_frames):
        sender.send("rx", frame)
        # flow control: cap the frames in flight so the kernel's UDP
        # receive buffer never overflows (we measure the path, not drops)
        while i + 1 - len(got) > 128:
            await asyncio.sleep(0)
    deadline = loop.time() + 30.0
    while len(got) < n_frames and loop.time() < deadline:
        await asyncio.sleep(0)
    elapsed = loop.time() - started
    await sender.close()
    await receiver.close()
    return {
        "frames_offered": n_frames,
        "frames_delivered": len(got),
        "frame_bytes": len(frame),
        "wall_seconds": round(elapsed, 4),
        "frames_per_second": round(len(got) / elapsed, 1),
    }


def test_raw_frame_throughput(benchmark, bench_persist):
    n_frames = 5_000 if os.environ.get("REPRO_BENCH_FULL") != "1" else 50_000

    def once():
        return asyncio.run(_pump_frames(n_frames))

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    bench_persist("net_loopback", {"raw_frame_throughput": result})
    print(
        f"\nloopback UDP: {result['frames_delivered']}/{result['frames_offered']} "
        f"frames of {result['frame_bytes']}B in {result['wall_seconds']}s "
        f"({result['frames_per_second']:.0f} frames/s)"
    )


# ---------------------------------------------------------------------------
# live cluster: request latency + failover takeover
# ---------------------------------------------------------------------------
async def _cluster_run(options: LiveClusterOptions) -> dict:
    cluster = await build_live_cluster(options)
    try:
        plan = schedule_workload(cluster, options)
        await cluster.runtime.run(plan.duration)
        report = build_report(cluster, plan)
        handle = plan.handle
        latencies = []
        if handle is not None:
            # latency of update k: send time -> first response whose
            # context reflects it (live mode: sim time IS wall time)
            responses = sorted(handle.received, key=lambda r: r.time)
            for sent_time, counter, _update in handle.updates_sent:
                for response in responses:
                    if response.time >= sent_time and response.based_on_update >= counter:
                        latencies.append(response.time - sent_time)
                        break
        report["request_latencies"] = latencies
        return report
    finally:
        await cluster.close()


def test_live_cluster_latency_and_failover(benchmark, bench_persist):
    requests = 100 if os.environ.get("REPRO_BENCH_FULL") != "1" else 400
    options = LiveClusterOptions(
        nodes=3,
        loopback=True,
        requests=requests,
        kill_primary=True,
        update_interval=0.02,
        settle=1.5,
    )

    def once():
        return asyncio.run(_cluster_run(options))

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    assert report["clean"], report["reasons"]
    latencies = report["request_latencies"]
    assert latencies, "no update was ever reflected in a response"
    transports = report["transport"].values()
    total_frames = sum(t["frames_sent"] for t in transports)
    total_writes = sum(t["writes"] for t in transports)
    result = {
        "nodes": 3,
        "requests": requests,
        "update_interval": options.update_interval,
        "request_latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
        "request_latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
        "takeover_seconds": report["takeover_seconds"],
        # logical frames per second: coalescing packs many frames into one
        # socket write, so this stays comparable with the pre-coalescing
        # anchor while frames_per_write shows the packing factor
        "messages_per_second": round(total_frames / report["sim_seconds"], 1),
        "frames_per_write": round(total_frames / max(total_writes, 1), 2),
        "lost_acked_updates": report["session"]["lost_acked_updates"],
        "byte_calibration_actual_over_estimate": round(
            report["bytes"]["actual_over_estimate"], 3
        ),
    }
    bench_persist("net_loopback", {"live_cluster": result})
    print(
        f"\nlive 3-node VoD over UDP loopback: request latency "
        f"p50={result['request_latency_p50_ms']}ms "
        f"p99={result['request_latency_p99_ms']}ms, "
        f"failover takeover {result['takeover_seconds']}s, "
        f"{result['messages_per_second']:.0f} msgs/s on the wire, "
        f"{result['lost_acked_updates']} acked updates lost"
    )
