"""N1 — live-runtime loopback benchmarks: the socket path under the stack.

Three quantities for the live runtime added by the `repro.net` subsystem:
raw codec+socket frame throughput (UDP loopback, no protocol above),
client-observed request latency on a live 3-node VoD cluster (time from
sending a context update to the first response reflecting it), and
failover takeover time when the primary is killed mid-stream.

Unlike the simulation benchmarks these consume real wall seconds — the
live runtime paces the simulator one second per second — so the runs are
kept short.  Results persist to ``BENCH_net_loopback.json``.
"""

import asyncio
import os

from repro.net.cluster import (
    LiveClusterOptions,
    build_live_cluster,
    build_report,
    schedule_workload,
)
from repro.net.codec import WireEnvelope, encode_frame
from repro.net.transport import UdpLoopbackTransport


def _percentile(values: list, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


# ---------------------------------------------------------------------------
# raw frame throughput (codec + UDP loopback, no protocol)
# ---------------------------------------------------------------------------
async def _pump_frames(n_frames: int) -> dict:
    sender, receiver = UdpLoopbackTransport("tx"), UdpLoopbackTransport("rx")
    got = []
    receiver.on_frame = got.append
    await sender.start()
    await receiver.start()
    sender.set_peer("rx", *receiver.address)
    frame = encode_frame(
        WireEnvelope(
            sender="tx",
            receiver="rx",
            kind="bench",
            size=1,
            payload={"op": "rate", "value": 30.0},
        )
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    for i in range(n_frames):
        sender.send("rx", frame)
        # flow control: cap the frames in flight so the kernel's UDP
        # receive buffer never overflows (we measure the path, not drops)
        while i + 1 - len(got) > 128:
            await asyncio.sleep(0)
    deadline = loop.time() + 30.0
    while len(got) < n_frames and loop.time() < deadline:
        await asyncio.sleep(0)
    elapsed = loop.time() - started
    await sender.close()
    await receiver.close()
    return {
        "frames_offered": n_frames,
        "frames_delivered": len(got),
        "frame_bytes": len(frame),
        "wall_seconds": round(elapsed, 4),
        "frames_per_second": round(len(got) / elapsed, 1),
    }


def test_raw_frame_throughput(benchmark, bench_persist):
    n_frames = 5_000 if os.environ.get("REPRO_BENCH_FULL") != "1" else 50_000

    def once():
        return asyncio.run(_pump_frames(n_frames))

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    bench_persist("net_loopback", {"raw_frame_throughput": result})
    print(
        f"\nloopback UDP: {result['frames_delivered']}/{result['frames_offered']} "
        f"frames of {result['frame_bytes']}B in {result['wall_seconds']}s "
        f"({result['frames_per_second']:.0f} frames/s)"
    )


# ---------------------------------------------------------------------------
# live cluster: request latency + failover takeover
# ---------------------------------------------------------------------------
async def _cluster_run(options: LiveClusterOptions) -> dict:
    cluster = await build_live_cluster(options)
    try:
        plan = schedule_workload(cluster, options)
        await cluster.runtime.run(plan.duration)
        report = build_report(cluster, plan)
        handle = plan.handle
        latencies = []
        if handle is not None:
            # latency of update k: send time -> first response whose
            # context reflects it (live mode: sim time IS wall time)
            responses = sorted(handle.received, key=lambda r: r.time)
            for sent_time, counter, _update in handle.updates_sent:
                for response in responses:
                    if response.time >= sent_time and response.based_on_update >= counter:
                        latencies.append(response.time - sent_time)
                        break
        report["request_latencies"] = latencies
        return report
    finally:
        await cluster.close()


def test_live_cluster_latency_and_failover(benchmark, bench_persist):
    requests = 100 if os.environ.get("REPRO_BENCH_FULL") != "1" else 400
    options = LiveClusterOptions(
        nodes=3,
        loopback=True,
        requests=requests,
        kill_primary=True,
        update_interval=0.02,
        settle=1.5,
    )

    def once():
        return asyncio.run(_cluster_run(options))

    report = benchmark.pedantic(once, rounds=1, iterations=1)
    assert report["clean"], report["reasons"]
    latencies = report["request_latencies"]
    assert latencies, "no update was ever reflected in a response"
    transports = report["transport"].values()
    total_frames = sum(t["frames_sent"] for t in transports)
    result = {
        "nodes": 3,
        "requests": requests,
        "update_interval": options.update_interval,
        "request_latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 2),
        "request_latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 2),
        "takeover_seconds": report["takeover_seconds"],
        "messages_per_second": round(total_frames / report["sim_seconds"], 1),
        "lost_acked_updates": report["session"]["lost_acked_updates"],
        "byte_calibration_actual_over_estimate": round(
            report["bytes"]["actual_over_estimate"], 3
        ),
    }
    bench_persist("net_loopback", {"live_cluster": result})
    print(
        f"\nlive 3-node VoD over UDP loopback: request latency "
        f"p50={result['request_latency_p50_ms']}ms "
        f"p99={result['request_latency_p99_ms']}ms, "
        f"failover takeover {result['takeover_seconds']}s, "
        f"{result['messages_per_second']:.0f} msgs/s on the wire, "
        f"{result['lost_acked_updates']} acked updates lost"
    )
