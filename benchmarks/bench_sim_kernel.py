"""K1 — simulation kernel micro-benchmarks: the fast path, before/after.

The simulator is the substrate every experiment and chaos run stands on,
so its constant factors multiply through everything.  This module pits
the current kernel (tuple-keyed heap entries, ``__slots__`` event
handles, lazy-deletion compaction, O(1) ``pending_events``) against an
inline replica of the seed kernel (``@dataclass(order=True)`` events
compared in Python, O(n) ``pending_events`` scan) on three workloads the
framework actually generates:

* **timer churn** — self-rescheduling callback chains, the steady-state
  shape of heartbeats, propagation timers and retransmit timers;
* **cancel storm** — schedule bursts where most timers are cancelled
  before firing (acks cancelling retransmits, view changes cancelling
  suspicions);
* **pending poll** — ``pending_events`` sampled repeatedly over a deep
  queue, the idle-detection pattern tests and drivers use.

Two aggregates are reported: total kernel operations over total wall
seconds (time-weighted composite) and the geometric mean of the
per-workload speedups (the standard suite aggregate — the time-weighted
number underweights the ``pending_events`` fix exactly *because* the fix
removed its cost, the classic Amdahl artifact).  The PR gate is a
geometric-mean speedup >= 3x over the legacy replica, with every
per-workload factor recorded alongside so nothing hides in the mean.
The
parallel-sweep benchmark times the same chaos workload serial vs
sharded (``workers=4``) and records the host's core count — the >= 2x
wall-clock gate only applies where >= 4 cores are actually available.

Results persist to ``BENCH_sim_kernel.json`` (see ``persist_bench``).
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.chaos import ChaosConfig, explore
from repro.chaos.generator import generate_schedule, resolve_profile
from repro.chaos.runner import run_schedule
from repro.faults.schedule import FaultSchedule
from repro.parallel import effective_workers
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# legacy kernel replica (the seed implementation, inlined so the
# before/after comparison runs in a single process)
# ----------------------------------------------------------------------


@dataclass(order=True)
class _LegacyEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class _LegacySimulator:
    """The seed kernel: dataclass events ordered via generated ``__lt__``
    (a Python-level call per heap comparison) and an O(n) live-event scan
    per ``pending_events`` read."""

    def __init__(self) -> None:
        self._queue: list[_LegacyEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback, label: str = "") -> _LegacyEvent:
        event = _LegacyEvent(
            time=self._now + delay, seq=next(self._seq), callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def run_until(self, time: float) -> None:
        queue = self._queue
        while queue:
            event = queue[0]
            if event.time > time:
                break
            heapq.heappop(queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.executed = True
            event.callback()
        self._now = time


# ----------------------------------------------------------------------
# workloads (generic over the kernel under test)
# ----------------------------------------------------------------------

_FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
_N_CHURN = 120_000 if _FULL else 30_000
_N_CANCEL = 120_000 if _FULL else 30_000
_POLL_DEPTH = 4_000
_N_POLLS = 1_200 if _FULL else 400
_CHAINS = 64


def _noop() -> None:
    return None


# Delay streams are precomputed so the timed region measures kernel
# operations (schedule / heap churn / cancel / pop), not RNG calls.
_CHURN_DELAYS = [
    random.Random(1234).random() * 0.01 + 1e-6 for _ in range(8192)
]
_STORM_DELAYS = [
    random.Random(99).random() * 0.01 + 1e-6 for _ in range(512)
]


def _timer_churn(make_sim, n_events: int) -> tuple[int, float]:
    """Self-rescheduling chains: the heartbeat/retransmit steady state."""
    sim = make_sim()
    delays = _CHURN_DELAYS
    n_delays = len(delays)
    state = [n_events, 0]  # remaining budget, delay cursor

    def fire() -> None:
        if state[0] > 0:
            state[0] -= 1
            cursor = state[1]
            state[1] = (cursor + 1) % n_delays
            sim.schedule(delays[cursor], fire)

    for _ in range(_CHAINS):
        fire()
    started = time.perf_counter()
    sim.run_until(1e9)
    return n_events, time.perf_counter() - started


def _cancel_storm(make_sim, n_events: int) -> tuple[int, float]:
    """Burst scheduling where 7 of 8 timers are cancelled before firing."""
    sim = make_sim()
    delays = _STORM_DELAYS
    scheduled = 0
    started = time.perf_counter()
    while scheduled < n_events:
        batch = [sim.schedule(delay, _noop) for delay in delays]
        scheduled += len(batch)
        for index, event in enumerate(batch):
            if index % 8:
                event.cancel()
        sim.run_until(sim.now + 0.02)
    return scheduled, time.perf_counter() - started


def _pending_poll(make_sim, depth: int, polls: int) -> tuple[int, float]:
    """``pending_events`` sampled over a deep queue (idle detection)."""
    sim = make_sim()
    for index in range(depth):
        sim.schedule(1.0 + index * 1e-6, _noop)
    total = 0
    started = time.perf_counter()
    for _ in range(polls):
        total += sim.pending_events
    wall = time.perf_counter() - started
    assert total == depth * polls
    return polls, wall


def _run_suite(make_sim) -> dict:
    """All three workloads, best-of-2 per workload (1-CPU noise guard)."""
    rows = {}
    total_ops = 0
    total_wall = 0.0
    for name, run in (
        ("timer_churn", lambda: _timer_churn(make_sim, _N_CHURN)),
        ("cancel_storm", lambda: _cancel_storm(make_sim, _N_CANCEL)),
        ("pending_poll", lambda: _pending_poll(make_sim, _POLL_DEPTH, _N_POLLS)),
    ):
        best_ops, best_wall = min((run(), run()), key=lambda r: r[1] / r[0])
        rows[name] = {
            "ops": best_ops,
            "wall_seconds": round(best_wall, 4),
            "ops_per_second": round(best_ops / best_wall, 1),
        }
        total_ops += best_ops
        total_wall += best_wall
    rows["composite"] = {
        "ops": total_ops,
        "wall_seconds": round(total_wall, 4),
        "ops_per_second": round(total_ops / total_wall, 1),
    }
    return rows


def test_kernel_ops_speedup(benchmark, bench_persist):
    """The tentpole gate: composite kernel throughput >= 3x the seed."""

    def suite():
        return {
            "legacy": _run_suite(_LegacySimulator),
            "slotted": _run_suite(Simulator),
        }

    result = benchmark.pedantic(suite, rounds=1, iterations=1)
    speedups = {
        name: round(
            result["slotted"][name]["ops_per_second"]
            / result["legacy"][name]["ops_per_second"],
            2,
        )
        for name in result["legacy"]
    }
    workload_factors = [
        factor for name, factor in speedups.items() if name != "composite"
    ]
    geomean = round(
        math.prod(workload_factors) ** (1 / len(workload_factors)), 2
    )
    speedups["geometric_mean"] = geomean
    result["speedup"] = speedups
    bench_persist("sim_kernel", {"kernel_ops": result})
    for name, factor in speedups.items():
        if name == "geometric_mean":
            print(f"\n[geometric mean] {factor:.2f}x")
            continue
        print(
            f"\n[{name}] legacy "
            f"{result['legacy'][name]['ops_per_second']:>10.0f} ops/s -> "
            f"slotted {result['slotted'][name]['ops_per_second']:>10.0f} ops/s"
            f"  ({factor:.2f}x)"
        )
    assert geomean >= 3.0


# ----------------------------------------------------------------------
# parallel seed sharding
# ----------------------------------------------------------------------

_SWEEP_CONFIG = ChaosConfig(
    n_servers=3, n_sessions=2, duration=6.0, profile="mixed"
)
_SWEEP_ITERATIONS = 8 if _FULL else 4


def _sweep(workers: int):
    started = time.perf_counter()
    report = explore(
        _SWEEP_CONFIG,
        seed=7,
        iterations=_SWEEP_ITERATIONS,
        artifact_dir=None,
        workers=workers,
    )
    wall = time.perf_counter() - started
    return report, wall


def test_parallel_sweep_wallclock(benchmark, bench_persist):
    """Serial vs 4-worker chaos sweep.

    Digest equality is asserted unconditionally (the deterministic-merge
    contract).  The >= 2x wall-clock gate only applies on hosts with
    >= 4 usable cores — on smaller machines the numbers are recorded
    as-is so the trajectory stays honest about where they were taken.
    """
    cores = effective_workers(0)

    def sweep():
        serial_report, serial_wall = _sweep(workers=1)
        sharded_report, sharded_wall = _sweep(workers=4)
        return serial_report, serial_wall, sharded_report, sharded_wall

    serial_report, serial_wall, sharded_report, sharded_wall = (
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    )
    serial_digests = [it.result.digest for it in serial_report.iterations]
    sharded_digests = [it.result.digest for it in sharded_report.iterations]
    assert serial_digests == sharded_digests

    speedup = round(serial_wall / sharded_wall, 2)
    bench_persist(
        "sim_kernel",
        {
            "parallel_sweep": {
                "iterations": _SWEEP_ITERATIONS,
                "cpu_count": cores,
                "serial_wall_seconds": round(serial_wall, 3),
                "workers4_wall_seconds": round(sharded_wall, 3),
                "speedup": speedup,
                "digests_identical": True,
            }
        },
    )
    print(
        f"\n[parallel] {_SWEEP_ITERATIONS} iterations on {cores} core(s): "
        f"serial {serial_wall:.2f}s, 4 workers {sharded_wall:.2f}s "
        f"({speedup:.2f}x)"
    )
    if cores >= 4:
        assert speedup >= 2.0


# ----------------------------------------------------------------------
# determinism anchors
# ----------------------------------------------------------------------

# Fixed-seed trace digests captured on the pre-refactor kernel.  The
# whole fast path (slotted kernel, delta propagation, size accounting)
# must leave these untouched: same seed, same schedule, *same run*.
_ANCHOR_CONFIG = ChaosConfig(
    n_servers=3, n_sessions=2, duration=8.0, profile="mixed"
)
_ANCHOR_EMPTY = "a45ddff0e30981fe2dce45dc47e49d826c4e34aa15cd05f620198fcf44697b13"
_ANCHOR_MIXED = "af86cd8b840e0130b86f02c6770e38a047258492d5891a456e89c199cb9b8ff7"


def test_trace_digest_anchors(benchmark, bench_persist):
    import numpy as np

    def anchors():
        empty = run_schedule(
            _ANCHOR_CONFIG, 42, FaultSchedule(events=[])
        ).digest
        gen_rng = np.random.default_rng([7, 0])
        schedule = generate_schedule(
            gen_rng, _ANCHOR_CONFIG, resolve_profile(_ANCHOR_CONFIG, 0)
        )
        mixed = run_schedule(_ANCHOR_CONFIG, 1234, schedule).digest
        return {"empty_schedule": empty, "mixed_schedule": mixed}

    result = benchmark.pedantic(anchors, rounds=1, iterations=1)
    bench_persist(
        "sim_kernel",
        {
            "digest_anchors": {
                **result,
                "matches_pre_refactor": result
                == {
                    "empty_schedule": _ANCHOR_EMPTY,
                    "mixed_schedule": _ANCHOR_MIXED,
                },
            }
        },
    )
    assert result["empty_schedule"] == _ANCHOR_EMPTY
    assert result["mixed_schedule"] == _ANCHOR_MIXED
