"""Guard the membership substrate: check ``BENCH_membership.json`` for
scaling and latency regressions.

Two kinds of gate:

* **Relational invariants** on the fresh run alone — the reasons the
  gossip detector exists.  Gossip liveness traffic per node must stay
  well below the mesh at the largest swept size, its growth across the
  sweep must stay bounded (the mesh is linear), detection latency must
  remain competitive at small sizes, and a clean network must produce
  zero false evictions.  These hold at any sweep size, so CI can run a
  capped sweep while the committed JSON carries the full 8..200 one.

* **Baseline comparison** — detection p99 and gossip bytes/node at the
  sizes both files share, with generous tolerances (sim-time metrics are
  deterministic, but sweep sizes and windows may legitimately shift).

CI copies the committed file aside first, exactly like the net gate::

    cp BENCH_membership.json bench-membership-baseline.json
    REPRO_BENCH_MEMBERSHIP_SIZES=8,64 python -m pytest benchmarks/bench_membership.py -q
    python benchmarks/check_membership_regression.py --baseline bench-membership-baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: gossip liveness bytes/node must stay below this fraction of the mesh
#: at the largest swept size (the whole point of the subsystem)
MESH_FRACTION_CEILING = 0.50

#: gossip bytes/node growth across the sweep must stay below this factor
#: of the mesh's growth over the same sizes
GROWTH_FRACTION_CEILING = 0.60

#: gossip detection p99 at the smallest size within this factor of mesh
DETECTION_FACTOR_CEILING = 2.0

#: baseline comparison: fresh latency may grow, fresh bytes may grow, by
#: at most this factor at shared sizes
BASELINE_TOLERANCE = 1.5


def _row(data: dict, mode: str, size: str, origin: str) -> dict:
    try:
        return data["sim_sweep"]["modes"][mode][size]
    except KeyError:
        raise SystemExit(f"{origin}: missing sim_sweep.modes.{mode}.{size}") from None


def _sizes(data: dict, origin: str) -> list[str]:
    try:
        sizes = data["sim_sweep"]["sizes"]
    except KeyError:
        raise SystemExit(f"{origin}: missing sim_sweep.sizes") from None
    if len(sizes) < 2:
        raise SystemExit(f"{origin}: need at least two sweep sizes, got {sizes}")
    return [str(n) for n in sorted(int(n) for n in sizes)]


def check_invariants(current: dict) -> list[str]:
    """Relational gates on the fresh run alone."""
    failures = []
    sizes = _sizes(current, "current")
    small, large = sizes[0], sizes[-1]

    def bytes_rate(mode: str, size: str) -> float:
        return float(
            _row(current, mode, size, "current")["liveness_bytes_per_node_per_sec"]
        )

    mesh_large = bytes_rate("mesh", large)
    gossip_large = bytes_rate("gossip", large)
    fraction = gossip_large / mesh_large
    status = "ok" if fraction <= MESH_FRACTION_CEILING else "REGRESSED"
    print(
        f"gossip/mesh liveness bytes at n={large}: "
        f"{gossip_large:.1f} / {mesh_large:.1f} = {fraction:.2f} "
        f"(ceiling {MESH_FRACTION_CEILING:.2f}) {status}"
    )
    if fraction > MESH_FRACTION_CEILING:
        failures.append(
            f"gossip liveness bytes at n={large} not below "
            f"{MESH_FRACTION_CEILING:.2f}x mesh ({fraction:.2f}x)"
        )

    mesh_growth = bytes_rate("mesh", large) / bytes_rate("mesh", small)
    gossip_growth = bytes_rate("gossip", large) / bytes_rate("gossip", small)
    growth_fraction = gossip_growth / mesh_growth
    status = "ok" if growth_fraction <= GROWTH_FRACTION_CEILING else "REGRESSED"
    print(
        f"liveness bytes growth {small}->{large}: mesh {mesh_growth:.1f}x, "
        f"gossip {gossip_growth:.1f}x (ratio {growth_fraction:.2f}, "
        f"ceiling {GROWTH_FRACTION_CEILING:.2f}) {status}"
    )
    if growth_fraction > GROWTH_FRACTION_CEILING:
        failures.append(
            f"gossip liveness growth {gossip_growth:.1f}x not below "
            f"{GROWTH_FRACTION_CEILING:.2f}x of mesh growth {mesh_growth:.1f}x"
        )

    mesh_p99 = float(_row(current, "mesh", small, "current")["detection_p99_seconds"])
    gossip_p99 = float(
        _row(current, "gossip", small, "current")["detection_p99_seconds"]
    )
    factor = gossip_p99 / mesh_p99
    status = "ok" if factor <= DETECTION_FACTOR_CEILING else "REGRESSED"
    print(
        f"detection p99 at n={small}: mesh {mesh_p99:.3f}s, gossip "
        f"{gossip_p99:.3f}s ({factor:.2f}x, ceiling "
        f"{DETECTION_FACTOR_CEILING:.2f}x) {status}"
    )
    if factor > DETECTION_FACTOR_CEILING:
        failures.append(
            f"gossip detection p99 {gossip_p99:.3f}s exceeds "
            f"{DETECTION_FACTOR_CEILING:.1f}x mesh {mesh_p99:.3f}s at n={small}"
        )

    for mode in ("mesh", "gossip"):
        for size in sizes:
            false_evictions = _row(current, mode, size, "current")[
                "false_evictions_in_window"
            ]
            if false_evictions != 0:
                failures.append(
                    f"{mode} n={size}: {false_evictions} false evictions "
                    "on a clean network"
                )
    return failures


def check_baseline(baseline: dict, current: dict) -> list[str]:
    """Compare shared sweep sizes against the committed results."""
    failures = []
    shared = sorted(
        set(_sizes(baseline, "baseline")) & set(_sizes(current, "current")),
        key=int,
    )
    if not shared:
        raise SystemExit("baseline and current share no sweep sizes")
    for size in shared:
        for label, key in (
            ("detection p99", "detection_p99_seconds"),
            ("liveness bytes/node", "liveness_bytes_per_node_per_sec"),
        ):
            before = float(_row(baseline, "gossip", size, "baseline")[key])
            after = float(_row(current, "gossip", size, "current")[key])
            ratio = after / before if before > 0 else float("inf")
            status = "ok" if ratio <= BASELINE_TOLERANCE else "REGRESSED"
            print(
                f"gossip {label} at n={size}: {before:.3f} -> {after:.3f} "
                f"({ratio:.2f}x, ceiling {BASELINE_TOLERANCE:.2f}x) {status}"
            )
            if ratio > BASELINE_TOLERANCE:
                failures.append(
                    f"gossip {label} at n={size} regressed: "
                    f"{after:.3f} > {BASELINE_TOLERANCE:.2f} * {before:.3f}"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        required=True,
        help="copy of the committed BENCH_membership.json",
    )
    parser.add_argument(
        "--current",
        default="BENCH_membership.json",
        help="freshly written benchmark results (default %(default)s)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    failures = check_invariants(current)
    failures += check_baseline(baseline, current)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
