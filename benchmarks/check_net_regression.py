"""Guard the net fast path: compare a fresh ``BENCH_net_loopback.json``
against the committed one and fail on a throughput regression.

The bench run overwrites the JSON in place, so CI copies the committed
file aside first, runs the benchmark, then invokes this script::

    cp BENCH_net_loopback.json bench-baseline.json
    python -m pytest benchmarks/bench_net_loopback.py -q
    python benchmarks/check_net_regression.py --baseline bench-baseline.json

Two metrics are guarded — raw codec+socket ``frames_per_second`` and the
live cluster's logical ``messages_per_second`` — with a 20% tolerance to
absorb runner-to-runner noise.  Latency is deliberately not gated here:
wall-clock latency on shared CI runners is too noisy for a hard gate and
is tracked through the committed JSON diff instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: fresh value must reach this fraction of the committed value
TOLERANCE = 0.80

#: (label, section, key) of each guarded metric
GUARDED = (
    ("raw frame throughput", "raw_frame_throughput", "frames_per_second"),
    ("live cluster throughput", "live_cluster", "messages_per_second"),
)


def _metric(data: dict, section: str, key: str, origin: str) -> float:
    try:
        value = data[section][key]
    except KeyError:
        raise SystemExit(f"{origin}: missing {section}.{key}") from None
    if not isinstance(value, (int, float)) or value <= 0:
        raise SystemExit(f"{origin}: bad value for {section}.{key}: {value!r}")
    return float(value)


def check(baseline: dict, current: dict) -> list[str]:
    """Return one failure line per guarded metric below tolerance."""
    failures = []
    for label, section, key in GUARDED:
        before = _metric(baseline, section, key, "baseline")
        after = _metric(current, section, key, "current")
        ratio = after / before
        status = "ok" if ratio >= TOLERANCE else "REGRESSED"
        print(
            f"{label}: {before:.1f} -> {after:.1f} "
            f"({ratio:.2f}x, floor {TOLERANCE:.2f}x) {status}"
        )
        if ratio < TOLERANCE:
            failures.append(
                f"{label} regressed: {after:.1f} < "
                f"{TOLERANCE:.2f} * {before:.1f}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        required=True,
        help="copy of the committed BENCH_net_loopback.json",
    )
    parser.add_argument(
        "--current",
        default="BENCH_net_loopback.json",
        help="freshly written benchmark results (default %(default)s)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    failures = check(baseline, current)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
