"""Benchmark harness glue.

Each ``bench_*`` file wraps one experiment module: pytest-benchmark times
one full experiment run (``rounds=1`` — a run is minutes of simulated
time, repetition happens inside via Monte-Carlo seeds) and the resulting
tables are printed so that ``pytest benchmarks/ --benchmark-only`` output
doubles as the experiment report recorded in EXPERIMENTS.md.

``REPRO_BENCH_FULL=1`` switches from the fast (CI-sized) sweeps to the
full sweeps used for the recorded results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent


def persist_bench(name: str, payload: dict) -> Path:
    """Merge ``payload`` into ``BENCH_<name>.json`` at the repo root.

    The file is the machine-readable counterpart of the rendered tables:
    one JSON object per benchmark module, each test merging its section
    under a stable key, so successive PRs can diff the perf trajectory
    without parsing terminal output.  Existing keys not in ``payload``
    are preserved (tests can run individually).
    """
    path = _REPO_ROOT / f"BENCH_{name}.json"
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data.update(payload)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def bench_persist():
    return persist_bench


def run_experiment(benchmark, module, seed: int = 0, capfd=None):
    fast = os.environ.get("REPRO_BENCH_FULL", "") != "1"

    def once():
        return module.run(seed=seed, fast=fast)

    tables = benchmark.pedantic(once, rounds=1, iterations=1)

    def emit() -> None:
        for table in tables:
            print()
            print(table.render())

    if capfd is not None:
        # bypass pytest's capture so the tables land in the terminal (and
        # in the tee'd bench_output.txt) even without -s
        with capfd.disabled():
            emit()
    else:
        emit()
    return tables


@pytest.fixture
def experiment_runner(capfd):
    def runner(benchmark, module, seed: int = 0):
        return run_experiment(benchmark, module, seed=seed, capfd=capfd)

    return runner
