"""Repository-level pytest configuration.

Puts the repository root on ``sys.path`` so the benchmark modules can
reuse the test helpers (``tests.gcs.conftest``) regardless of whether the
suite is launched as ``pytest`` or ``python -m pytest``.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))
