"""Auto-scaling: the availability manager reacts to a crash storm.

Implements the paper's closing vision end-to-end: the operator states a
target probability of losing a context update; the manager watches the
observed failure rate, re-derives the needed number of backup servers, and
— when the cluster is too small to carry them — spawns fresh servers that
the join-type view change absorbs, with running sessions untouched.

    python examples/auto_scaling.py
"""

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.core.manager import AvailabilityManager
from repro.faults.injector import inject
from repro.faults.schedule import FaultSchedule
from repro.services import VodApplication, build_movie


def main() -> None:
    movie = build_movie("stream", duration_seconds=600, frame_rate=10)
    cluster = ServiceCluster.build(
        n_servers=2,
        units={"stream": VodApplication({"stream": movie})},
        replication=2,
        policy=AvailabilityPolicy(num_backups=0, propagation_period=0.5),
        seed=77,
    )
    manager = AvailabilityManager(
        cluster=cluster, target_loss=1e-6, window=30.0, auto_spawn=True
    )
    cluster.availability_manager = manager
    cluster.settle()

    client = cluster.add_client("viewer")
    handle = client.start_session("stream")
    cluster.run(3.0)
    print(f"start: servers={sorted(cluster.servers)}, "
          f"backups per session={cluster.policy.num_backups}")

    # a crash storm: both original servers flap repeatedly
    storm = FaultSchedule()
    for round_index in range(3):
        base = round_index * 6.0
        storm.crash(base + 1.0, "s0").recover(base + 3.0, "s0")
        storm.crash(base + 4.0, "s1").recover(base + 5.5, "s1")
    inject(cluster, storm)
    cluster.run(20.0)

    decision = manager.evaluate()
    print(f"observed failure rate: {decision.observed_failure_rate:.3f}/s/server")
    print(f"manager decided: {decision.num_backups} backups, "
          f"spawned {manager.spawned or 'nothing'}")
    cluster.run(10.0)

    live = cluster.live_servers()
    print(f"cluster is now {sorted(live)}")
    primaries = cluster.primaries_of(handle.session_id)
    recent = [r for r in handle.received if r.time > cluster.sim.now - 2.0]
    print(f"session still served by {primaries}, "
          f"{len(recent)} frames in the last 2s, "
          f"{len(handle.received)} total")
    assert primaries and recent
    assert len(live) >= decision.num_backups + 1


if __name__ == "__main__":
    main()
