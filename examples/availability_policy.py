"""Choosing an availability policy: from a quality target to parameters,
and the cost of each choice.

Implements the paper's closing idea: "the user might express a desired
service quality in terms of a chance of losing a context update, and the
system could then adjust the needed number of backups in each session
group" — plus the other direction (the longest affordable propagation
period for a given session-group size), and the load bill for each choice.

    python examples/availability_policy.py
"""

from repro.analysis.availability import (
    context_loss_probability,
    per_server_load,
    total_outage_probability,
)
from repro.core.manager import backups_for_target, period_for_target
from repro.metrics.report import Table


def main() -> None:
    failure_rate = 1.0 / 3600  # one crash per server-hour
    repair_rate = 1.0 / 120  # two minutes to restart

    table = Table(
        title="policy menu for one crash/server-hour, 2 min repair, "
        "100 sessions on 8 servers",
        columns=[
            "target_loss",
            "backups",
            "period_s",
            "achieved_loss",
            "load msgs/s/server",
        ],
    )
    for target in (1e-3, 1e-5, 1e-7, 1e-9):
        backups = backups_for_target(
            target, failure_rate, propagation_period=0.5
        )
        period = period_for_target(target, failure_rate, num_backups=backups)
        achieved = context_loss_probability(failure_rate, period, backups + 1)
        load = per_server_load(
            n_sessions=100,
            n_servers=8,
            content_group_size=4,
            propagation_period=period,
            num_backups=backups,
            update_rate=0.2,
            response_rate=24.0,
        )
        table.add_row(target, backups, round(period, 3), achieved, load["total"])
    table.add_note(
        "each factor of ~1e2 in quality costs either one more backup or a "
        "shorter propagation period — the paper's central tradeoff"
    )
    table.show()

    outage = Table(
        title="content replication vs probability of total unavailability",
        columns=["replicas", "P(all replicas down)"],
    )
    for replicas in range(1, 6):
        outage.add_row(
            replicas,
            total_outage_probability(failure_rate, repair_rate, replicas),
        )
    outage.show()


if __name__ == "__main__":
    main()
