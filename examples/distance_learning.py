"""Distance education: an adaptive study session that survives a failover.

A student works through a topic; a wrong quiz answer raises the service's
detail level (context!), the primary then crashes, and the replacement —
promoted from a backup that recorded every update — still remembers the
student's struggles and keeps serving detailed explanations.

    python examples/distance_learning.py
"""

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.services import EducationApplication, build_topic


def main() -> None:
    topic = build_topic("distributed-systems-101", n_objects=12, seed=3)
    app = EducationApplication({"distributed-systems-101": topic})
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"distributed-systems-101": app},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=1.0),
        seed=21,
    )
    cluster.settle()

    student = cluster.add_client("carol")
    handle = student.start_session("distributed-systems-101")
    cluster.run(2.0)
    print(f"session started with primary {handle.primary_seen}")

    # open the first object
    student.send_update(handle, {"op": "open", "object": 0})
    cluster.run(1.0)
    print(f"opened: {handle.received[-1].body}")

    # fail a quiz — the service raises the detail level (session context)
    quiz = topic.quizzes()[0]
    wrong_answer = (quiz.answer + 1) % 4
    student.send_update(
        handle, {"op": "answer", "object": quiz.object_id, "answer": wrong_answer}
    )
    cluster.run(1.0)
    feedback = [r for r in handle.received if r.klass == "feedback"][-1]
    print(f"quiz feedback: {feedback.body}  (a remedial object follows)")

    # the primary dies; a backup that saw the quiz answer takes over
    victim = cluster.primaries_of(handle.session_id)[0]
    print(f"crashing primary {victim} mid-lesson ...")
    cluster.crash_server(victim)
    cluster.run(4.0)
    print(f"new primary: {cluster.primaries_of(handle.session_id)[0]}")

    # the new primary still knows the detail level must be 2
    student.send_update(handle, {"op": "open", "object": 1})
    cluster.run(2.0)
    opened = [r for r in handle.received if r.klass == "object"][-1]
    print(f"after failover, opened: {opened.body}")
    assert "extra_detail" in opened.body, (
        "the failover lost the student's context!"
    )
    print("the replacement primary remembered the raised detail level — "
          "no context was lost")


if __name__ == "__main__":
    main()
