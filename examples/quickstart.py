"""Quickstart: build a replicated VoD service, stream a movie, survive a
primary crash.

This is the smallest end-to-end use of the framework's public API::

    python examples/quickstart.py
"""

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.metrics.session_audit import audit_session
from repro.services import VodApplication, build_movie


def main() -> None:
    # 1. Content: one movie, 60 s at 24 fps, MPEG-like GOP structure.
    movie = build_movie("casablanca", duration_seconds=60, frame_rate=24)
    app = VodApplication({"casablanca": movie})

    # 2. A cluster of three servers, the movie replicated on all three,
    #    one backup server per session, context propagated every 0.5 s —
    #    the configuration of the original VoD paper, plus a backup.
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"casablanca": app},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=0.5),
        seed=42,
    )
    cluster.settle()

    # 3. A client discovers the catalog and starts a session.
    client = cluster.add_client("alice")
    client.connect()
    cluster.run(1.0)
    print(f"catalog: {client.catalog}")

    handle = client.start_session("casablanca")
    cluster.run(5.0)
    print(
        f"session {handle.session_id} started, primary={handle.primary_seen}, "
        f"{len(handle.received)} frames received"
    )

    # 4. The client skips ahead — a context update to the session group.
    client.send_update(handle, {"op": "skip", "to": 600})
    cluster.run(2.0)
    print(f"after skip, latest frame index: {handle.received[-1].index}")

    # 5. Crash the primary mid-stream.  A backup takes over; the client
    #    keeps receiving frames and is never told anything happened.
    victim = cluster.primaries_of(handle.session_id)[0]
    print(f"crashing primary {victim} ...")
    cluster.crash_server(victim)
    cluster.run(5.0)
    new_primary = cluster.primaries_of(handle.session_id)[0]
    print(f"new primary: {new_primary}; stream position "
          f"{handle.received[-1].index}, total {len(handle.received)} frames")

    # 6. Audit what the client experienced.  (The skip makes the absolute
    #    "missing" count meaningless — frames 15..599 were never meant to
    #    be sent — so check gap-freeness after the skip target instead.)
    report = audit_session(handle)
    print(
        f"audit: {report.duplicate_count} duplicate frames "
        f"(~{report.duplicate_count / 24:.2f}s, the propagation window), "
        f"longest gap {report.max_gap:.2f}s"
    )
    streamed = sorted({r.index for r in handle.received if r.index >= 600})
    assert streamed == list(range(600, streamed[-1] + 1)), (
        "resend-all must not lose frames"
    )
    print("no frame after the skip point was lost across the failover")


if __name__ == "__main__":
    main()
