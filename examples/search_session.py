"""Refinement search: a query chain whose context outlives its server.

The paper's third example service: "the session context is the list of
previous result sets".  A searcher issues a query, narrows it twice, the
primary crashes, and a later refinement still references result set 0 —
the replacement primary holds the whole chain.

    python examples/search_session.py
"""

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.services import SearchApplication, build_corpus


def show(label: str, response) -> None:
    body = response.body
    print(f"  {label}: result set {body['result_set']} -> "
          f"{len(body['doc_ids'])} documents")


def main() -> None:
    corpus = build_corpus("papers", n_documents=300, seed=9)
    app = SearchApplication({"papers": corpus})
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"papers": app},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=0.5),
        seed=4,
    )
    cluster.settle()

    searcher = cluster.add_client("dave")
    handle = searcher.start_session("papers")
    cluster.run(2.0)

    searcher.send_update(handle, {"op": "query", "terms": ["replication"]})
    cluster.run(1.0)
    show('query "replication"', handle.received[-1])

    searcher.send_update(handle, {"op": "refine", "base": 0, "terms": ["group"]})
    cluster.run(1.0)
    show('refine set 0 with "group"', handle.received[-1])

    searcher.send_update(handle, {"op": "after", "base": 1, "year": 1995})
    cluster.run(1.0)
    show("set 1, published after 1995", handle.received[-1])

    victim = cluster.primaries_of(handle.session_id)[0]
    print(f"crashing primary {victim} ...")
    cluster.crash_server(victim)
    cluster.run(4.0)

    # the paper's example query, served by the replacement primary,
    # referencing a result set computed before the crash
    searcher.send_update(handle, {"op": "intersect", "a": 0, "b": 2})
    cluster.run(2.0)
    show("intersect sets 0 and 2 (after failover)", handle.received[-1])

    sets = [r.body["doc_ids"] for r in handle.received if r.klass == "result"]
    assert set(sets[3]) == set(sets[0]) & set(sets[2]), "context chain broken!"
    print("the full refinement chain survived the failover")


if __name__ == "__main__":
    main()
