"""VoD under fire: a viewer workload, repeated failures, and the effect of
the availability parameters.

Runs the same viewing session twice — once with the original [2]
configuration (no backups) and once with one backup — under an identical
fault schedule, and prints what the viewer experienced in each world.

    python examples/vod_failover.py
"""

import numpy as np

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.core.responses import mpeg_policy
from repro.faults.injector import inject
from repro.faults.schedule import FaultSchedule
from repro.metrics.session_audit import audit_session, service_gaps
from repro.services import VodApplication, build_movie
from repro.services.workload import VodViewerWorkload


def watch_movie(num_backups: int) -> None:
    movie = build_movie("heat", duration_seconds=300, frame_rate=24)
    app = VodApplication({"heat": movie})
    cluster = ServiceCluster.build(
        n_servers=4,
        units={"heat": app},
        replication=4,
        policy=AvailabilityPolicy(
            num_backups=num_backups,
            propagation_period=0.5,
            uncertainty_policy=mpeg_policy(),
        ),
        seed=7,
    )
    cluster.settle()
    client = cluster.add_client("bob")
    handle = client.start_session("heat")
    cluster.run(2.0)

    viewer = VodViewerWorkload(
        cluster=cluster,
        client=client,
        handle=handle,
        rng=np.random.default_rng(11),
        skip_interval_mean=8.0,
        movie_frames=movie.n_frames,
    )
    viewer.start()

    # the same deterministic fault schedule in both configurations
    schedule = (
        FaultSchedule()
        .crash(5.0, "s0").recover(9.0, "s0")
        .crash(14.0, "s1").recover(19.0, "s1")
        .crash(24.0, "s2").crash(24.1, "s3").recover(28.0, "s2")
        .recover(29.0, "s3")
    )
    inject(cluster, schedule)
    cluster.run(40.0)
    viewer.stop()

    report = audit_session(handle)
    gaps = service_gaps(handle, threshold=0.5)
    print(f"--- num_backups={num_backups}")
    print(f"  frames received : {report.responses_received}")
    print(f"  duplicates      : {report.duplicate_count}")
    print(f"  stale responses : {report.stale_count} "
          "(responses generated under an out-of-date context)")
    print(f"  viewer actions  : {viewer.interactions} "
          f"(updates sent: {report.updates_sent})")
    print(f"  outage windows  : {len(gaps)} "
          f"(longest {max((b - a for a, b in gaps), default=0):.2f}s)")


def main() -> None:
    print("Identical movie, viewer and fault schedule; only the policy differs.\n")
    watch_movie(num_backups=0)  # the original VoD design of [2]
    watch_movie(num_backups=1)  # the paper's framework with backups


if __name__ == "__main__":
    main()
