"""repro — reproduction of Fekete & Keidar, ICDCS 2001.

*A Framework for Highly Available Services Based on Group Communication.*

The package layers, bottom to top:

* :mod:`repro.sim` — deterministic discrete-event simulation substrate
  (engine, processes, network with partitions and non-transitive faults).
* :mod:`repro.gcs` — a partitionable virtually synchronous group
  communication system built from scratch on the simulator: membership with
  a flush round, sequencer-based total order, named open groups.
* :mod:`repro.core` — the paper's contribution: the configurable
  high-availability service framework (service / content / session groups,
  unit database, primary + backups, periodic context propagation,
  migration), plus the future-work extensions (replicated state machine,
  availability manager).
* :mod:`repro.services` — the three example applications from Section 2
  (video-on-demand, distance education, refinement search).
* :mod:`repro.faults`, :mod:`repro.metrics`, :mod:`repro.analysis`,
  :mod:`repro.baselines`, :mod:`repro.experiments` — fault injection,
  measurement, the Section-4 analytic models, comparison baselines, and the
  experiment harness that regenerates every quantified claim.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
