"""Command-line entry point.

    python -m repro demo                # the quickstart scenario
    python -m repro experiments         # full experiment report
    python -m repro experiments --fast E3 E4
    python -m repro bench --workers 4   # experiment sweep, seed-sharded
    python -m repro policy --target 1e-4 --failure-rate 0.01
    python -m repro chaos --seed 1 --iterations 5
    python -m repro chaos --workers 4 --iterations 8
    python -m repro chaos --replay chaos-artifacts/chaos-1-3.json
    python -m repro lint src/              # determinism & hygiene lint
    python -m repro lint --list-rules
    python -m repro cluster --nodes 3 --loopback --requests 200 --kill-primary
    python -m repro serve --node-id s0 --listen 127.0.0.1:9000 \\
        --peer s1=127.0.0.1:9001 --peer s2=127.0.0.1:9002
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(_args) -> int:
    import importlib.util
    from pathlib import Path

    example = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if example.exists():
        spec = importlib.util.spec_from_file_location("quickstart", example)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    # installed without the examples directory: run an inline equivalent
    from repro.core import AvailabilityPolicy, ServiceCluster
    from repro.services import VodApplication, build_movie

    movie = build_movie("demo", duration_seconds=30, frame_rate=24)
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"demo": VodApplication({"demo": movie})},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1),
        seed=1,
    )
    cluster.settle()
    client = cluster.add_client("you")
    handle = client.start_session("demo")
    cluster.run(5.0)
    victim = cluster.primaries_of(handle.session_id)[0]
    cluster.crash_server(victim)
    cluster.run(5.0)
    print(
        f"streamed {len(handle.received)} frames across a failover "
        f"({victim} -> {cluster.primaries_of(handle.session_id)[0]})"
    )
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import run_all

    run_all(
        args.ids or None,
        seed=args.seed,
        fast=args.fast,
        workers=getattr(args, "workers", 1),
    )
    return 0


def _cmd_bench(args) -> int:
    """The experiment sweep as a benchmark: sharded across worker
    processes, with a wall-clock accounting line at the end."""
    import time

    from repro.experiments.runner import run_all
    from repro.parallel import effective_workers

    workers = effective_workers(args.workers)
    started = time.perf_counter()  # repro-lint: allow(wall-clock)
    results = run_all(args.ids or None, seed=args.seed, fast=args.fast, workers=workers)
    elapsed = time.perf_counter() - started  # repro-lint: allow(wall-clock)
    print(
        f"bench: {len(results)} experiment(s), {workers} worker(s), "
        f"{elapsed:.1f}s wall total"
    )
    return 0


def _cmd_policy(args) -> int:
    from repro.analysis.availability import context_loss_probability
    from repro.core.manager import backups_for_target, period_for_target

    backups = backups_for_target(
        args.target, args.failure_rate, args.period
    )
    achieved = context_loss_probability(
        args.failure_rate, args.period, backups + 1
    )
    longest = period_for_target(args.target, args.failure_rate, backups)
    print(f"target loss probability : {args.target:g}")
    print(f"per-server failure rate : {args.failure_rate:g} /s")
    print(f"propagation period      : {args.period:g} s")
    print(f"=> backups needed       : {backups}")
    print(f"=> achieved loss        : {achieved:.3g}")
    print(f"=> longest period at b={backups}: {longest:.3g} s")
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import ChaosConfig, explore, replay

    if args.replay:
        result, recorded, reproduced = replay(args.replay)
        names = ", ".join(sorted({v["oracle"] for v in recorded})) or "(none)"
        found = ", ".join(sorted(result.oracle_names())) or "(none)"
        print(f"artifact oracles : {names}")
        print(f"replay oracles   : {found}")
        print(f"reproduced       : {'yes' if reproduced else 'NO'}")
        return 0 if reproduced else 1

    if args.live and args.workers > 1:
        # live runs own real sockets and wall-clock pacing; sharding them
        # across processes would just interleave their timing
        print("chaos: --live requires --workers 1", file=sys.stderr)
        return 2
    try:
        config = ChaosConfig(
            n_servers=args.servers,
            n_sessions=args.sessions,
            duration=args.duration,
            establish=args.establish,
            settle=args.settle,
            max_gap=args.max_gap,
            profile=args.profile,
            plant=args.plant,
            mode="live" if args.live else "sim",
            wan_profile=args.wan,
            membership=args.membership,
        )
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    report = explore(
        config,
        seed=args.seed,
        iterations=args.iterations,
        artifact_dir=args.artifact_dir,
        shrink_budget=args.shrink_budget,
        echo=print,
        workers=args.workers,
    )
    print(report.summary())
    if config.plant is not None:
        # validation mode: the planted bug MUST be found
        return 0 if report.violations_found > 0 else 1
    return 1 if report.violations_found > 0 else 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run

    return run(args)


def _cmd_cluster(args) -> int:
    """Run a live in-process cluster over real sockets and audit it
    (exit 0 = clean session audit)."""
    import json

    from repro.net.cluster import LiveClusterOptions, run_live_cluster

    options = LiveClusterOptions(
        nodes=args.nodes,
        loopback=args.loopback,
        requests=args.requests,
        kill_primary=args.kill_primary,
        update_interval=args.update_interval,
        settle=args.settle,
        transport=args.transport,
        profile=args.profile,
        stats_json=args.stats_json,
    )
    report = run_live_cluster(options)
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.audit_json:
        from pathlib import Path

        Path(args.audit_json).write_text(text + "\n")
    return 0 if report.get("clean") else 1


def _parse_hostport(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return host, int(port)


def _cmd_serve(args) -> int:
    """Run one live server node over the TCP mesh (exit 0 = the final
    view has the expected member count, when one was given)."""
    import json

    from repro.net.cluster import ServeOptions, run_single_node

    peers: dict[str, tuple[str, int]] = {}
    for spec in args.peer or []:
        name, _, addr = spec.partition("=")
        if not name or not addr:
            print(f"bad --peer {spec!r}: expected NAME=HOST:PORT", file=sys.stderr)
            return 2
        peers[name] = _parse_hostport(addr)
    status = run_single_node(
        ServeOptions(
            node_id=args.node_id,
            listen=_parse_hostport(args.listen),
            peers=peers,
            unit=args.unit,
            duration=args.duration,
            expect_members=args.expect_members,
            transport=args.transport,
            profile=args.profile,
            stats_json=args.stats_json,
            control=_parse_hostport(args.control) if args.control else None,
        )
    )
    print(json.dumps(status, indent=2, sort_keys=True))
    if args.expect_members is not None:
        return 0 if len(status["members"]) == args.expect_members else 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the quickstart failover scenario")

    experiments = sub.add_parser("experiments", help="run the experiment suite")
    experiments.add_argument("ids", nargs="*", help="experiment ids (E1..E11)")
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument("--fast", action="store_true")
    experiments.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard experiments across (default 1)",
    )

    bench = sub.add_parser(
        "bench",
        help="experiment sweep as a benchmark: seed-sharded across "
        "worker processes, deterministic merge, wall-clock summary",
    )
    bench.add_argument("ids", nargs="*", help="experiment ids (E1..E11)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--fast", action="store_true")
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (default 0 = one per available core)",
    )

    policy_cmd = sub.add_parser(
        "policy", help="derive availability parameters from a quality target"
    )
    policy_cmd.add_argument("--target", type=float, required=True)
    policy_cmd.add_argument("--failure-rate", type=float, required=True)
    policy_cmd.add_argument("--period", type=float, default=0.5)

    chaos = sub.add_parser(
        "chaos",
        help="randomized fault-space search with invariant oracles "
        "(exit 0 = clean; with --plant, exit 0 = bug found)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--iterations", type=int, default=5)
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard iterations across (default 1)",
    )
    chaos.add_argument(
        "--profile",
        choices=("crashes", "partitions", "gray", "mixed"),
        default="mixed",
    )
    chaos.add_argument(
        "--membership",
        choices=("heartbeat", "gossip"),
        default="heartbeat",
        help="failure-detection protocol for the cluster under test",
    )
    chaos.add_argument("--servers", type=int, default=4)
    chaos.add_argument("--sessions", type=int, default=2)
    chaos.add_argument("--duration", type=float, default=20.0)
    chaos.add_argument(
        "--establish",
        type=float,
        default=3.0,
        help="run time between starting sessions and injecting faults",
    )
    chaos.add_argument(
        "--settle",
        type=float,
        default=10.0,
        help="run time after healing, before the oracles look",
    )
    chaos.add_argument(
        "--max-gap",
        type=float,
        default=5.0,
        help="longest response silence tolerated inside clean windows",
    )
    chaos.add_argument(
        "--live",
        action="store_true",
        help="run each schedule against a real asyncio socket cluster "
        "with fault-injecting transports (wall-clock seconds per run; "
        "artifacts carry the ingress frame log for bit-exact --replay)",
    )
    chaos.add_argument(
        "--wan",
        default=None,
        metavar="PROFILE",
        help="live mode only: shape link latency from a WAN profile "
        "(us-eu, global) and scale the GCS timings to match",
    )
    from repro.chaos.config import PLANTS

    chaos.add_argument(
        "--plant",
        choices=PLANTS,
        default=None,
        help="deliberately weaken the implementation to validate the engine",
    )
    chaos.add_argument("--artifact-dir", default="chaos-artifacts")
    chaos.add_argument("--shrink-budget", type=int, default=48)
    chaos.add_argument(
        "--replay",
        metavar="FILE",
        default=None,
        help="re-run a repro artifact instead of exploring",
    )

    cluster = sub.add_parser(
        "cluster",
        help="live in-process cluster over real sockets with a scripted "
        "VoD workload (exit 0 = clean session audit)",
    )
    cluster.add_argument("--nodes", type=int, default=3)
    cluster.add_argument(
        "--loopback",
        action="store_true",
        help="UDP loopback transport (default is the TCP mesh)",
    )
    cluster.add_argument("--requests", type=int, default=200)
    cluster.add_argument(
        "--kill-primary",
        action="store_true",
        help="crash the session's primary mid-run and restart it later",
    )
    cluster.add_argument("--update-interval", type=float, default=0.02)
    cluster.add_argument("--settle", type=float, default=2.0)
    cluster.add_argument(
        "--transport",
        default=None,
        help="transport backend by registry name (default: udp when "
        "--loopback, else tcp)",
    )
    cluster.add_argument(
        "--profile",
        default="live_lan",
        help="timing profile: live_lan (tight LAN timeouts) or default",
    )
    cluster.add_argument(
        "--audit-json",
        metavar="FILE",
        default=None,
        help="also write the audit report to FILE",
    )
    cluster.add_argument(
        "--stats-json",
        metavar="FILE",
        default=None,
        help="write every node's per-peer transport snapshot to FILE",
    )

    serve = sub.add_parser(
        "serve",
        help="one live server node over the TCP mesh "
        "(for multi-process deployments)",
    )
    serve.add_argument("--node-id", required=True)
    serve.add_argument("--listen", required=True, metavar="HOST:PORT")
    serve.add_argument(
        "--peer",
        action="append",
        metavar="NAME=HOST:PORT",
        help="another node of the mesh (repeatable)",
    )
    serve.add_argument("--unit", default="demo")
    serve.add_argument("--duration", type=float, default=10.0)
    serve.add_argument(
        "--transport",
        default="tcp",
        help="transport backend by registry name (default tcp)",
    )
    serve.add_argument(
        "--profile",
        default="default",
        help="timing profile: default or live_lan (tight LAN timeouts)",
    )
    serve.add_argument(
        "--expect-members",
        type=int,
        default=None,
        help="exit non-zero unless the final view has this many members",
    )
    serve.add_argument(
        "--stats-json",
        metavar="FILE",
        default=None,
        help="write this node's per-peer transport snapshot to FILE",
    )
    serve.add_argument(
        "--control",
        metavar="HOST:PORT",
        default=None,
        help="open a JSON-lines fault control channel (wraps the "
        "transport in a fault injector; see repro.net.faults)",
    )

    from repro.lint.cli import build_parser as build_lint_parser

    lint = sub.add_parser(
        "lint",
        help="determinism & protocol-hygiene static analysis "
        "(exit 0 = clean, 1 = findings)",
    )
    build_lint_parser(lint)

    args = parser.parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "policy":
        return _cmd_policy(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
