"""Analytic models of Section 4 and the Monte-Carlo machinery.

:mod:`repro.analysis.availability` turns the paper's qualitative risk
claims into closed-form probability/cost models; the experiments compare
these predictions against simulation.  :mod:`repro.analysis.montecarlo`
runs repeated seeded simulations and aggregates their metrics.
:mod:`repro.analysis.risk` packages the three Section-4 "bad pattern"
scenarios as reusable scenario builders.
"""

from repro.analysis.availability import (
    context_loss_probability,
    expected_duplicate_responses,
    per_server_load,
    total_outage_probability,
)
from repro.analysis.montecarlo import MonteCarlo, Replication

__all__ = [
    "MonteCarlo",
    "Replication",
    "context_loss_probability",
    "expected_duplicate_responses",
    "per_server_load",
    "total_outage_probability",
]
