"""Closed-form models of the Section-4 risk and cost analysis.

The paper argues qualitatively; these functions make the arguments
quantitative under the standard assumptions (independent server crashes
with exponential inter-failure times, exponential repair, load uniformly
spread).  The experiments validate the *shapes* of these curves against
the simulator.
"""

from __future__ import annotations

import math


def context_loss_probability(
    failure_rate: float,
    propagation_period: float,
    session_group_size: int,
) -> float:
    """P(a client context update is lost), per update.

    Paper: "The probability of losing context updates sent by the client
    is the chance of every session group member failing or separating from
    the client during the period between propagations.  Thus this
    probability decreases as either the propagation frequency or the size
    of the session group rise."

    Model: an update is covered once the next propagation lands in the
    unit database (worst-case exposure = one full period ``T``).  With
    per-server failure rate λ and ``s = 1 + backups`` independent session
    group members, each fails within the window with probability
    ``1 - exp(-λT)``, so::

        P_loss = (1 - exp(-λT)) ** s
    """
    if session_group_size < 1:
        raise ValueError("session_group_size must be >= 1")
    if failure_rate < 0 or propagation_period <= 0:
        raise ValueError("need failure_rate >= 0 and propagation_period > 0")
    single = 1.0 - math.exp(-failure_rate * propagation_period)
    return single**session_group_size


def total_outage_probability(
    failure_rate: float,
    repair_rate: float,
    replication: int,
) -> float:
    """Steady-state P(no live replica of a content unit).

    Paper: "Every server which can provide this content may have either
    crashed or disconnected ... The probability of this scenario can be
    reduced by increasing the degree of replication."

    Model: each server is independently down with probability
    ``q = λ / (λ + μ)`` (alternating renewal process); all ``r`` replicas
    down simultaneously with probability ``q**r``.
    """
    if replication < 1:
        raise ValueError("replication must be >= 1")
    if failure_rate < 0 or repair_rate <= 0:
        raise ValueError("need failure_rate >= 0 and repair_rate > 0")
    down = failure_rate / (failure_rate + repair_rate)
    return down**replication


def expected_duplicate_responses(
    propagation_period: float,
    response_rate: float,
) -> float:
    """Expected duplicated responses per failover under resend-all.

    The crash lands uniformly inside the propagation window, so the
    successor replays on average half a period of responses:
    ``E[dups] = rate * T / 2`` (the paper's VoD anecdote: T = 0.5 s ⇒
    about half a second of duplicate frames, i.e. up to ``rate·T``).
    """
    if propagation_period <= 0 or response_rate < 0:
        raise ValueError("need positive period and non-negative rate")
    return response_rate * propagation_period / 2.0


def expected_lost_updates_per_failover(
    update_rate: float,
    propagation_period: float,
    session_group_size: int,
    failure_rate: float,
) -> float:
    """Expected client updates lost per total-session-group failure: the
    updates of up to one window are exposed; they are lost only when every
    member dies before propagating (same event as context loss)."""
    p_all_fail = context_loss_probability(
        failure_rate, propagation_period, session_group_size
    )
    return p_all_fail * update_rate * propagation_period


def per_server_load(
    n_sessions: int,
    n_servers: int,
    content_group_size: int,
    propagation_period: float,
    num_backups: int,
    update_rate: float,
    response_rate: float,
) -> dict[str, float]:
    """Expected per-server message-processing load (messages/second).

    Paper: "Whenever client database information is propagated, each
    server in the content group must process it; when the session groups
    become larger, each server is a backup in more groups, and must
    therefore receive more client requests."

    Breakdown per server:

    * ``propagation`` — every content-group member processes every
      propagation of every session hosted on its unit(s):
      ``sessions_per_unit_server * (1/T)`` where each session propagates
      once per period and each of the unit's ``g`` replicas processes it;
    * ``backup_updates`` — a server is backup in ``n·b/N`` session groups
      on average and receives ``update_rate`` messages in each;
    * ``primary_updates`` — primaries receive the same updates;
    * ``responses`` — primaries send ``response_rate`` per session.
    """
    if n_servers <= 0:
        raise ValueError("n_servers must be positive")
    sessions_per_server = n_sessions / n_servers
    # every session's propagation is processed by each content replica;
    # a server hosts (on average) sessions of its units: with uniform
    # placement each server processes n_sessions * g / N propagations/T.
    propagation = (
        n_sessions * content_group_size / n_servers / propagation_period
    )
    backup_updates = sessions_per_server * num_backups * update_rate
    primary_updates = sessions_per_server * update_rate
    responses = sessions_per_server * response_rate
    return {
        "propagation": propagation,
        "backup_updates": backup_updates,
        "primary_updates": primary_updates,
        "responses": responses,
        "total": propagation + backup_updates + primary_updates + responses,
    }


def takeover_gap_estimate(
    suspect_timeout: float,
    flush_rounds: int = 3,
    round_trip: float = 0.001,
    state_exchange: bool = False,
) -> float:
    """Rough client-visible service gap after a primary crash: failure
    detection plus the view-change rounds, plus one extra ordered round
    when a state exchange precedes reallocation (join-type changes)."""
    gap = suspect_timeout + flush_rounds * round_trip
    if state_exchange:
        gap += 2 * round_trip
    return gap


__all__ = [
    "context_loss_probability",
    "expected_duplicate_responses",
    "expected_lost_updates_per_failover",
    "per_server_load",
    "takeover_gap_estimate",
    "total_outage_probability",
]
