"""Markov-chain availability models.

The simple steady-state model in :mod:`repro.analysis.availability`
predicts the *fraction of time* all replicas are down.  For sessions the
sharper question (E5) is transient: what is the probability that, during a
session of length ``T``, the replica set **ever** hits the all-down state
— because with volatile unit databases that event is fatal, not just an
outage.

We model the number of down replicas as a birth–death chain:

* state ``k`` (``0 <= k <= n``): ``k`` replicas down;
* failure transitions ``k -> k+1`` at rate ``(n-k)·λ`` (independent
  exponential lifetimes);
* repair transitions ``k -> k-1`` at rate ``k·μ`` (independent repair) or
  ``μ`` (a single repairman — restarts serialized through one operator);
* for hitting probabilities, state ``n`` is absorbing.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm


def _generator(
    n: int, failure_rate: float, repair_rate: float,
    absorbing_all_down: bool, single_repairman: bool,
) -> np.ndarray:
    q = np.zeros((n + 1, n + 1))
    for k in range(n + 1):
        if k == n and absorbing_all_down:
            continue  # absorbing: the row stays zero
        if k < n:
            q[k, k + 1] = (n - k) * failure_rate  # another replica fails
        if k > 0:
            q[k, k - 1] = repair_rate if single_repairman else k * repair_rate
        q[k, k] = -q[k].sum()
    return q


def all_down_hitting_probability(
    n: int,
    failure_rate: float,
    repair_rate: float,
    horizon: float,
    single_repairman: bool = False,
) -> float:
    """P(the all-down state is reached within ``horizon`` seconds),
    starting from everything up.

    This is the per-session probability of *permanent* loss in E5's
    volatile-database world: one visit to all-down erases the session.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if failure_rate < 0 or repair_rate <= 0 or horizon < 0:
        raise ValueError("rates must be positive and horizon non-negative")
    q = _generator(
        n, failure_rate, repair_rate,
        absorbing_all_down=True, single_repairman=single_repairman,
    )
    transition = expm(q * horizon)
    return float(min(1.0, max(0.0, transition[0, n])))


def steady_state_distribution(
    n: int,
    failure_rate: float,
    repair_rate: float,
    single_repairman: bool = False,
) -> np.ndarray:
    """Long-run distribution over the number of down replicas.

    With independent repair this reduces to the binomial with
    ``p = λ/(λ+μ)``; with a single repairman the tail is heavier — the
    cost of serializing restarts through one operator.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    # birth-death detailed balance: pi_{k+1} = pi_k * up_k / down_{k+1}
    pi = [1.0]
    for k in range(n):
        up = (n - k) * failure_rate
        down = repair_rate if single_repairman else (k + 1) * repair_rate
        pi.append(pi[-1] * up / down)
    pi = np.array(pi)
    return pi / pi.sum()


def steady_state_all_down(
    n: int,
    failure_rate: float,
    repair_rate: float,
    single_repairman: bool = False,
) -> float:
    """Long-run fraction of time with every replica down."""
    return float(
        steady_state_distribution(
            n, failure_rate, repair_rate, single_repairman
        )[n]
    )


def expected_sessions_lost_fraction(
    n: int,
    failure_rate: float,
    repair_rate: float,
    session_length: float,
    single_repairman: bool = False,
) -> float:
    """Alias with the E5 framing: the expected fraction of sessions of the
    given length that are permanently lost to an all-down event."""
    return all_down_hitting_probability(
        n, failure_rate, repair_rate, session_length, single_repairman
    )


__all__ = [
    "all_down_hitting_probability",
    "expected_sessions_lost_fraction",
    "steady_state_all_down",
    "steady_state_distribution",
]
