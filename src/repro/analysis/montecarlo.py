"""Monte-Carlo experiment machinery.

An experiment function maps ``(seed,) -> dict[str, float]``; the runner
executes it over many seeds (each seed builds an independent simulated
world) and aggregates every metric with mean / standard deviation /
extremes.  All experiments in :mod:`repro.experiments` are built on this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Replication:
    seed: int
    metrics: dict[str, float]


@dataclass
class Aggregate:
    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ±{self.std:.2g}"


@dataclass
class MonteCarlo:
    """Runs ``fn(seed)`` for ``n_reps`` seeds derived from ``base_seed``."""

    fn: Callable[[int], dict[str, float]]
    n_reps: int = 5
    base_seed: int = 0
    replications: list[Replication] = field(default_factory=list)

    def run(self) -> "MonteCarlo":
        self.replications = []
        for rep in range(self.n_reps):
            seed = self.base_seed * 10_007 + rep
            metrics = self.fn(seed)
            self.replications.append(Replication(seed=seed, metrics=metrics))
        return self

    def metric_names(self) -> list[str]:
        names: set[str] = set()
        for replication in self.replications:
            names.update(replication.metrics)
        return sorted(names)

    def values(self, metric: str) -> list[float]:
        return [
            r.metrics[metric] for r in self.replications if metric in r.metrics
        ]

    def aggregate(self, metric: str) -> Aggregate:
        values = self.values(metric)
        if not values:
            return Aggregate(math.nan, math.nan, math.nan, math.nan, 0)
        mean = sum(values) / len(values)
        if len(values) > 1:
            variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        else:
            variance = 0.0
        return Aggregate(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            n=len(values),
        )

    def summary(self) -> dict[str, Aggregate]:
        return {name: self.aggregate(name) for name in self.metric_names()}


__all__ = ["Aggregate", "MonteCarlo", "Replication"]
