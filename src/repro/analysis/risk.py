"""The Section-4 "bad pattern" scenarios as reusable builders.

Section 4 enumerates exactly three scenario families that can leave a
client without a unique live primary:

1. membership views diverging *while the transmission system is unstable*
   (transient, during view changes);
2. every server holding the content crashed or disconnected;
3. a non-transitive network (WAN) where servers cannot reach each other
   yet both reach the client.

Each builder returns a configured cluster plus a streaming session handle,
with the scenario's faults scheduled; experiment E3 measures the outcome.
"""

from __future__ import annotations

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.faults.injector import inject
from repro.faults.schedule import FaultSchedule
from repro.services.content import build_movie
from repro.services.vod import VodApplication


def _base_cluster(n_servers: int, seed: int, frame_rate: float = 10.0):
    movie = build_movie("m0", duration_seconds=600, frame_rate=frame_rate)
    app = VodApplication({"m0": movie})
    cluster = ServiceCluster.build(
        n_servers=n_servers,
        units={"m0": app},
        replication=n_servers,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=0.5),
        seed=seed,
    )
    cluster.settle()
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(3.0)
    return cluster, client, handle


def scenario_stable(seed: int = 0):
    """Control: no faults at all."""
    return _base_cluster(3, seed)


def scenario_failover_churn(seed: int = 0, crashes: int = 2, gap: float = 6.0):
    """Repeated primary crashes with recoveries — view changes happen but
    connectivity is always transitive, so the unique-primary goal should
    hold up to sub-second transition windows."""
    cluster, client, handle = _base_cluster(4, seed)
    schedule = FaultSchedule()
    hosts = cluster.hosts_of("m0")
    for index in range(crashes):
        victim = hosts[index % len(hosts)]
        schedule.crash(index * gap + 1.0, victim)
        schedule.recover(index * gap + 1.0 + gap / 2, victim)
    inject(cluster, schedule)
    return cluster, client, handle


def scenario_total_content_loss(seed: int = 0, at: float = 2.0):
    """Every replica of the content crashes: availability is impossible
    (Section 4's second bullet) until someone recovers."""
    cluster, client, handle = _base_cluster(3, seed)
    schedule = FaultSchedule()
    for server in cluster.hosts_of("m0"):
        schedule.crash(at, server)
    inject(cluster, schedule)
    return cluster, client, handle


def scenario_lan_partition(seed: int = 0, at: float = 2.0, duration: float = 8.0):
    """A clean (transitive) partition: the client lands in one component;
    only that component's servers can reach it, so the client should never
    hear two primaries at once."""
    cluster, client, handle = _base_cluster(4, seed)
    cluster.run(0.5)
    primary = cluster.primaries_of(handle.session_id)
    isolated = primary[0] if primary else "s0"
    others = [s for s in cluster.servers if s != isolated]
    schedule = (
        FaultSchedule()
        .partition(at, {isolated}, set(others) | {client.client_id})
        .heal(at + duration)
    )
    inject(cluster, schedule)
    return cluster, client, handle


def scenario_wan_non_transitive(
    seed: int = 0, at: float = 2.0, duration: float = 8.0
):
    """The WAN pattern: the two content servers lose the link between
    themselves but both still reach the client — the one scenario where
    the client can legitimately hear two primaries."""
    cluster, client, handle = _base_cluster(2, seed)
    schedule = (
        FaultSchedule()
        .cut_link(at, "s0", "s1")
        .restore_link(at + duration, "s0", "s1")
    )
    inject(cluster, schedule)
    return cluster, client, handle


SCENARIOS = {
    "stable": scenario_stable,
    "failover-churn": scenario_failover_churn,
    "total-content-loss": scenario_total_content_loss,
    "lan-partition": scenario_lan_partition,
    "wan-non-transitive": scenario_wan_non_transitive,
}


__all__ = [
    "SCENARIOS",
    "scenario_failover_churn",
    "scenario_lan_partition",
    "scenario_stable",
    "scenario_total_content_loss",
    "scenario_wan_non_transitive",
]
