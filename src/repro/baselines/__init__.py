"""Comparison baselines.

The paper positions its framework against (a) an unreplicated server and
(b) the original VoD design of [2], whose session groups contain only the
primary; (c) a full-synchronization variant bounds the cost axis.  All
three are *configurations of the same framework code*, so comparisons
measure the policies, not implementation differences.
"""

from repro.baselines.full_sync import full_sync_policy
from repro.baselines.no_backup import no_backup_policy
from repro.baselines.single_server import single_server_cluster

__all__ = ["full_sync_policy", "no_backup_policy", "single_server_cluster"]
