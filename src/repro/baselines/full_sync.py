"""Baseline: (near-)full synchronization — propagate at response rate.

The cost ceiling of the tradeoff axis: propagating context as often as
responses are produced makes the unit database almost exactly current
(failovers lose/duplicate at most one response) but charges every content
replica a processing load proportional to the response rate — the load the
paper's VoD design explicitly avoids ("since the video stream has a high
bandwidth, this would result in significant load").
"""

from __future__ import annotations

from repro.core.config import AvailabilityPolicy
from repro.core.responses import ResendAll


def full_sync_policy(
    response_rate: float,
    num_backups: int = 1,
) -> AvailabilityPolicy:
    """Propagation period matched to one response interval."""
    if response_rate <= 0:
        raise ValueError("response_rate must be positive")
    return AvailabilityPolicy(
        num_backups=num_backups,
        propagation_period=1.0 / response_rate,
        uncertainty_policy=ResendAll(),
    )


__all__ = ["full_sync_policy"]
