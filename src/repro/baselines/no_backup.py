"""Baseline: the original VoD design of [2] — no backup servers.

"This group layout generalizes the approach of [2], where similar groups
are created, but with session groups consisting of a single server — that
is, there are no backup servers."  Content is still replicated and the
unit database still receives periodic propagations; what is missing is the
intermediate freshness level, so client context updates sent after the
last propagation die with the primary.
"""

from __future__ import annotations

from repro.core.config import AvailabilityPolicy
from repro.core.responses import UncertaintyPolicy


def no_backup_policy(
    propagation_period: float = 0.5,
    uncertainty_policy: UncertaintyPolicy | None = None,
) -> AvailabilityPolicy:
    """The [2] configuration: session group = {primary}."""
    kwargs = {"num_backups": 0, "propagation_period": propagation_period}
    if uncertainty_policy is not None:
        kwargs["uncertainty_policy"] = uncertainty_policy
    return AvailabilityPolicy(**kwargs)


__all__ = ["no_backup_policy"]
