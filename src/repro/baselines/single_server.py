"""Baseline: one server, no replication.

The availability floor: any crash is a total outage for its sessions, and
no context survives.  Everything else (GCS, framework code) is identical,
so measured differences are attributable to replication alone.
"""

from __future__ import annotations

from repro.core.application import ServiceApplication
from repro.core.config import AvailabilityPolicy
from repro.core.service import ServiceCluster


def single_server_cluster(
    units: dict[str, ServiceApplication],
    propagation_period: float = 0.5,
    seed: int = 0,
    **build_kwargs,
) -> ServiceCluster:
    """A one-server deployment (replication 1, no backups)."""
    policy = AvailabilityPolicy(
        num_backups=0, propagation_period=propagation_period
    )
    return ServiceCluster.build(
        n_servers=1,
        units=units,
        replication=1,
        policy=policy,
        seed=seed,
        **build_kwargs,
    )


__all__ = ["single_server_cluster"]
