"""Chaos exploration engine: randomized fault-space search with invariant
oracles, deterministic replay, and schedule shrinking.

The paper argues its framework keeps sessions highly available under the
failures Section 4 enumerates; this package searches for counterexamples
instead of hand-picking scenarios.  A seeded explorer draws layered
random fault schedules (crashes, partitions, gray failures, message
adversity, crash-at-protocol-step traps), drives a live cluster through
them, and checks invariant oracles.  Violations are delta-debugged to a
minimal schedule and persisted as replayable repro artifacts.
"""

from repro.chaos.artifact import load_artifact, write_artifact
from repro.chaos.config import PLANTS, ChaosConfig
from repro.chaos.engine import ExplorationReport, IterationOutcome, explore, replay
from repro.chaos.generator import PROFILES, generate_schedule, resolve_profile
from repro.chaos.live import LiveChaosCluster, replay_live, run_live_schedule
from repro.chaos.oracles import ORACLES, RunObservation, Violation, run_oracles
from repro.chaos.runner import RunResult, disruption_spans, run_schedule, trace_digest
from repro.chaos.shrink import shrink_events

__all__ = [
    "ChaosConfig",
    "ExplorationReport",
    "IterationOutcome",
    "LiveChaosCluster",
    "ORACLES",
    "PLANTS",
    "PROFILES",
    "RunObservation",
    "RunResult",
    "Violation",
    "disruption_spans",
    "explore",
    "generate_schedule",
    "load_artifact",
    "replay",
    "replay_live",
    "resolve_profile",
    "run_oracles",
    "run_live_schedule",
    "run_schedule",
    "shrink_events",
    "trace_digest",
    "write_artifact",
]
