"""Repro artifacts: a found failure as a self-contained JSON file.

An artifact carries everything a deterministic re-run needs — the chaos
config, the run seed, and the (shrunk) schedule — plus the violations it
produced, so ``python -m repro chaos --replay <file>`` re-triggers the
identical oracle failure with no other context.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.chaos.config import ChaosConfig
from repro.chaos.oracles import Violation
from repro.faults.schedule import FaultSchedule

FORMAT = "repro-chaos/1"


def write_artifact(
    path: str | Path,
    *,
    config: ChaosConfig,
    seed: int,
    schedule: FaultSchedule,
    violations: list[Violation],
    profile: str,
    original_event_count: int,
    shrink_runs: int,
    mode: str = "sim",
    trace_digest: str | None = None,
    replay_log: str | None = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": FORMAT,
        "seed": seed,
        "profile": profile,
        "config": config.to_json(),
        "schedule": schedule.to_json(),
        "violations": [v.to_json() for v in violations],
        "original_event_count": original_event_count,
        "shrunk_event_count": len(schedule),
        "shrink_runs": shrink_runs,
    }
    if mode != "sim":
        # live artifacts additionally carry the recorded ingress frame
        # log and the trace digest it must reproduce: `--replay` of a
        # live failure is a pure-sim re-execution checked bit-for-bit
        payload["mode"] = mode
        if trace_digest is not None:
            payload["trace_digest"] = trace_digest
        if replay_log is not None:
            payload["replay_log"] = replay_log
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | Path) -> dict:
    """Parse and validate an artifact; returns a dict with ``config``
    (:class:`ChaosConfig`), ``seed``, ``schedule`` (:class:`FaultSchedule`)
    and the recorded ``violations`` (as plain dicts)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise ValueError(
            f"{path} is not a {FORMAT} artifact (format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"{path} is not a JSON object"
        )
    try:
        seed = int(data["seed"])
        config = ChaosConfig.from_json(data["config"])
        schedule = FaultSchedule.from_json(data["schedule"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed chaos artifact {path}: {exc}") from exc
    return {
        "seed": seed,
        "config": config,
        "schedule": schedule,
        "violations": data.get("violations", []),
        "profile": data.get("profile"),
        "mode": data.get("mode", "sim"),
        "trace_digest": data.get("trace_digest"),
        "replay_log": data.get("replay_log"),
    }


__all__ = ["FORMAT", "load_artifact", "write_artifact"]
