"""Chaos run configuration and the planted-bug registry.

A :class:`ChaosConfig` pins everything about one exploration *except* the
randomness: cluster shape, run phase lengths, oracle tolerances, and an
optional **planted bug**.  Plants deliberately weaken the implementation
(e.g. disable the handoff-timeout fallback) so the engine's whole pipeline
— find, shrink, persist, replay — can be validated end-to-end against a
failure that is known to exist.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import AvailabilityPolicy
from repro.gcs.settings import GcsSettings

#: Named deliberate weakenings used to validate the chaos pipeline.
#:
#: ``handoff-stall`` removes the handoff-timeout fallback: a successor
#: primary selected by a *controlled* migration waits for the old
#: primary's context forever.  If the old primary dies before sending it
#: (exactly what the ``pre-handoff`` crash hook provokes), the session
#: goes silent — the responsiveness and convergence oracles both fire.
#:
#: ``partition-amnesia`` turns off ``GcsSettings.readmit_evicted``: each
#: daemon permanently distrusts liveness evidence from members it once
#: evicted, so after a partition heals the two sides keep discarding each
#: other's heartbeats, the views never re-merge, and both primaries
#: persist — the convergence oracle fires.  Unlike ``handoff-stall`` this
#: plant needs real *partition* faults, which is exactly what makes it
#: the validation plant for live-mode chaos (the fault-injecting
#: transport is what made live partitions possible at all).
PLANTS = ("handoff-stall", "partition-amnesia")


@dataclass(frozen=True)
class ChaosConfig:
    """Shape and tolerances of one chaos exploration.

    Attributes:
        n_servers: cluster size.  One server (the highest-numbered) is the
            **spare**: generators never crash, slow down, or isolate it,
            so at least one fully-informed witness always survives — the
            precondition for the lost-update and convergence oracles.
        n_sessions: concurrent live sessions (one client + VoD viewer
            workload each), each on its own fully-replicated unit.
        duration: length of the fault-injection window (seconds).
        establish: run time between starting sessions and injecting
            faults (lets streaming reach steady state).
        settle: run time after healing everything, before the oracles
            look (convergence allowance).
        profile: fault mix — ``crashes``, ``partitions``, ``gray`` or
            ``mixed`` (each iteration samples one of the three).
        max_gap: responsiveness bound — the longest response silence
            tolerated *inside clean windows* before the oracle fires.
        overlap_tolerance: role-overlap / dual-sender time tolerated
            inside clean windows (absorbs benign handover edges).
        stabilize_margin: padding added around every disruption when
            computing clean windows (failover + view-formation allowance).
        plant: optional planted bug name from :data:`PLANTS`.
        mode: ``sim`` (default) runs the schedule in the simulator;
            ``live`` runs it against a real asyncio socket cluster with
            fault-injecting transports (``repro.chaos.live``).  Live runs
            take wall-clock time — size ``duration``/``establish``/
            ``settle`` accordingly.
        wan_profile: optional :data:`repro.net.faults.WAN_PROFILES` name;
            live mode shapes every link's base delay and jitter from the
            profile's latency matrix and scales the GCS timing constants
            by its ``settings_factor``.
        membership: failure-detection protocol for the cluster under
            test — ``heartbeat`` (all-pairs mesh, the default) or
            ``gossip`` (SWIM; see ``gcs/swim.py``).  Applied to the GCS
            settings alongside any plant, in both sim and live modes.
    """

    n_servers: int = 4
    n_sessions: int = 2
    duration: float = 20.0
    establish: float = 3.0
    settle: float = 10.0
    profile: str = "mixed"
    max_gap: float = 5.0
    overlap_tolerance: float = 0.5
    stabilize_margin: float = 2.0
    plant: str | None = None
    mode: str = "sim"
    wan_profile: str | None = None
    membership: str = "heartbeat"

    def __post_init__(self) -> None:
        if self.n_servers < 3:
            raise ValueError("chaos needs >= 3 servers (one is the spare)")
        if self.n_sessions < 1:
            raise ValueError("n_sessions must be >= 1")
        if self.profile not in ("crashes", "partitions", "gray", "mixed"):
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.plant is not None and self.plant not in PLANTS:
            raise ValueError(f"unknown plant {self.plant!r} (valid: {PLANTS})")
        if self.mode not in ("sim", "live"):
            raise ValueError(f"unknown mode {self.mode!r} (valid: sim, live)")
        if self.wan_profile is not None and self.mode != "live":
            raise ValueError("wan_profile requires mode='live'")
        if self.membership not in ("heartbeat", "gossip"):
            raise ValueError(
                f"unknown membership {self.membership!r} (valid: heartbeat, gossip)"
            )

    # ------------------------------------------------------------------
    # derived topology
    # ------------------------------------------------------------------
    @property
    def server_ids(self) -> list[str]:
        return [f"s{i}" for i in range(self.n_servers)]

    @property
    def spare(self) -> str:
        """The never-faulted witness server."""
        return f"s{self.n_servers - 1}"

    @property
    def faultable_servers(self) -> list[str]:
        return [s for s in self.server_ids if s != self.spare]

    @property
    def client_ids(self) -> list[str]:
        return [f"c{i}" for i in range(self.n_sessions)]

    @property
    def unit_ids(self) -> list[str]:
        """All sessions share ONE content unit.  This matters: the
        join-type rebalance caps primaries per server at
        ``ceil(sessions/servers)`` *within a unit*, so only a multi-session
        unit ever performs controlled migrations (primary moves between
        two live servers — the protocol step the handoff machinery and its
        crash hooks exist for).  One session per unit would never migrate
        except by failure."""
        return ["m0"]

    def build_policy(self) -> AvailabilityPolicy:
        """Full session groups (every server backs every session) so the
        spare always holds a backup context — what makes "an update
        vanished silently" a true invariant rather than the paper's
        accepted probabilistic loss."""
        policy = AvailabilityPolicy(
            num_backups=self.n_servers - 1,
            propagation_period=0.25,
        )
        if self.plant == "handoff-stall":
            # the bug: successor waits (effectively) forever for a handoff
            policy.handoff_timeout = 1e9
        return policy

    def apply_plant_settings(self, settings: GcsSettings) -> GcsSettings:
        """Project this config onto the GCS settings: select the
        failure-detection protocol, then weaken the settings when the
        plant lives at that layer (identity for every other plant — and
        for no plant at all)."""
        if self.membership != settings.membership_mode:
            settings = dataclasses.replace(
                settings, membership_mode=self.membership
            )
        if self.plant == "partition-amnesia":
            return dataclasses.replace(settings, readmit_evicted=False)
        return settings

    # ------------------------------------------------------------------
    # persistence (repro artifacts embed the config)
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "ChaosConfig":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown chaos config keys: {sorted(unknown)}")
        return cls(**data)


__all__ = ["PLANTS", "ChaosConfig"]
