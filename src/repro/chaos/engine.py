"""The chaos exploration loop: generate → run → check → shrink → persist.

Each iteration derives its own generator RNG and run seed from the root
seed, draws a random layered fault schedule, executes it against a live
cluster, and evaluates the invariant oracles.  On a violation the engine
delta-debugs the schedule down to a minimal failing subsequence and
writes a replayable repro artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.chaos.artifact import load_artifact, write_artifact
from repro.chaos.config import ChaosConfig
from repro.chaos.generator import generate_schedule, resolve_profile
from repro.chaos.runner import RunResult, run_schedule
from repro.chaos.shrink import shrink_events
from repro.faults.schedule import FaultSchedule
from repro.parallel import map_sharded


@dataclass
class IterationOutcome:
    index: int
    run_seed: int
    profile: str
    event_count: int
    result: RunResult
    shrunk: FaultSchedule | None = None
    shrink_runs: int = 0
    artifact_path: str | None = None

    @property
    def failed(self) -> bool:
        return self.result.failed


@dataclass
class ExplorationReport:
    config: ChaosConfig
    root_seed: int
    iterations: list[IterationOutcome] = field(default_factory=list)

    @property
    def violations_found(self) -> int:
        return sum(1 for it in self.iterations if it.failed)

    @property
    def artifacts(self) -> list[str]:
        return [it.artifact_path for it in self.iterations if it.artifact_path]

    def summary(self) -> str:
        plant = f", plant {self.config.plant}" if self.config.plant else ""
        return (
            f"chaos: {len(self.iterations)} iteration(s), seed {self.root_seed}, "
            f"profile {self.config.profile}{plant} -> "
            f"{self.violations_found} violation(s), "
            f"{len(self.artifacts)} artifact(s)"
        )


def _run_seed(root_seed: int, index: int) -> int:
    """Deterministic per-iteration run seed, decoupled from the generator
    stream so adding generator draws never changes the run."""
    return (root_seed * 1_000_003 + index * 8_191 + 1) % (2**31 - 1)


def _explore_iteration(task: tuple) -> tuple[IterationOutcome, list[str]]:
    """One full iteration: generate → run → (shrink → persist on failure).

    Module-level and driven by a plain-data task tuple so it can run
    either in-process or inside a worker process (``--workers N``); the
    outcome is identical either way because everything derives from
    ``(config, root seed, index)``.  Returns the outcome plus the
    progress lines describing it (printed by the parent, in index order,
    so parallel output is not interleaved)."""
    config, seed, index, shrink_budget, artifact_dir = task
    lines: list[str] = []
    gen_rng = np.random.default_rng([seed, index])
    profile = resolve_profile(config, index)
    schedule = generate_schedule(gen_rng, config, profile)
    run_seed = _run_seed(seed, index)
    result = run_schedule(config, run_seed, schedule)
    outcome = IterationOutcome(
        index=index,
        run_seed=run_seed,
        profile=profile,
        event_count=len(schedule),
        result=result,
    )
    if not result.failed:
        lines.append(
            f"[{index}] {profile:<10} {len(schedule):3d} events  "
            f"{result.responses:5d} responses  ok"
        )
        return outcome, lines

    names = ", ".join(sorted(result.oracle_names()))
    lines.append(
        f"[{index}] {profile:<10} {len(schedule):3d} events  "
        f"VIOLATION ({names}) — shrinking..."
    )
    target = sorted(result.oracle_names())[0]

    def still_fails(events) -> bool:
        rerun = run_schedule(config, run_seed, FaultSchedule(events=list(events)))
        return target in rerun.oracle_names()

    shrunk_events, runs = shrink_events(
        schedule.sorted_events(), still_fails, budget=shrink_budget
    )
    shrunk = FaultSchedule(events=shrunk_events)
    final = run_schedule(config, run_seed, shrunk)
    outcome.shrunk = shrunk
    outcome.shrink_runs = runs
    lines.append(
        f"    shrunk {len(schedule)} -> {len(shrunk)} events "
        f"in {runs} re-runs (oracle: {target})"
    )
    # The artifact must describe ONE actual failing execution — schedule,
    # violations, and (live) frame log all from the same run.  Sim runs
    # are deterministic so `final` always fails; a live re-run can come
    # up clean (wall-clock variance), in which case the artifact keeps
    # the original unshrunk failure rather than mixing the two.
    if final.failed:
        artifact_schedule, artifact_result = shrunk, final
    else:
        artifact_schedule, artifact_result = schedule, result
        lines.append(
            "    shrunk schedule did not fail on re-run; "
            "persisting the original schedule"
        )
    if artifact_dir is not None:
        path = Path(artifact_dir) / f"chaos-{seed}-{index}.json"
        write_artifact(
            path,
            config=config,
            seed=run_seed,
            schedule=artifact_schedule,
            violations=artifact_result.violations,
            profile=profile,
            original_event_count=len(schedule),
            shrink_runs=runs,
            mode=artifact_result.mode,
            trace_digest=(
                artifact_result.digest if artifact_result.replay_log else None
            ),
            replay_log=artifact_result.replay_log,
        )
        outcome.artifact_path = str(path)
        lines.append(f"    artifact: {path}")
    return outcome, lines


def explore(
    config: ChaosConfig,
    seed: int,
    iterations: int,
    artifact_dir: str | Path | None = None,
    shrink_budget: int = 48,
    echo=None,
    workers: int = 1,
) -> ExplorationReport:
    """Run the exploration loop; returns the full report.

    ``echo`` (e.g. ``print``) receives one progress line per iteration.
    ``workers > 1`` shards the (independent) iterations across processes;
    the report is merged ordered by iteration index, never by completion,
    so the result — including every ``trace_digest`` — is identical to a
    serial run.
    """
    say = echo or (lambda _line: None)
    report = ExplorationReport(config=config, root_seed=seed)
    tasks = [
        (config, seed, index, shrink_budget,
         str(artifact_dir) if artifact_dir is not None else None)
        for index in range(iterations)
    ]
    if workers <= 1:
        # lazy in-process loop: progress lines stream as iterations finish
        results = (_explore_iteration(task) for task in tasks)
    else:
        results = map_sharded(_explore_iteration, tasks, workers=workers)
    for outcome, lines in results:
        report.iterations.append(outcome)
        for line in lines:
            say(line)
    return report


def replay(path: str | Path) -> tuple[RunResult, list[dict], bool]:
    """Re-run an artifact exactly.

    Returns ``(result, recorded_violations, reproduced)`` where
    ``reproduced`` is true when every recorded oracle fired again.

    Sim artifacts re-run from ``(config, seed, schedule)``.  Live
    artifacts carry their recorded ingress frame log, so replay is a
    pure-simulation re-execution — no sockets, no wall-clock — and
    ``reproduced`` additionally requires the trace digest to match the
    recorded one bit-for-bit.
    """
    artifact = load_artifact(path)
    if artifact.get("replay_log"):
        from repro.chaos.live import replay_live

        result = replay_live(
            artifact["config"],
            artifact["seed"],
            artifact["schedule"],
            artifact["replay_log"],
        )
    else:
        result = run_schedule(
            artifact["config"], artifact["seed"], artifact["schedule"]
        )
    recorded = artifact["violations"]
    recorded_oracles = {v["oracle"] for v in recorded}
    reproduced = bool(recorded_oracles) and recorded_oracles <= result.oracle_names()
    if artifact.get("trace_digest"):
        reproduced = reproduced and result.digest == artifact["trace_digest"]
    return result, recorded, reproduced


__all__ = ["ExplorationReport", "IterationOutcome", "explore", "replay"]
