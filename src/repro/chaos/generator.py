"""Layered random fault-schedule generation.

One chaos iteration draws a *profile* (crash-heavy, partition-heavy, or
gray/message-level) and layers the corresponding independent fault
processes from :mod:`repro.faults.generators` into a single schedule via
:meth:`FaultSchedule.merged`.

Two structural rules keep the generated space inside the oracles' sound
region:

* the **spare** server is never crashed, slowed, or isolated — a fully
  informed witness always survives;
* partitions always name the **clients and the spare in component 0**
  explicitly: the simulated topology puts unmentioned nodes into an
  implicit extra component, so forgetting the clients would silently cut
  every client off from everything.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.config import ChaosConfig
from repro.core.server import CRASH_HOOKS
from repro.faults.generators import (
    crash_burst_schedule,
    crash_hook_schedule,
    flapping_partition_schedule,
    link_delay_spike_schedule,
    message_adversity_schedule,
    poisson_crash_schedule,
    slowdown_schedule,
)
from repro.faults.schedule import FaultSchedule

PROFILES = ("crashes", "partitions", "gray")


def resolve_profile(config: ChaosConfig, index: int) -> str:
    """``mixed`` cycles round-robin over the profiles — deterministic and
    guaranteed to cover all three even in a short smoke run (a random
    draw can cluster badly over a handful of iterations)."""
    if config.profile == "mixed":
        return PROFILES[index % len(PROFILES)]
    return config.profile


def _hook_layer(
    rng: np.random.Generator, config: ChaosConfig, count: int
) -> FaultSchedule:
    """Arm crash-at-step traps and schedule a late repair for each victim
    (a no-op if the trap never fired), so mid-run recovery paths are
    exercised too."""
    schedule = crash_hook_schedule(
        rng,
        config.faultable_servers,
        config.duration,
        hooks=list(CRASH_HOOKS),
        count=count,
        spare=config.spare,
    )
    repairs = FaultSchedule()
    for event in schedule.sorted_events():
        repair_at = event.time + float(rng.uniform(1.0, 3.0))
        if repair_at < config.duration:
            repairs.recover(repair_at, event.target)
    return schedule.merged(repairs)


def _crash_layers(rng: np.random.Generator, config: ChaosConfig) -> FaultSchedule:
    schedule = poisson_crash_schedule(
        rng,
        config.faultable_servers,
        config.duration,
        failure_rate=float(rng.uniform(0.03, 0.12)),
        mean_downtime=float(rng.uniform(1.0, 3.0)),
        spare=config.spare,
    )
    if rng.random() < 0.5 and len(config.faultable_servers) >= 2:
        schedule = schedule.merged(
            crash_burst_schedule(
                rng,
                config.faultable_servers,
                at=float(rng.uniform(0.0, config.duration * 0.7)),
                burst_size=int(rng.integers(2, len(config.faultable_servers) + 1)),
                recover_after=float(rng.uniform(1.0, 3.0)),
            )
        )
    # dense trap coverage: protocol-step crashes are the rarest faults to
    # trigger (the server must actually *enter* the step while armed), so
    # the crash profile arms several per run
    return schedule.merged(_hook_layer(rng, config, count=int(rng.integers(3, 7))))


def _partition_layers(rng: np.random.Generator, config: ChaosConfig) -> FaultSchedule:
    faultable = config.faultable_servers
    isolated_count = int(rng.integers(1, len(faultable) + 1))
    isolated = [str(s) for s in rng.choice(faultable, size=isolated_count, replace=False)]
    # clients and the spare stay with the residual majority — component
    # membership must be explicit (unlisted nodes end up alone)
    residual = [s for s in config.server_ids if s not in isolated]
    residual += config.client_ids
    schedule = flapping_partition_schedule(
        rng,
        left=isolated,
        right=residual,
        duration=config.duration,
        mean_stable=float(rng.uniform(3.0, 6.0)),
        mean_partitioned=float(rng.uniform(1.0, 3.0)),
    )
    if rng.random() < 0.5:
        schedule = schedule.merged(
            poisson_crash_schedule(
                rng,
                faultable,
                config.duration,
                failure_rate=float(rng.uniform(0.02, 0.06)),
                mean_downtime=float(rng.uniform(1.0, 2.0)),
                spare=config.spare,
            )
        )
    if getattr(config, "mode", "sim") == "live" and len(faultable) >= 2:
        # live-only layer: an *asymmetric* link cut (A hears B, B does not
        # hear A) — the non-transitive failure mode the fault-injecting
        # transport exists to exercise, and one the simulated topology's
        # partition layer cannot express.  Gated on live mode so the sim
        # generator's RNG stream (and every recorded digest) is unchanged.
        if rng.random() < 0.6:
            a, b = (
                str(s) for s in rng.choice(faultable, size=2, replace=False)
            )
            cut_at = float(rng.uniform(0.1, 0.6) * config.duration)
            heal_at = min(
                config.duration, cut_at + float(rng.uniform(0.5, 2.0))
            )
            schedule = schedule.merged(
                FaultSchedule()
                .cut_link(cut_at, a, b, symmetric=False)
                .restore_link(heal_at, a, b, symmetric=False)
            )
    return schedule


def _gray_layers(rng: np.random.Generator, config: ChaosConfig) -> FaultSchedule:
    schedule = slowdown_schedule(
        rng,
        config.faultable_servers,
        config.duration,
        rate=float(rng.uniform(0.05, 0.15)),
        mean_slow=float(rng.uniform(1.0, 3.0)),
        spare=config.spare,
    )
    schedule = schedule.merged(
        link_delay_spike_schedule(
            rng,
            config.faultable_servers,
            config.duration,
            spikes=int(rng.integers(1, 4)),
        )
    )
    schedule = schedule.merged(
        message_adversity_schedule(
            rng,
            config.duration,
            duplicate_probability=float(rng.uniform(0.01, 0.08)),
            reorder_probability=float(rng.uniform(0.01, 0.08)),
        )
    )
    return schedule.merged(_hook_layer(rng, config, count=1))


def generate_schedule(
    rng: np.random.Generator, config: ChaosConfig, profile: str
) -> FaultSchedule:
    """One random layered schedule for the given profile (times relative
    to the start of the injection window)."""
    if profile == "crashes":
        return _crash_layers(rng, config)
    if profile == "partitions":
        return _partition_layers(rng, config)
    if profile == "gray":
        return _gray_layers(rng, config)
    raise ValueError(f"unknown profile {profile!r}")


__all__ = ["PROFILES", "generate_schedule", "resolve_profile"]
