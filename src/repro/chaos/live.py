"""Chaos on the live wire: real-socket runs of chaos schedules.

``run_live_schedule`` executes the same ``(config, seed, schedule)``
triple as the simulator runner, but against a cluster of real asyncio
loopback sockets wrapped in :class:`~repro.net.faults.FaultyTransport`:
partitions sever actual links, link-delay spikes hold actual frames, and
duplicate/reorder perturb actual datagrams.  The same clean-window
algebra and invariant oracles judge the run, so a schedule that fails in
simulation and one that fails live produce the same kind of artifact.

**Determinism.**  A live run is *not* reproducible from its seed alone —
the kernel schedules sockets.  It is reproducible from its **ingress
frame log**: the pacer always advances the clock to its exact target,
every internal event time derives from scheduled workload times and
protocol delays, and the single wall-clock input is the ``(time, seq)``
coordinate each inbound frame's delivery event receives.  Recording
those coordinates plus the raw bytes (:class:`~repro.net.replay.IngressLog`)
makes :func:`replay_live` exact: rebuild the identical cluster on null
transports, fence the recorded seqs off the simulator's counter, inject
every frame at its recorded coordinate, and run — the event heap pops in
the identical order and the trace digest matches bit-for-bit.

**Phasing.**  Everything — client connects, session starts, workload
interactions, every fault, the heal sweep — is pre-scheduled as
simulator events before the pacer takes its first step, exactly like the
scripted live cluster (:mod:`repro.net.cluster`).  There is no
imperative phase interleaving to race against the wall clock::

    0 ──── _BOOT ──── inject_t0 ──────── heal_time ───────── end
    boot    sessions    faults fire        heal sweep          oracles
            + workload  (schedule times    (stop workloads,
            streaming    relative to        clear faults,
                         inject_t0)         recover crashed)
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.chaos.config import ChaosConfig
from repro.chaos.oracles import RunObservation, run_oracles
from repro.chaos.runner import RunResult, disruption_spans, trace_digest
from repro.core.client import ServiceClient, SessionHandle
from repro.core.server import FrameworkServer
from repro.core.wire import content_group
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.metrics.windows import pad_intervals, subtract_intervals
from repro.net.faults import FaultPlane, FaultyTransport, wan_profile
from repro.net.replay import IngressLog, ReplayTransport
from repro.net.runtime import LiveNetwork, LiveRuntime
from repro.net.transport import MeshTransport, UdpLoopbackTransport
from repro.services import VodApplication, build_movie
from repro.services.workload import VodViewerWorkload
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

#: Wall seconds between pacer start and client connects/session starts —
#: long enough for the first view to form under live_lan timings.
_BOOT = 1.5


#: Chaos runs scale the live-LAN timings up: the stock 30 ms suspect
#: timeout is fine for one scripted run, but a chaos exploration re-runs
#: the cluster dozens of times on a loaded box, and a single event-loop
#: stall past the timeout manufactures a spurious suspicion that the
#: oracles (or a settings-layer plant) can't tell from a real fault.
_CHAOS_SETTINGS_FACTOR = 2.0


def _live_settings(config: ChaosConfig) -> GcsSettings:
    """The GCS timing constants for one live chaos run: the live-LAN
    preset, scaled up when a WAN profile stretches the links, weakened
    when the config carries a settings-layer plant."""
    factor = _CHAOS_SETTINGS_FACTOR
    if config.wan_profile is not None:
        factor = wan_profile(config.wan_profile).settings_factor
    settings = GcsSettings.live_lan().scaled(factor)
    return config.apply_plant_settings(settings)


class LiveChaosCluster:
    """A live cluster shaped like :class:`~repro.core.service.ServiceCluster`
    where the oracles and audit metrics are concerned: ``sim``,
    ``servers``, ``clients``, ``monitor``, ``trace_log()``,
    ``primaries_of()``."""

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLog,
        monitor: SpecMonitor,
        transports: dict[str, MeshTransport],
        networks: dict[str, LiveNetwork],
        servers: dict[str, FrameworkServer],
        clients: dict[str, ServiceClient],
        plane: FaultPlane | None,
    ) -> None:
        self.sim = sim
        self.trace = trace
        self.monitor = monitor
        self.transports = transports
        self.networks = networks
        self.servers = servers
        self.clients = clients
        self.plane = plane

    def trace_log(self) -> TraceLog:
        return self.trace

    def primaries_of(self, session_id: str) -> list[str]:
        return [
            server_id
            for server_id, server in self.servers.items()
            if server.is_up() and session_id in server.primary_sessions()
        ]

    async def close(self) -> None:
        for transport in self.transports.values():
            await transport.close()


def _assemble(
    config: ChaosConfig,
    sim: Simulator,
    transports: dict[str, MeshTransport],
    settings: GcsSettings,
    plane: FaultPlane | None,
    recorder: Callable[[Any, float, int, bytes], None] | None = None,
    wake: Callable[[], None] | None = None,
) -> LiveChaosCluster:
    """Build the protocol stack over already-created transports.

    Shared verbatim between the live builder and the replay builder so
    construction order — and therefore every RNG stream, timer, and
    sequence-number allocation — is identical in both.
    """
    trace = TraceLog(enabled=True)
    monitor = SpecMonitor()
    networks: dict[str, LiveNetwork] = {}
    for node in [*config.server_ids, *config.client_ids]:
        networks[node] = LiveNetwork(
            sim,
            transports[node],
            trace=trace,
            wake=wake,
            node_id=node,
            recorder=recorder,
        )
    movies = {
        unit: build_movie(unit, duration_seconds=600.0, frame_rate=10.0)
        for unit in config.unit_ids
    }
    app = VodApplication(movies)
    catalog = {unit: content_group(unit) for unit in movies}
    policy = config.build_policy()
    servers: dict[str, FrameworkServer] = {}
    for server_id in config.server_ids:
        servers[server_id] = FrameworkServer(
            server_id=server_id,
            network=networks[server_id],
            world=config.server_ids,
            hosted_units=config.unit_ids,
            applications={unit: app for unit in movies},
            catalog=catalog,
            policy=policy,
            settings=settings,
            monitor=monitor,
        )
    clients: dict[str, ServiceClient] = {}
    for client_id in config.client_ids:
        clients[client_id] = ServiceClient(
            client_id,
            networks[client_id],
            contact_servers=config.server_ids,
            settings=settings,
        )
    for server in servers.values():
        server.start()
    for client in clients.values():
        client.start()
    return LiveChaosCluster(
        sim=sim,
        trace=trace,
        monitor=monitor,
        transports=transports,
        networks=networks,
        servers=servers,
        clients=clients,
        plane=plane,
    )


# ----------------------------------------------------------------------
# fault application (the live twin of repro.faults.injector)
# ----------------------------------------------------------------------
def _apply_live(cluster: LiveChaosCluster, event: FaultEvent) -> None:
    """Apply one fault to the live cluster, tracing it exactly like the
    simulator injector does (``fault.<kind>`` records feed the digest).

    Server-side kinds act on the protocol objects in live *and* replay
    runs — they are deterministic parts of the schedule.  Transport-side
    kinds drive the :class:`FaultPlane`; in replay there is no plane
    (their effects are already baked into the recorded frame log) but
    the trace record is still written, keeping the digests comparable.
    """
    cluster.trace.record(
        cluster.sim.now,
        event.target if event.target is not None else "net",
        f"fault.{event.kind}",
        **event.args,
    )
    kind = event.kind
    if kind == "crash":
        server = cluster.servers.get(event.target)
        if server is not None and server.is_up():
            server.crash()
    elif kind == "recover":
        server = cluster.servers.get(event.target)
        if server is not None and not server.is_up():
            server.recover()
    elif kind == "slowdown":
        server = cluster.servers.get(event.target)
        if server is not None:
            server.daemon.set_dispatch_delay(float(event.args["delay"]))
    elif kind == "restore_speed":
        server = cluster.servers.get(event.target)
        if server is not None:
            server.daemon.set_dispatch_delay(0.0)
    elif kind == "crash_at":
        server = cluster.servers.get(event.target)
        if server is not None:
            server.arm_crash_hook(event.args["hook"])
    elif cluster.plane is None:
        pass  # replay: wire-level faults live in the frame log already
    elif kind == "partition":
        cluster.plane.partition(*event.args["components"])
    elif kind == "heal":
        cluster.plane.heal_partition()
    elif kind == "cut_link":
        cluster.plane.cut_link(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif kind == "restore_link":
        cluster.plane.restore_link(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif kind == "delay_link":
        cluster.plane.set_link_delay(
            event.args["a"],
            event.args["b"],
            float(event.args["extra"]),
            symmetric=event.args.get("symmetric", True),
        )
    elif kind == "restore_delay":
        cluster.plane.clear_link_delay(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif kind == "duplicate":
        cluster.plane.set_duplication(float(event.args["probability"]))
    elif kind == "reorder":
        cluster.plane.set_reordering(
            float(event.args["probability"]),
            window=float(event.args.get("window", 0.05)),
        )


# ----------------------------------------------------------------------
# phase scheduling (identical in live and replay)
# ----------------------------------------------------------------------
def _schedule_phases(
    cluster: LiveChaosCluster,
    config: ChaosConfig,
    seed: int,
    schedule: FaultSchedule,
) -> tuple[list[SessionHandle], float, float, float]:
    """Pre-schedule the whole run as simulator events.

    Returns ``(handles, inject_t0, heal_time, end)``; ``handles`` fills
    in as the session-start events fire.
    """
    sim = cluster.sim
    rngs = RngRegistry(seed)
    handles: list[SessionHandle] = []
    workloads: list[VodViewerWorkload] = []

    def do_connect(client: ServiceClient) -> None:
        client.connect()

    for client_id in config.client_ids:
        sim.schedule_at(
            _BOOT * 0.5,
            (lambda c=cluster.clients[client_id]: do_connect(c)),
            label="chaos:connect",
        )

    def do_start(index: int) -> None:
        unit = config.unit_ids[index % len(config.unit_ids)]
        client = cluster.clients[config.client_ids[index]]
        handle = client.start_session(unit)
        handles.append(handle)
        workload = VodViewerWorkload(
            cluster=cluster,
            client=client,
            handle=handle,
            rng=rngs.stream(f"chaos-workload-{index}"),
            skip_interval_mean=3.0,
        )
        workloads.append(workload)
        workload.start()

    for index in range(config.n_sessions):
        sim.schedule_at(
            _BOOT, (lambda i=index: do_start(i)), label="chaos:start-session"
        )

    inject_t0 = _BOOT + config.establish
    for event in schedule.sorted_events():
        sim.schedule_at(
            inject_t0 + event.time,
            (lambda e=event: _apply_live(cluster, e)),
            label=f"chaos:fault:{event.kind}",
        )

    heal_time = inject_t0 + config.duration

    def do_heal() -> None:
        # mirror the sim runner's heal sweep, in the same order
        for workload in workloads:
            workload.stop()
        for index, handle in enumerate(handles):
            client = cluster.clients[config.client_ids[index]]
            if client.is_up():
                client.send_update(handle, {"op": "resume"})
        for server in cluster.servers.values():
            server.disarm_crash_hooks()
            if server.is_up():
                server.daemon.set_dispatch_delay(0.0)
        if cluster.plane is not None:
            cluster.plane.clear_all()
        for _server_id, server in sorted(cluster.servers.items()):
            if not server.is_up():
                server.recover()

    sim.schedule_at(heal_time, do_heal, label="chaos:heal")
    end = heal_time + config.settle
    return handles, inject_t0, heal_time, end


def _evaluate(
    cluster: LiveChaosCluster,
    config: ChaosConfig,
    seed: int,
    schedule: FaultSchedule,
    handles: list[SessionHandle],
    inject_t0: float,
    heal_time: float,
    end: float,
    replay_log: str | None,
    keep_cluster: bool,
):
    """Clean windows, oracles, digest — shared by live run and replay."""
    disrupted = pad_intervals(
        disruption_spans(schedule, inject_t0, heal_time), config.stabilize_margin
    )
    clean_windows = subtract_intervals([(inject_t0, end)], disrupted)
    observation = RunObservation(
        cluster=cluster,
        config=config,
        schedule=schedule,
        handles=handles,
        clean_windows=clean_windows,
        serve_start=inject_t0,
        end=end,
    )
    violations = run_oracles(observation)
    result = RunResult(
        seed=seed,
        schedule=schedule,
        violations=violations,
        digest=trace_digest(cluster.trace_log()),
        clean_windows=clean_windows,
        responses=sum(len(h.received) for h in handles),
        updates=sum(h.update_counter for h in handles),
        end_time=end,
        mode="live",
        replay_log=replay_log,
    )
    if keep_cluster:
        return result, observation
    return result


# ----------------------------------------------------------------------
# the live run
# ----------------------------------------------------------------------
async def _run_live(
    config: ChaosConfig, seed: int, schedule: FaultSchedule, keep_cluster: bool
):
    sim = Simulator()
    runtime = LiveRuntime(sim)
    log = IngressLog()
    plane = FaultPlane()
    transports: dict[str, MeshTransport] = {}
    for node in [*config.server_ids, *config.client_ids]:
        faulty = FaultyTransport(UdpLoopbackTransport(node), seed=seed)
        await faulty.start("127.0.0.1", 0)
        transports[node] = faulty
        plane.adopt(node, faulty)
    for node, transport in transports.items():
        for peer, peer_transport in transports.items():
            if peer != node:
                host, port = peer_transport.address
                transport.set_peer(peer, host, port)
    if config.wan_profile is not None:
        wan_profile(config.wan_profile).install(plane)

    cluster = _assemble(
        config,
        sim,
        transports,
        settings=_live_settings(config),
        plane=plane,
        recorder=log.record,
        wake=runtime.wake,
    )
    try:
        handles, inject_t0, heal_time, end = _schedule_phases(
            cluster, config, seed, schedule
        )
        await runtime.run(end)
    finally:
        await cluster.close()
    return _evaluate(
        cluster,
        config,
        seed,
        schedule,
        handles,
        inject_t0,
        heal_time,
        end,
        replay_log=log.to_blob(),
        keep_cluster=keep_cluster,
    )


def run_live_schedule(
    config: ChaosConfig, seed: int, schedule: FaultSchedule, keep_cluster: bool = False
):
    """Execute one chaos run on real sockets (blocking; takes roughly
    ``_BOOT + establish + duration + settle`` wall seconds)."""
    return asyncio.run(_run_live(config, seed, schedule, keep_cluster))


# ----------------------------------------------------------------------
# bit-identical replay from the ingress frame log
# ----------------------------------------------------------------------
def replay_live(
    config: ChaosConfig,
    seed: int,
    schedule: FaultSchedule,
    log_blob: str,
    keep_cluster: bool = False,
):
    """Re-execute a recorded live run without sockets.

    Pure simulation: the recorded ingress frames are injected at their
    recorded ``(time, seq)`` coordinates, so the event heap — and hence
    every handler, timer, trace record, and oracle verdict — reproduces
    the original run exactly.  A digest match against the recorded run
    is the witness.
    """
    log = IngressLog.from_blob(log_blob)
    sim = Simulator()
    sim.reserve_seqs(log.seqs())
    transports: dict[str, MeshTransport] = {
        node: ReplayTransport(node)
        for node in [*config.server_ids, *config.client_ids]
    }
    cluster = _assemble(
        config,
        sim,
        transports,
        settings=_live_settings(config),
        plane=None,
    )
    handles, inject_t0, heal_time, end = _schedule_phases(
        cluster, config, seed, schedule
    )
    for record in log.records:
        network = cluster.networks.get(record.node)
        if network is None:
            raise ValueError(f"ingress log names unknown node {record.node!r}")
        sim.inject_at(
            record.time,
            record.seq,
            (lambda n=network, data=record.frame: n._ingest(data)),
            label="live:frame",
        )
    sim.run_until(end)
    return _evaluate(
        cluster,
        config,
        seed,
        schedule,
        handles,
        inject_t0,
        heal_time,
        end,
        replay_log=log_blob,
        keep_cluster=keep_cluster,
    )


__all__ = [
    "LiveChaosCluster",
    "replay_live",
    "run_live_schedule",
]
