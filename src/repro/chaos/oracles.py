"""Invariant oracles: what a chaos run must not do.

Each oracle is a function from a finished :class:`RunObservation` to a
list of :class:`Violation`.  Two design rules keep them *sound* (zero
false positives on the real implementation, which is what lets CI treat
any violation as a bug):

1. **Clean windows.**  The paper's guarantees are conditional on the GCS
   being able to agree on membership.  An isolated minority primary
   serving into the void during a partition is an *accepted* risk
   (Section 4), not a bug — so the timing oracles only measure inside the
   parts of the run not covered by any disruption, padded by a
   stabilization margin (see :mod:`repro.metrics.windows`).

2. **Applicability gating.**  Some invariants only hold for some fault
   vocabularies: "no silent lost updates" is a theorem under crash
   faults with a never-crashed witness, but under partitions the client's
   updates may legitimately never reach any survivor.  Each oracle
   declares the fault kinds it tolerates via ``applies_to``, checked
   against ``schedule.kinds()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gcs.spec import SpecViolation
from repro.metrics.session_audit import lost_updates
from repro.metrics.windows import (
    Interval,
    max_silence_within,
    multi_primary_time_within,
)

#: Kinds that disconnect parts of the cluster: while (and shortly after)
#: they are active, the role/uniqueness guarantees are conditional.
PARTITION_KINDS = frozenset({"partition", "heal", "cut_link", "restore_link"})


@dataclass(frozen=True)
class Violation:
    """One oracle failure, JSON-safe for repro artifacts."""

    oracle: str
    session_id: str | None
    detail: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "oracle": self.oracle,
            "session_id": self.session_id,
            "detail": self.detail,
        }


@dataclass
class RunObservation:
    """Everything the oracles may look at after a run.

    ``clean_windows`` are absolute-time intervals uncovered by any padded
    disruption; ``serve_start`` is when sessions were streaming and
    ``end`` is the simulation time after the final settle.
    """

    cluster: "object"
    config: "object"
    schedule: "object"
    handles: list
    clean_windows: list[Interval]
    serve_start: float
    end: float


def _responses_within(handle, windows: list[Interval]) -> list:
    out = []
    for response in handle.received:
        for start, end in windows:
            if start <= response.time <= end:
                out.append(response)
                break
    return out


# ----------------------------------------------------------------------
# the oracles
# ----------------------------------------------------------------------
def check_gcs_spec(obs: RunObservation) -> list[Violation]:
    """The GCS safety spec (self-inclusion, total order, virtual
    synchrony, at-most-once, causality) must hold unconditionally."""
    try:
        obs.cluster.monitor.check_all()
    except SpecViolation as exc:
        return [Violation("gcs-spec", None, {"error": str(exc)})]
    return []


def check_unique_primary(obs: RunObservation) -> list[Violation]:
    """At most one server holds the primary role inside clean windows."""
    out = []
    for handle in obs.handles:
        overlap = multi_primary_time_within(
            obs.cluster, handle.session_id, obs.clean_windows
        )
        if overlap > obs.config.overlap_tolerance:
            out.append(
                Violation(
                    "unique-primary",
                    handle.session_id,
                    {"overlap_time": round(overlap, 4)},
                )
            )
    return out


def check_dual_sender(obs: RunObservation) -> list[Violation]:
    """The client never *receives* interleaved streams from two servers
    inside clean windows (the client-visible uniqueness guarantee)."""
    out = []
    for handle in obs.handles:
        received = _responses_within(handle, obs.clean_windows)
        total = 0.0
        for earlier, later in zip(received, received[1:]):
            dt = later.time - earlier.time
            if later.sender != earlier.sender and dt <= 0.3:
                total += dt
        if total > obs.config.overlap_tolerance:
            out.append(
                Violation(
                    "dual-sender",
                    handle.session_id,
                    {"interleaved_time": round(total, 4)},
                )
            )
    return out


def check_responsiveness(obs: RunObservation) -> list[Violation]:
    """No response silence longer than ``max_gap`` inside clean windows.

    This is the oracle that catches stalls-without-crashes: a successor
    stuck awaiting a handoff that will never come is alive, holds the
    role, and says nothing."""
    out = []
    for handle in obs.handles:
        times = [r.time for r in handle.received]
        gap = max_silence_within(times, obs.clean_windows)
        if gap > obs.config.max_gap:
            out.append(
                Violation(
                    "responsiveness",
                    handle.session_id,
                    {"max_gap": round(gap, 4), "bound": obs.config.max_gap},
                )
            )
    return out


def check_silent_lost_updates(obs: RunObservation) -> list[Violation]:
    """Every update the client believes was sent survives on some live
    server (applies only when no partition-class fault ran: with full
    session groups and a never-crashed spare, crash faults alone cannot
    lose a delivered update).

    Updates the client *knows* failed (send-failure callback) are not
    silent losses and are excluded."""
    out = []
    for handle in obs.handles:
        lost = lost_updates(obs.cluster, handle)
        if lost <= 0:
            continue
        # counters in (update_counter - lost, update_counter] are the
        # missing tail; known-failed sends inside it were reported to the
        # client and do not count as silent
        tail_start = handle.update_counter - lost
        known_failed = sum(
            1 for c in handle.failed_update_counters if c > tail_start
        )
        silent = lost - known_failed
        if silent > 0:
            out.append(
                Violation(
                    "silent-lost-updates",
                    handle.session_id,
                    {"lost": lost, "known_failed": known_failed, "silent": silent},
                )
            )
    return out


def check_convergence(obs: RunObservation) -> list[Violation]:
    """After healing everything and settling, each session has exactly one
    live primary and it is actually serving (not awaiting a handoff)."""
    out = []
    for handle in obs.handles:
        primaries = obs.cluster.primaries_of(handle.session_id)
        if len(primaries) != 1:
            out.append(
                Violation(
                    "convergence",
                    handle.session_id,
                    {"reason": "primary_count", "primaries": sorted(primaries)},
                )
            )
            continue
        server = obs.cluster.servers[primaries[0]]
        if handle.session_id not in server.serving_sessions():
            out.append(
                Violation(
                    "convergence",
                    handle.session_id,
                    {"reason": "awaiting_handoff", "primary": primaries[0]},
                )
            )
    return out


@dataclass(frozen=True)
class Oracle:
    name: str
    check: "object"
    #: fault kinds this oracle tolerates; None means unconditional
    applies_to: frozenset | None = None

    def applicable(self, kinds: frozenset) -> bool:
        return self.applies_to is None or kinds <= self.applies_to


#: Kinds under which "no silent lost updates" is a hard invariant.
_LOSSLESS_KINDS = frozenset(
    {
        "crash",
        "recover",
        "crash_at",
        "slowdown",
        "restore_speed",
        "delay_link",
        "restore_delay",
        "duplicate",
        "reorder",
    }
)

ORACLES = (
    Oracle("gcs-spec", check_gcs_spec),
    Oracle("unique-primary", check_unique_primary),
    Oracle("dual-sender", check_dual_sender),
    Oracle("responsiveness", check_responsiveness),
    Oracle("silent-lost-updates", check_silent_lost_updates, _LOSSLESS_KINDS),
    Oracle("convergence", check_convergence),
)


def run_oracles(obs: RunObservation) -> list[Violation]:
    """Run every applicable oracle; returns all violations found."""
    kinds = obs.schedule.kinds()
    violations: list[Violation] = []
    for oracle in ORACLES:
        if not oracle.applicable(kinds):
            continue
        violations.extend(oracle.check(obs))
    return violations


__all__ = [
    "ORACLES",
    "Oracle",
    "PARTITION_KINDS",
    "RunObservation",
    "Violation",
    "run_oracles",
]
