"""Deterministic execution of one chaos run.

``run_schedule(config, seed, schedule)`` builds a fresh cluster, streams
live VoD sessions, injects the schedule, heals everything, settles, and
evaluates the oracles.  Everything is a pure function of ``(config, seed,
schedule)`` — the simulator is deterministic, every RNG hangs off the
cluster's seeded registry, and faults are applied at exact simulated
times — which is what makes delta-debugging re-runs and ``--replay``
artifacts reproduce a failure bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.chaos.config import ChaosConfig
from repro.chaos.oracles import RunObservation, Violation, run_oracles
from repro.core.service import ServiceCluster
from repro.faults.injector import inject
from repro.faults.schedule import FaultSchedule
from repro.gcs.settings import GcsSettings
from repro.metrics.windows import (
    Interval,
    merge_intervals,
    pad_intervals,
    subtract_intervals,
)
from repro.services import VodApplication, build_movie
from repro.services.workload import VodViewerWorkload


@dataclass
class RunResult:
    """Outcome of one deterministic chaos run."""

    seed: int
    schedule: FaultSchedule
    violations: list[Violation]
    digest: str
    clean_windows: list[Interval] = field(default_factory=list)
    responses: int = 0
    updates: int = 0
    end_time: float = 0.0
    mode: str = "sim"
    #: live runs only: the serialized ingress frame log
    #: (:meth:`repro.net.replay.IngressLog.to_blob`) that lets
    #: ``--replay`` reproduce the run bit-for-bit without sockets
    replay_log: str | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def oracle_names(self) -> frozenset[str]:
        return frozenset(v.oracle for v in self.violations)


# ----------------------------------------------------------------------
# disruption windows
# ----------------------------------------------------------------------
#: fault kinds that open a disruption, and the kind that closes it
_CLOSERS = {
    "crash": "recover",
    "slowdown": "restore_speed",
    "partition": "heal",
    "cut_link": "restore_link",
    "delay_link": "restore_delay",
}


def _same_scope(opener, closer) -> bool:
    if opener.kind in ("crash", "slowdown"):
        return closer.target == opener.target
    if opener.kind in ("cut_link", "delay_link"):
        pair = {opener.args.get("a"), opener.args.get("b")}
        return {closer.args.get("a"), closer.args.get("b")} == pair
    return True  # partition/heal are global


def disruption_spans(
    schedule: FaultSchedule, t0: float, heal_time: float
) -> list[Interval]:
    """Absolute-time intervals during which some fault is active.

    Each opener runs until its matching closer or ``heal_time`` (when the
    runner force-heals everything).  ``duplicate``/``reorder`` windows
    close at the event that sets their probability back to zero.  A
    ``crash_at`` trap is conservatively treated as disrupting from arming
    to ``heal_time`` — it may fire at any point in between.
    """
    events = schedule.sorted_events()
    spans: list[Interval] = []
    for index, event in enumerate(events):
        start = t0 + event.time
        if event.kind in _CLOSERS:
            closer_kind = _CLOSERS[event.kind]
            end = heal_time
            for later in events[index + 1 :]:
                if later.kind == closer_kind and _same_scope(event, later):
                    end = t0 + later.time
                    break
            spans.append((start, end))
        elif event.kind in ("duplicate", "reorder"):
            if float(event.args.get("probability", 0.0)) <= 0.0:
                continue
            end = heal_time
            for later in events[index + 1 :]:
                if (
                    later.kind == event.kind
                    and float(later.args.get("probability", 0.0)) <= 0.0
                ):
                    end = t0 + later.time
                    break
            spans.append((start, end))
        elif event.kind == "crash_at":
            spans.append((start, heal_time))
    return merge_intervals(spans)


# ----------------------------------------------------------------------
# trace digest (determinism witness)
# ----------------------------------------------------------------------
def _stable(value) -> str:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_stable(v) for v in value) + "]"
    if isinstance(value, dict):
        items = sorted((str(k), _stable(v)) for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(_stable(v) for v in value)) + "}"
    # objects with data-class reprs are stable; anything else degrades to
    # its type name rather than an id()-bearing default repr
    text = repr(value)
    return text if "0x" not in text else f"<{type(value).__name__}>"


def trace_digest(trace) -> str:
    """SHA-256 over the full event trace: two runs are *the same run*
    iff their digests match (times, nodes, categories and details)."""
    digest = hashlib.sha256()
    for event in trace.events:
        line = (
            f"{event.time!r}|{event.node}|{event.category}|"
            + _stable(event.detail)
        )
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the run itself
# ----------------------------------------------------------------------
def run_schedule(
    config: ChaosConfig,
    seed: int,
    schedule: FaultSchedule,
    keep_cluster: bool = False,
):
    """Execute one chaos run; returns a :class:`RunResult` (and the final
    :class:`RunObservation` when ``keep_cluster`` is set, for debugging).

    ``config.mode == "live"`` dispatches to :mod:`repro.chaos.live`,
    which runs the identical schedule/oracle pipeline against a real
    asyncio socket cluster wrapped in fault-injecting transports.
    """
    if getattr(config, "mode", "sim") == "live":
        # local import: repro.chaos.live imports this module for the
        # shared windows/digest/oracle helpers
        from repro.chaos.live import run_live_schedule

        return run_live_schedule(config, seed, schedule, keep_cluster=keep_cluster)
    movies = {
        unit: build_movie(unit, duration_seconds=600.0, frame_rate=10.0)
        for unit in config.unit_ids
    }
    app = VodApplication(movies)
    cluster = ServiceCluster.build(
        n_servers=config.n_servers,
        units={unit: app for unit in movies},
        replication=config.n_servers,
        policy=config.build_policy(),
        settings=config.apply_plant_settings(GcsSettings()),
        seed=seed,
    )
    cluster.settle()

    handles = []
    workloads = []
    for index in range(config.n_sessions):
        unit = config.unit_ids[index % len(config.unit_ids)]
        client = cluster.add_client(config.client_ids[index])
        handle = client.start_session(unit)
        handles.append(handle)
        workload = VodViewerWorkload(
            cluster=cluster,
            client=client,
            handle=handle,
            rng=cluster.rngs.stream(f"chaos-workload-{index}"),
            skip_interval_mean=3.0,
        )
        workloads.append(workload)
        workload.start()
    cluster.run(config.establish)
    serve_start = cluster.sim.now

    inject_t0 = cluster.sim.now
    inject(cluster, schedule)
    cluster.run(config.duration)

    # --- heal phase: lift every fault, then let the cluster converge ---
    heal_time = cluster.sim.now
    for workload in workloads:
        workload.stop()  # quiesce updates so lost-update checks are exact
    for index, handle in enumerate(handles):
        # a viewer stopped mid-pause would legitimately stay silent and
        # fake a responsiveness stall: hit play one final time
        client = cluster.clients[config.client_ids[index]]
        if client.is_up():
            client.send_update(handle, {"op": "resume"})
    for server in cluster.servers.values():
        server.disarm_crash_hooks()
        if server.is_up():
            server.daemon.set_dispatch_delay(0.0)
    cluster.network.clear_adversity()
    cluster.heal()
    for server_id, server in sorted(cluster.servers.items()):
        if not server.is_up():
            server.recover()
    cluster.run(config.settle)
    end = cluster.sim.now

    disrupted = pad_intervals(
        disruption_spans(schedule, inject_t0, heal_time), config.stabilize_margin
    )
    clean_windows = subtract_intervals([(serve_start, end)], disrupted)

    observation = RunObservation(
        cluster=cluster,
        config=config,
        schedule=schedule,
        handles=handles,
        clean_windows=clean_windows,
        serve_start=serve_start,
        end=end,
    )
    violations = run_oracles(observation)
    result = RunResult(
        seed=seed,
        schedule=schedule,
        violations=violations,
        digest=trace_digest(cluster.trace_log()),
        clean_windows=clean_windows,
        responses=sum(len(h.received) for h in handles),
        updates=sum(h.update_counter for h in handles),
        end_time=end,
    )
    if keep_cluster:
        return result, observation
    return result


__all__ = ["RunResult", "disruption_spans", "run_schedule", "trace_digest"]
