"""Schedule shrinking: ddmin over the fault-event list.

When a random schedule trips an oracle it usually contains dozens of
irrelevant events.  Because a run is a pure function of ``(config, seed,
schedule)``, we can delta-debug: re-run deterministic sub-schedules and
keep the smallest one that still fails the *same* oracle.  This is
Zeller's ddmin over the time-sorted event list — remove chunk complements
at increasing granularity, restart coarse whenever a removal sticks.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.schedule import FaultEvent


def shrink_events(
    events: list[FaultEvent],
    still_fails: Callable[[list[FaultEvent]], bool],
    budget: int = 48,
) -> tuple[list[FaultEvent], int]:
    """Minimal (1-chunk-removal-stable) failing subsequence of ``events``.

    ``still_fails`` re-runs the candidate and reports whether the original
    oracle violation reproduces.  ``budget`` caps the number of re-runs —
    shrinking is best-effort, never wrong: whatever it returns has been
    *observed* to fail.  Returns ``(events, runs_used)``.
    """
    current = list(events)
    runs = 0
    granularity = 2
    while len(current) >= 2 and runs < budget:
        chunk = max(1, (len(current) + granularity - 1) // granularity)
        boundaries = list(range(0, len(current), chunk))
        reduced = False
        for start in boundaries:
            candidate = current[:start] + current[start + chunk :]
            if not candidate or len(candidate) == len(current):
                continue
            runs += 1
            if still_fails(candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if runs >= budget:
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, runs


__all__ = ["shrink_events"]
