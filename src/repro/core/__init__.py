"""The paper's contribution: a configurable framework for highly available,
session-oriented services on group communication.

The framework (Section 3 of the paper) is realized by:

* :class:`~repro.core.config.AvailabilityPolicy` — the configurable
  parameters: content replication degree, number of backup servers per
  session, context propagation period, and the uncertainty policy applied
  on failover;
* :class:`~repro.core.server.FrameworkServer` — the server-side logic:
  service / content / session groups, the replicated unit database,
  deterministic primary/backup selection, periodic context propagation,
  immediate (failure-only) reallocation and join-triggered state exchange;
* :class:`~repro.core.client.ServiceClient` — the thin client library:
  connect, choose a content unit, start a session, stream context updates
  to the session group, receive responses — never aware of membership;
* :class:`~repro.core.application.ServiceApplication` — the plug-in
  protocol a concrete service (VoD, education, search) implements;
* :class:`~repro.core.service.ServiceCluster` — a builder wiring servers,
  content placement, clients, and the GCS over the simulated network;
* extensions named as future work in the paper:
  :mod:`repro.core.statemachine` (replicated state machine for shared
  content updates) and :mod:`repro.core.manager` (availability manager
  deriving parameters from a target quality).
"""

from repro.core.application import ResponseBody, ServiceApplication
from repro.core.config import AvailabilityPolicy
from repro.core.client import ServiceClient, SessionHandle
from repro.core.context import ContextSnapshot
from repro.core.responses import (
    ResendAll,
    SelectiveResend,
    SkipUncertain,
    UncertaintyPolicy,
)
from repro.core.server import FrameworkServer
from repro.core.service import ServiceCluster

__all__ = [
    "AvailabilityPolicy",
    "ContextSnapshot",
    "FrameworkServer",
    "ResendAll",
    "ResponseBody",
    "SelectiveResend",
    "ServiceApplication",
    "ServiceClient",
    "ServiceCluster",
    "SessionHandle",
    "SkipUncertain",
    "UncertaintyPolicy",
]
