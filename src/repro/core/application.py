"""The plug-in protocol a concrete service implements.

The paper's framework is a *template*: the fault-tolerance machinery is
generic, and a specific service (VoD, distance education, search) supplies
only its content semantics.  A :class:`ServiceApplication` is a pure,
deterministic state machine over an application-defined session state:

* session state is created from the start-session parameters,
* client context updates transform it (functionally),
* responses are pulled from it either on a timer (streaming services such
  as VoD) or as an immediate reaction to an update (request/response
  services such as the search example).

All functions are *functional* (state in, state out) so the framework can
snapshot, replicate, and replay contexts without the application's help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


@dataclass(frozen=True)
class ResponseBody:
    """One application response.

    Attributes:
        index: application-level position of this response within the
            session's stream (frame number, object number, result number);
            indices identify duplicates across retransmissions.
        klass: application class of the response (e.g. MPEG ``"I"``,
            ``"P"``, ``"B"``; or ``"result"``) — the selective uncertainty
            policy dispatches on it.
        body: opaque payload.
        size: abstract byte count for load accounting.
    """

    index: int
    klass: str
    body: Any
    size: int = 1


@runtime_checkable
class ServiceApplication(Protocol):
    """Content semantics of one service, plugged into the framework."""

    def initial_state(self, unit_id: str, params: Any) -> Any:
        """Create the session state for a new session on ``unit_id``."""
        ...

    def apply_update(self, state: Any, update: Any) -> Any:
        """Apply one client context update; returns the new state."""
        ...

    def respond_to_update(self, state: Any, update: Any) -> tuple[Any, list[ResponseBody]]:
        """Immediate responses triggered by an update (may be empty)."""
        ...

    def response_interval(self, state: Any) -> float | None:
        """Streaming period in seconds, or ``None`` for purely
        request/response services."""
        ...

    def next_responses(self, state: Any) -> tuple[Any, list[ResponseBody]]:
        """Produce the next timer-driven responses (advances the state)."""
        ...

    def estimate_emitted(self, state: Any, elapsed: float) -> int:
        """Roughly how many responses a primary would have emitted from
        ``state`` over ``elapsed`` seconds (bounds the uncertainty window
        on failover)."""
        ...

    def advance(self, state: Any, count: int) -> Any:
        """Skip ``count`` responses without emitting them (used by the
        skip-style uncertainty policies)."""
        ...

    def is_finished(self, state: Any) -> bool:
        """True when the session has naturally completed."""
        ...


class RequestResponseApplication:
    """Convenience base for non-streaming services.

    Subclasses implement :meth:`initial_state`, :meth:`apply_update` and
    :meth:`respond_to_update`; the streaming-related methods default to
    no-ops.
    """

    def response_interval(self, state: Any) -> float | None:
        return None

    def next_responses(self, state: Any) -> tuple[Any, list[ResponseBody]]:
        return state, []

    def estimate_emitted(self, state: Any, elapsed: float) -> int:
        return 0

    def advance(self, state: Any, count: int) -> Any:
        return state

    def is_finished(self, state: Any) -> bool:
        return False


__all__ = ["RequestResponseApplication", "ResponseBody", "ServiceApplication"]
