"""The client library (Section 3.3).

A :class:`ServiceClient` is deliberately thin — availability is the
service's job, not the client's:

* it multicasts a discovery request to the well-known **service group**
  and receives the catalog;
* it multicasts ``start-session`` to a **content group**;
* for the rest of the session it multicasts context updates to the
  **session group** (whose name it computes/learns once) and receives
  responses point-to-point from whoever is currently primary — it never
  tracks which servers those are.

The client records everything it sends and receives, time-stamped; the
audit module (:mod:`repro.metrics.session_audit`) turns those logs into
the paper's risk metrics (lost updates, duplicate / missing / stale
responses, service gaps).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.wire import (
    ContextUpdate,
    EndSession,
    ListUnitsRequest,
    ResponseMsg,
    SessionDenied,
    SessionStarted,
    StartSession,
    UnitList,
    content_group,
    service_group,
    session_group,
)
from repro.gcs.client_api import GcsClient
from repro.gcs.settings import GcsSettings
from repro.sim.network import Network
from repro.sim.topology import NodeId


@dataclass(frozen=True)
class ReceivedResponse:
    """One response as observed by the client."""

    time: float
    sender: NodeId
    index: int
    klass: str
    based_on_update: int
    uncertain: bool
    body: Any = None


@dataclass
class SessionHandle:
    """Client-side state and audit log of one session."""

    session_id: str
    unit_id: str
    client_id: NodeId
    requested_at: float
    started_at: float | None = None
    ended_at: float | None = None
    primary_seen: NodeId | None = None
    denied_reason: str | None = None
    update_counter: int = 0
    updates_sent: list[tuple[float, int, Any]] = field(default_factory=list)
    received: list[ReceivedResponse] = field(default_factory=list)
    last_response_at: float | None = None
    failed_sends: int = 0
    failed_update_counters: list[int] = field(default_factory=list)
    resumed_from: str | None = None

    @property
    def started(self) -> bool:
        return self.started_at is not None

    @property
    def group(self) -> str:
        return session_group(self.session_id)

    def response_indices(self) -> list[int]:
        return [r.index for r in self.received]


class ServiceClient:
    """A client of the highly available service."""

    def __init__(
        self,
        client_id: NodeId,
        network: Network,
        contact_servers: Iterable[NodeId],
        settings: GcsSettings | None = None,
        response_log_cap: int = 200_000,
    ) -> None:
        self.client_id = client_id
        self.gcs = GcsClient(
            client_id, network, contacts=contact_servers, app=self, settings=settings
        )
        self.sim = self.gcs.sim
        self.catalog: dict[str, str] | None = None
        self.sessions: dict[str, SessionHandle] = {}
        self.response_log_cap = response_log_cap
        self._session_counter = itertools.count()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.gcs.start()

    def crash(self) -> None:
        self.gcs.crash()

    def is_up(self) -> bool:
        return self.gcs.is_up()

    # ------------------------------------------------------------------
    # service discovery
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Ask the service group for the content catalog (asynchronous:
        ``catalog`` fills in when the reply arrives)."""
        self.gcs.mcast(service_group(), ListUnitsRequest(client_id=self.client_id))

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def start_session(self, unit_id: str, params: Any = None) -> SessionHandle:
        """Begin a session on ``unit_id``; returns its handle immediately
        (``handle.started`` flips when the primary's confirmation lands)."""
        session_id = f"{self.client_id}#{next(self._session_counter)}"
        handle = SessionHandle(
            session_id=session_id,
            unit_id=unit_id,
            client_id=self.client_id,
            requested_at=self.sim.now,
        )
        self.sessions[session_id] = handle
        self.gcs.mcast(
            content_group(unit_id),
            StartSession(
                client_id=self.client_id,
                session_id=session_id,
                unit_id=unit_id,
                params=params,
            ),
        )
        return handle

    def resume_session(
        self, old_handle: SessionHandle, params: Any = None
    ) -> SessionHandle:
        """Re-establish service after a total loss (all content replicas
        down long enough for the session to vanish — the paper's
        'availability is impossible' case, E5).

        Starts a *new* session on the same unit; ``params`` lets the
        application resume near where the client left off (e.g. VoD
        ``{"start": last_frame + 1}``).  The old handle is closed and the
        new one records its ancestry for auditing."""
        if old_handle.ended_at is None:
            old_handle.ended_at = self.sim.now
        handle = self.start_session(old_handle.unit_id, params=params)
        handle.resumed_from = old_handle.session_id
        return handle

    def send_update(self, handle: SessionHandle, update: Any) -> int:
        """Send one context update to the session group; returns its
        counter.  The session group's current membership is invisible to
        the client — it just names the group."""
        handle.update_counter += 1
        counter = handle.update_counter
        handle.updates_sent.append((self.sim.now, counter, update))
        self.gcs.mcast(
            handle.group,
            ContextUpdate(
                session_id=handle.session_id, counter=counter, update=update
            ),
        )
        return counter

    def end_session(self, handle: SessionHandle) -> None:
        handle.ended_at = self.sim.now
        self.gcs.mcast(handle.group, EndSession(session_id=handle.session_id))

    # ------------------------------------------------------------------
    # GcsClientApplication callbacks
    # ------------------------------------------------------------------
    def on_ptp(self, sender: NodeId, payload: Any) -> None:
        if isinstance(payload, UnitList):
            self.catalog = dict(payload.units)
        elif isinstance(payload, SessionStarted):
            handle = self.sessions.get(payload.session_id)
            if handle is not None and handle.started_at is None:
                handle.started_at = self.sim.now
                handle.primary_seen = payload.primary
        elif isinstance(payload, SessionDenied):
            handle = self.sessions.get(payload.session_id)
            if handle is not None:
                handle.denied_reason = payload.reason
        elif isinstance(payload, ResponseMsg):
            handle = self.sessions.get(payload.session_id)
            if handle is None:
                return
            handle.primary_seen = sender
            handle.last_response_at = self.sim.now
            handle.received.append(
                ReceivedResponse(
                    time=self.sim.now,
                    sender=sender,
                    index=payload.index,
                    klass=payload.klass,
                    based_on_update=payload.based_on_update,
                    uncertain=payload.uncertain,
                    body=payload.body,
                )
            )
            if len(handle.received) > self.response_log_cap:
                del handle.received[: -self.response_log_cap]

    def on_send_failed(self, group: str, payload: Any) -> None:
        if isinstance(payload, (ContextUpdate, EndSession)):
            handle = self.sessions.get(payload.session_id)
            if handle is not None:
                handle.failed_sends += 1
                if isinstance(payload, ContextUpdate):
                    handle.failed_update_counters.append(payload.counter)
        elif isinstance(payload, StartSession):
            handle = self.sessions.get(payload.session_id)
            if handle is not None:
                handle.denied_reason = "unreachable"


__all__ = ["ReceivedResponse", "ServiceClient", "SessionHandle"]
