"""The framework's configurable availability parameters (Section 3).

The paper's whole point is that these are *policy*, not mechanism: a
service builder trades resources (replicas, backups, propagation traffic)
against the probability of the bad events analysed in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.responses import ResendAll, UncertaintyPolicy


@dataclass
class AvailabilityPolicy:
    """Tunable knobs of one service deployment.

    Attributes:
        num_backups: backup servers per session (session group size is
            ``1 + num_backups``).  ``0`` reproduces the design of the
            original VoD paper [2], where the session group is the primary
            alone.
        propagation_period: seconds between the primary's context
            propagations to the content group.  The VoD service of [2]
            used 0.5 s.
        uncertainty_policy: what a failure-takeover primary does about
            responses that *may* have been sent in the window between the
            last propagation and the crash (resend / skip / selective).
        handoff_timeout: how long a newly selected primary waits for the
            old primary's exact context during a *controlled* migration
            before falling back to its freshest local context.
        leave_grace: how long a server stays in a session group after
            losing its role there, so replacements join before it leaves
            (the paper's join-first-then-leave rule).
        rebalance_on_join: whether a join-triggered view change triggers a
            full exchange-and-rebalance (the paper's behaviour) — disabled
            only by ablation experiments.
        prefer_backup_promotion: whether reallocation prefers surviving
            former backups as new primaries (the paper's stated selection
            preference) — disabled only by ablation experiments.
        durable_unit_db: keep the unit database across server restarts
            (simulating a disk copy).  The paper's design is volatile —
            a simultaneous crash of every replica permanently loses its
            sessions (E5); durability converts that into a recoverable
            outage.  An extension beyond the paper, off by default.
        response_log_cap: per-session cap on the client's received-response
            log (memory guard for long benchmark runs).
        delta_propagation: ship incremental context deltas (only the
            app-state fields changed since the previous propagation)
            instead of full snapshots whenever safe.  Full snapshots are
            still sent on the first propagation of a role, after content
            view changes, and periodically (below) so receivers at an
            epoch gap re-converge.
        full_propagation_every: with delta propagation on, force a full
            snapshot at least every this-many propagations (bounds how
            long a receiver that missed a delta base can stay stale).
    """

    num_backups: int = 1
    propagation_period: float = 0.5
    uncertainty_policy: UncertaintyPolicy = field(default_factory=ResendAll)
    handoff_timeout: float = 0.3
    leave_grace: float = 0.5
    rebalance_on_join: bool = True
    prefer_backup_promotion: bool = True
    durable_unit_db: bool = False
    response_log_cap: int = 200_000
    delta_propagation: bool = True
    full_propagation_every: int = 8

    def __post_init__(self) -> None:
        if self.num_backups < 0:
            raise ValueError("num_backups must be >= 0")
        if self.propagation_period <= 0:
            raise ValueError("propagation_period must be positive")
        if self.full_propagation_every < 1:
            raise ValueError("full_propagation_every must be >= 1")

    @property
    def session_group_size(self) -> int:
        return 1 + self.num_backups


__all__ = ["AvailabilityPolicy"]
