"""Session context with the paper's three freshness levels.

* The **primary** holds the live application state, exact update counter
  and exact response counter.
* A **backup** holds the last propagated snapshot *plus* every client
  context update it has seen since (client updates go to the session
  group, so backups never miss them while alive) — but not the responses,
  which are point-to-point.
* The **unit database** holds only the last propagated snapshot.

The invariant the paper states — "client context updates [known to the
session group] are at least as current as information in the unit
database" — is checkable: a backup's effective update counter is always
``>=`` the snapshot's.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class ContextSnapshot:
    """An immutable picture of one session's context at a moment.

    Attributes:
        app_state: the application-defined session state (deep-copied on
            capture so later mutations never leak into the snapshot).
        update_counter: highest client context-update counter reflected.
        response_counter: number of responses the primary had sent.
        stamped_at: simulation time of capture (lets a takeover primary
            bound the uncertainty window).
        epoch: the primary's propagation sequence number for the session;
            state-exchange merges keep the record with the largest epoch.
    """

    app_state: Any
    update_counter: int = 0
    response_counter: int = 0
    stamped_at: float = 0.0
    epoch: int = 0

    def freshness_key(self) -> tuple:
        """Orders snapshots of one session by how current they are.

        Client-update progress dominates: update counters are assigned by
        the client, so they are comparable across *any* two snapshots of a
        session — including snapshots produced by concurrent primaries
        during a transient dual-primary episode.  The propagation epoch is
        only a tiebreak (it is a per-primary-lineage counter, so an
        epoch-richer but update-poorer snapshot must never win)."""
        return (self.update_counter, self.response_counter, self.epoch)


@dataclass
class PrimaryContext:
    """The live context held by the session's primary server."""

    app_state: Any
    update_counter: int = 0
    response_counter: int = 0
    epoch: int = 0

    def snapshot(self, now: float) -> ContextSnapshot:
        """Capture a propagation snapshot (epoch advances)."""
        self.epoch += 1
        return ContextSnapshot(
            app_state=copy.deepcopy(self.app_state),
            update_counter=self.update_counter,
            response_counter=self.response_counter,
            stamped_at=now,
            epoch=self.epoch,
        )

    @staticmethod
    def from_snapshot(snapshot: ContextSnapshot) -> "PrimaryContext":
        return PrimaryContext(
            app_state=copy.deepcopy(snapshot.app_state),
            update_counter=snapshot.update_counter,
            response_counter=snapshot.response_counter,
            epoch=snapshot.epoch,
        )


@dataclass
class BackupContext:
    """A backup's context: base snapshot plus the update log since.

    ``apply_update`` appends; ``rebase`` adopts a newer propagation and
    prunes the log; ``effective`` reconstructs the freshest state the
    backup can offer on takeover.
    """

    base: ContextSnapshot
    update_log: list[tuple[int, Any]] = field(default_factory=list)

    def apply_update(self, counter: int, update: Any) -> None:
        if counter > self.base.update_counter:
            self.update_log.append((counter, update))

    def rebase(self, snapshot: ContextSnapshot) -> None:
        """Adopt a newer propagated snapshot, keeping updates it missed."""
        if snapshot.freshness_key() <= self.base.freshness_key():
            return
        self.base = snapshot
        self.update_log = [
            (counter, update)
            for counter, update in self.update_log
            if counter > snapshot.update_counter
        ]

    def effective(self, apply_update_fn) -> ContextSnapshot:
        """The snapshot a takeover would start from: base plus logged
        updates, replayed through the application's update function."""
        state = copy.deepcopy(self.base.app_state)
        counter = self.base.update_counter
        for update_counter, update in sorted(self.update_log):
            state = apply_update_fn(state, update)
            counter = max(counter, update_counter)
        return replace(
            self.base, app_state=state, update_counter=counter
        )

    @property
    def effective_update_counter(self) -> int:
        if not self.update_log:
            return self.base.update_counter
        return max(self.base.update_counter, max(c for c, _ in self.update_log))


__all__ = ["BackupContext", "ContextSnapshot", "PrimaryContext"]
