"""Session context with the paper's three freshness levels.

* The **primary** holds the live application state, exact update counter
  and exact response counter.
* A **backup** holds the last propagated snapshot *plus* every client
  context update it has seen since (client updates go to the session
  group, so backups never miss them while alive) — but not the responses,
  which are point-to-point.
* The **unit database** holds only the last propagated snapshot.

The invariant the paper states — "client context updates [known to the
session group] are at least as current as information in the unit
database" — is checkable: a backup's effective update counter is always
``>=`` the snapshot's.

Application states are **immutable by contract**: every
:class:`~repro.core.application.ServiceApplication` method is functional
(state in, state out), which is what lets this module snapshot and ship
contexts *by reference* instead of deep-copying, and compute **deltas**
between successive propagations.  A :class:`ContextDelta` carries only
the app-state fields that changed since the previous propagation epoch —
the FRAPPE-style incremental state shipping that makes the paper's
"frequency of context propagation" knob cost what it actually costs,
rather than the cost of re-serializing the whole context every period.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Callable

# ---------------------------------------------------------------------------
# byte-size accounting
# ---------------------------------------------------------------------------

#: Abstract byte cost of the fixed per-propagation overhead: the frame
#: header, the ``Propagate`` shell with its session/unit ids, and the
#: snapshot/delta counter+timestamp fields.  Calibrated against the live
#: codec (``repro.net.codec``) so simulated ``propagation_bytes_*``
#: counters track what a live run actually puts on the wire; the live
#: audit asserts the ratio stays within 1.25x.
_HEADER_COST = 78


def estimate_size(value: Any) -> int:
    """Deterministic abstract byte count of an application value.

    Used by the load accounting (experiment E2) to price propagation
    traffic.  The per-type costs mirror the live codec's generic
    encoding (``repro.net.codec``): numbers are a tag plus eight bytes,
    strings and bytes a tag plus a length word plus their content,
    containers a tag plus a count word plus their elements, dataclasses
    a tag plus a type id plus a field count plus their fields.  Unknown
    objects degrade to the length of their repr.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 9
    if isinstance(value, str):
        return 5 + len(value)
    if isinstance(value, bytes):
        return 5 + len(value)
    if isinstance(value, dict):
        return 5 + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return 5 + sum(estimate_size(item) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return 4 + sum(
            estimate_size(getattr(value, f.name))
            for f in dataclasses.fields(value)
        )
    return len(repr(value))


# ---------------------------------------------------------------------------
# state diffing (copy-on-write propagation)
# ---------------------------------------------------------------------------


def state_delta(old: Any, new: Any) -> tuple[tuple[str, Any], ...] | None:
    """Field-level diff between two application states.

    Returns a tuple of ``(field_name, new_value)`` pairs, or ``None`` when
    the states cannot be diffed (not dataclasses of the same type).  An
    empty tuple means "unchanged" — cheap to detect because functional
    applications return the *same object* when an update is a no-op.
    """
    if old is new:
        return ()
    if (
        not dataclasses.is_dataclass(old)
        or not dataclasses.is_dataclass(new)
        or type(old) is not type(new)
        or isinstance(old, type)
    ):
        return None
    changed = []
    for f in dataclasses.fields(new):
        old_value = getattr(old, f.name)
        new_value = getattr(new, f.name)
        if old_value is not new_value and old_value != new_value:
            changed.append((f.name, new_value))
    return tuple(changed)


def apply_state_delta(state: Any, changes: tuple) -> Any:
    """Apply a :func:`state_delta` result to a base state."""
    if not changes:
        return state
    return replace(state, **dict(changes))


@dataclass(frozen=True, slots=True)
class ContextSnapshot:
    """An immutable picture of one session's context at a moment.

    Attributes:
        app_state: the application-defined session state.  States are
            immutable by the application contract, so the snapshot shares
            the reference instead of deep-copying.
        update_counter: highest client context-update counter reflected.
        response_counter: number of responses the primary had sent.
        stamped_at: simulation time of capture (lets a takeover primary
            bound the uncertainty window).
        epoch: the primary's propagation sequence number for the session;
            state-exchange merges keep the record with the largest epoch.
    """

    app_state: Any
    update_counter: int = 0
    response_counter: int = 0
    stamped_at: float = 0.0
    epoch: int = 0

    def freshness_key(self) -> tuple:
        """Orders snapshots of one session by how current they are.

        Client-update progress dominates: update counters are assigned by
        the client, so they are comparable across *any* two snapshots of a
        session — including snapshots produced by concurrent primaries
        during a transient dual-primary episode.  The propagation epoch is
        only a tiebreak (it is a per-primary-lineage counter, so an
        epoch-richer but update-poorer snapshot must never win)."""
        return (self.update_counter, self.response_counter, self.epoch)

    @property
    def size_estimate(self) -> int:
        """Abstract wire cost of shipping this snapshot in full."""
        return _HEADER_COST + estimate_size(self.app_state)


@dataclass(frozen=True, slots=True)
class ContextDelta:
    """The incremental form of one propagation: only what changed.

    ``changes`` is the :func:`state_delta` of the app state between the
    propagation at ``base_epoch`` and this one (``epoch``); the counters
    carry the same meaning as on :class:`ContextSnapshot`.  A receiver can
    reconstruct the full snapshot iff its current record for the session
    sits exactly at ``base_epoch`` — otherwise it must wait for the next
    full snapshot (epoch gap: a joiner, or a member that missed the
    lineage's earlier propagations).
    """

    base_epoch: int
    epoch: int
    update_counter: int
    response_counter: int
    stamped_at: float
    changes: tuple

    @property
    def size_estimate(self) -> int:
        """Abstract wire cost: header plus only the changed fields (each
        pair rides in its own small tuple on the wire, hence the +5)."""
        return _HEADER_COST + sum(
            5 + estimate_size(name) + estimate_size(value)
            for name, value in self.changes
        )

    def apply_to(self, base: ContextSnapshot) -> ContextSnapshot:
        """Reconstruct the full snapshot this delta encodes.

        ``base`` must be the receiver's snapshot at exactly
        ``base_epoch`` (raises ``ValueError`` otherwise — callers check
        and count the gap instead of letting it propagate)."""
        if base.epoch != self.base_epoch:
            raise ValueError(
                f"delta base epoch {self.base_epoch} != snapshot epoch {base.epoch}"
            )
        return ContextSnapshot(
            app_state=apply_state_delta(base.app_state, self.changes),
            update_counter=self.update_counter,
            response_counter=self.response_counter,
            stamped_at=self.stamped_at,
            epoch=self.epoch,
        )


@dataclass(slots=True)
class PrimaryContext:
    """The live context held by the session's primary server."""

    app_state: Any
    update_counter: int = 0
    response_counter: int = 0
    epoch: int = 0
    # the app state as of the last snapshot()/delta() capture — the
    # copy-on-write base the next delta is diffed against
    _delta_base: Any = field(default=None, repr=False, compare=False)

    def snapshot(self, now: float) -> ContextSnapshot:
        """Capture a full propagation snapshot (epoch advances).

        States are immutable by the application contract, so this shares
        the state reference — capture is O(1), not a deep copy."""
        self.epoch += 1
        self._delta_base = self.app_state
        return ContextSnapshot(
            app_state=self.app_state,
            update_counter=self.update_counter,
            response_counter=self.response_counter,
            stamped_at=now,
            epoch=self.epoch,
        )

    def delta(self, now: float) -> ContextDelta | None:
        """Capture an incremental propagation (epoch advances) against the
        previous capture, or ``None`` when no capture exists yet or the
        state does not support field-level diffing (caller falls back to a
        full :meth:`snapshot`)."""
        if self._delta_base is None:
            return None
        changes = state_delta(self._delta_base, self.app_state)
        if changes is None:
            return None
        base_epoch = self.epoch
        self.epoch += 1
        self._delta_base = self.app_state
        return ContextDelta(
            base_epoch=base_epoch,
            epoch=self.epoch,
            update_counter=self.update_counter,
            response_counter=self.response_counter,
            stamped_at=now,
            changes=changes,
        )

    @staticmethod
    def from_snapshot(snapshot: ContextSnapshot) -> "PrimaryContext":
        return PrimaryContext(
            app_state=snapshot.app_state,
            update_counter=snapshot.update_counter,
            response_counter=snapshot.response_counter,
            epoch=snapshot.epoch,
        )


@dataclass(slots=True)
class BackupContext:
    """A backup's context: base snapshot plus the update log since.

    ``apply_update`` appends; ``rebase`` adopts a newer propagation and
    prunes the log; ``effective`` reconstructs the freshest state the
    backup can offer on takeover.
    """

    base: ContextSnapshot
    update_log: list = field(default_factory=list)

    def apply_update(self, counter: int, update: Any) -> None:
        if counter > self.base.update_counter:
            self.update_log.append((counter, update))

    def rebase(self, snapshot: ContextSnapshot) -> None:
        """Adopt a newer propagated snapshot, keeping updates it missed."""
        if snapshot.freshness_key() <= self.base.freshness_key():
            return
        self.base = snapshot
        self.update_log = [
            (counter, update)
            for counter, update in self.update_log
            if counter > snapshot.update_counter
        ]

    def effective(self, apply_update_fn: Callable[[Any, Any], Any]) -> ContextSnapshot:
        """The snapshot a takeover would start from: base plus logged
        updates, replayed through the application's update function.

        With an empty log this is the base itself — no copy, no replay.
        The replay sorts by counter only: update payloads are opaque
        application values and need not be orderable, so tying counters
        must never fall through to comparing the payloads."""
        if not self.update_log:
            return self.base
        state = self.base.app_state
        counter = self.base.update_counter
        for update_counter, update in sorted(
            self.update_log, key=lambda item: item[0]
        ):
            state = apply_update_fn(state, update)
            counter = max(counter, update_counter)
        return replace(
            self.base, app_state=state, update_counter=counter
        )

    @property
    def effective_update_counter(self) -> int:
        if not self.update_log:
            return self.base.update_counter
        return max(self.base.update_counter, max(c for c, _ in self.update_log))


__all__ = [
    "BackupContext",
    "ContextDelta",
    "ContextSnapshot",
    "PrimaryContext",
    "apply_state_delta",
    "estimate_size",
    "state_delta",
]
