"""Availability manager: from a target quality to parameter settings.

The paper's future work: "the user might express a desired service quality
in terms of a chance of losing a context update, and the system could then
adjust the needed number of backups in each session group" (using
techniques like [Mishra & Pang 1999] to invoke new servers when needed).

:func:`backups_for_target` inverts the Section-4 analytic loss model to
pick the smallest session group achieving a target loss probability;
:class:`AvailabilityManager` applies it to a live cluster — monitoring the
observed failure rate, re-deriving the backup count, and (optionally)
spawning spare servers when the content group is too small to carry the
required session group size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.availability import context_loss_probability


def backups_for_target(
    target_loss: float,
    failure_rate: float,
    propagation_period: float,
    max_backups: int = 8,
) -> int:
    """Smallest number of backups whose predicted per-window context-update
    loss probability is below ``target_loss``.

    Returns ``max_backups`` when even that many cannot achieve the target
    (the caller should then also shorten the propagation period).
    """
    if not 0.0 < target_loss < 1.0:
        raise ValueError("target_loss must be in (0, 1)")
    for backups in range(0, max_backups + 1):
        predicted = context_loss_probability(
            failure_rate=failure_rate,
            propagation_period=propagation_period,
            session_group_size=backups + 1,
        )
        if predicted <= target_loss:
            return backups
    return max_backups


def period_for_target(
    target_loss: float,
    failure_rate: float,
    num_backups: int,
    min_period: float = 0.05,
    max_period: float = 10.0,
) -> float:
    """Longest propagation period (cheapest) still meeting the target for
    a fixed session group size — binary search on the analytic model."""
    if not 0.0 < target_loss < 1.0:
        raise ValueError("target_loss must be in (0, 1)")
    size = num_backups + 1
    lo, hi = min_period, max_period
    if context_loss_probability(failure_rate, hi, size) <= target_loss:
        return hi
    if context_loss_probability(failure_rate, lo, size) > target_loss:
        return lo
    for _ in range(60):
        mid = (lo + hi) / 2
        if context_loss_probability(failure_rate, mid, size) <= target_loss:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass
class ManagerDecision:
    """What the manager decided at one evaluation point."""

    time: float
    observed_failure_rate: float
    num_backups: int
    spawn_needed: int


@dataclass
class AvailabilityManager:
    """Monitors a cluster and keeps its policy at a target quality.

    The manager samples the observed crash rate over a sliding window,
    derives the needed backup count from the analytic model, updates the
    live policy object (new sessions pick it up; a full reallocation also
    applies it to existing ones), and reports how many extra servers would
    be needed for the content groups to sustain the session group size —
    the hook where [5]-style automatic server invocation plugs in.
    """

    cluster: "object"  # ServiceCluster (duck-typed to avoid an import cycle)
    target_loss: float
    window: float = 60.0
    max_backups: int = 4
    auto_spawn: bool = False
    crash_times: list[float] = field(default_factory=list)
    recovery_times: list[float] = field(default_factory=list)
    decisions: list[ManagerDecision] = field(default_factory=list)
    spawned: list[str] = field(default_factory=list)

    def record_crash(self, time: float) -> None:
        self.crash_times.append(time)

    def record_recovery(self, time: float) -> None:
        """Symmetric with :meth:`record_crash`: the injector reports
        repairs too, so the manager can reason about mean downtime (and so
        chaos traces of manager activity show both edges of an outage)."""
        self.recovery_times.append(time)

    def observed_mean_downtime(self, now: float) -> float:
        """Mean crash-to-recovery gap inside the window (best-effort pairing
        of each recovery with the latest earlier crash)."""
        recent = [t for t in self.recovery_times if now - t <= self.window]
        gaps = []
        for recovery in recent:
            earlier = [t for t in self.crash_times if t <= recovery]
            if earlier:
                gaps.append(recovery - max(earlier))
        return sum(gaps) / len(gaps) if gaps else 0.0

    def observed_failure_rate(self, now: float) -> float:
        """Per-server crash rate (crashes/second/server) in the window."""
        recent = [t for t in self.crash_times if now - t <= self.window]
        n_servers = max(1, len(self.cluster.servers))
        horizon = min(self.window, now) or 1.0
        return len(recent) / (n_servers * horizon)

    def evaluate(self) -> ManagerDecision:
        """Re-derive parameters from observations and apply them."""
        now = self.cluster.sim.now
        rate = self.observed_failure_rate(now)
        policy = self.cluster.policy
        backups = backups_for_target(
            target_loss=self.target_loss,
            failure_rate=max(rate, 1e-9),
            propagation_period=policy.propagation_period,
            max_backups=self.max_backups,
        )
        policy.num_backups = backups
        live = sum(1 for s in self.cluster.servers.values() if s.is_up())
        spawn_needed = max(0, policy.session_group_size - live)
        decision = ManagerDecision(
            time=now,
            observed_failure_rate=rate,
            num_backups=backups,
            spawn_needed=spawn_needed,
        )
        self.decisions.append(decision)
        if spawn_needed > 0 and self.auto_spawn:
            # the [Mishra & Pang 1999] hook realized: bring up fresh
            # servers; the join-type view change absorbs them
            for _ in range(spawn_needed):
                server_id = f"spawned-{len(self.spawned)}"
                self.cluster.spawn_server(server_id)
                self.spawned.append(server_id)
        return decision

    def start(self, period: float = 10.0) -> None:
        """Evaluate periodically on the cluster's simulator."""

        def tick() -> None:
            self.evaluate()
            self.cluster.sim.schedule(period, tick)

        self.cluster.sim.schedule(period, tick)


__all__ = [
    "AvailabilityManager",
    "ManagerDecision",
    "backups_for_target",
    "period_for_target",
]
