"""Uncertainty policies for failure takeover (Section 4).

When a primary crashes, responses it sent between its last propagation and
the crash are unknown to the successor.  The paper: "it can either
transmit the response (risking the client seeing a duplicate ...) or it
can not transmit (risking that the client never sees the response).  The
choice is application specific."  Three policies realize the choice:

* :class:`ResendAll` — resume from the snapshot position; the whole
  uncertainty window is retransmitted (no loss, maximal duplicates).
* :class:`SkipUncertain` — skip past the estimated uncertainty window
  (no duplicates, maximal loss).
* :class:`SelectiveResend` — walk the uncertain responses and retransmit
  only those whose class passes a predicate (e.g. MPEG I-frames), skipping
  the rest — the paper's MPEG recommendation.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.core.application import ResponseBody, ServiceApplication


class UncertaintyPolicy(Protocol):
    """Resolves the uncertainty window when taking over from a snapshot.

    Returns ``(state, resend)``: the state to resume streaming from and
    the uncertain responses to retransmit immediately (marked as such).
    """

    def resolve(
        self,
        app: ServiceApplication,
        state: Any,
        estimated_uncertain: int,
    ) -> tuple[Any, list[ResponseBody]]:
        ...


class ResendAll:
    """Favor completeness: resume exactly at the snapshot position.

    Nothing is skipped and nothing is pre-sent; the normal streaming loop
    regenerates the window, so the client may see up to one propagation
    period of duplicates (the VoD behaviour described in Section 3.1)."""

    def resolve(
        self, app: ServiceApplication, state: Any, estimated_uncertain: int
    ) -> tuple[Any, list[ResponseBody]]:
        return state, []

    def __repr__(self) -> str:
        return "ResendAll()"


class SkipUncertain:
    """Favor no-duplicates: jump past the estimated uncertainty window."""

    def resolve(
        self, app: ServiceApplication, state: Any, estimated_uncertain: int
    ) -> tuple[Any, list[ResponseBody]]:
        if estimated_uncertain > 0:
            state = app.advance(state, estimated_uncertain)
        return state, []

    def __repr__(self) -> str:
        return "SkipUncertain()"


class SelectiveResend:
    """Per-class choice: regenerate the uncertain responses, transmit only
    the classes the predicate keeps (e.g. ``klass == "I"``), and resume
    streaming after the window."""

    def __init__(self, keep: Callable[[ResponseBody], bool]) -> None:
        self.keep = keep

    def resolve(
        self, app: ServiceApplication, state: Any, estimated_uncertain: int
    ) -> tuple[Any, list[ResponseBody]]:
        resend: list[ResponseBody] = []
        for _ in range(estimated_uncertain):
            state, produced = app.next_responses(state)
            if not produced:
                break
            resend.extend(r for r in produced if self.keep(r))
        return state, resend

    def __repr__(self) -> str:
        return "SelectiveResend(...)"


def mpeg_policy() -> SelectiveResend:
    """The paper's MPEG recommendation: duplicate I-frames rather than
    lose them; accept losing incremental P/B frames."""
    return SelectiveResend(keep=lambda response: response.klass == "I")


__all__ = [
    "ResendAll",
    "SelectiveResend",
    "SkipUncertain",
    "UncertaintyPolicy",
    "mpeg_policy",
]
