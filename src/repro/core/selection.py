"""Deterministic primary/backup selection (Section 3.4).

All content-group members evaluate these functions over identical unit
databases and identical views, so they reach the same allocation without
exchanging messages.  The paper's preferences are encoded directly:

* "the new primary assigned will be the former primary if possible, or one
  of the former backups, if the former primary has failed but some former
  backup remains in the group";
* otherwise pick "lightly-loaded" servers, and on joins "re-distribute the
  clients ... in such a way as to balance the load fairly".
"""

from __future__ import annotations

from typing import Iterable

from repro.core.unit_db import SessionRecord, UnitDatabase
from repro.sim.topology import NodeId


def _sorted_members(members: Iterable[NodeId]) -> list[NodeId]:
    return sorted(members, key=str)


def _least_loaded(
    loads: dict[NodeId, float], exclude: set[NodeId]
) -> NodeId | None:
    candidates = [n for n in loads if n not in exclude]
    if not candidates:
        return None
    return min(candidates, key=lambda n: (loads[n], str(n)))


def select_for_session(
    record: SessionRecord,
    members: Iterable[NodeId],
    num_backups: int,
    loads: dict[NodeId, float],
    prefer_backups: bool = True,
) -> tuple[NodeId | None, tuple[NodeId, ...]]:
    """Choose (primary, backups) for one session within ``members``.

    ``loads`` is mutated: the chosen servers are charged so successive
    calls spread sessions evenly.  Returns ``(None, ())`` when no member
    can serve.
    """
    alive = set(_sorted_members(members))
    if not alive:
        return None, ()

    primary: NodeId | None = None
    if record.primary in alive:
        primary = record.primary
    elif prefer_backups:
        for backup in record.backups:
            if backup in alive:
                primary = backup
                break
    if primary is None:
        primary = _least_loaded(loads, exclude=set())
    if primary is None:
        return None, ()

    backups: list[NodeId] = []
    taken = {primary}
    # Prefer surviving former backups, in their existing order.
    for backup in record.backups:
        if len(backups) >= num_backups:
            break
        if backup in alive and backup not in taken:
            backups.append(backup)
            taken.add(backup)
    # Fill the remainder from the least-loaded members.
    while len(backups) < num_backups:
        candidate = _least_loaded(loads, exclude=taken)
        if candidate is None:
            break
        backups.append(candidate)
        taken.add(candidate)

    loads[primary] = loads.get(primary, 0.0) + 1.0
    for backup in backups:
        loads[backup] = loads.get(backup, 0.0) + 0.25
    return primary, tuple(backups)


def allocate_sessions(
    db: UnitDatabase,
    members: Iterable[NodeId],
    num_backups: int,
    rebalance: bool = False,
    prefer_backups: bool = True,
) -> dict[str, tuple[NodeId | None, tuple[NodeId, ...]]]:
    """Compute the allocation of every session in ``db`` to ``members``.

    With ``rebalance=False`` (failure-type view changes) existing roles are
    preserved wherever the holder survives.  With ``rebalance=True``
    (join-type changes) the allocation is recomputed from scratch for even
    load, still preferring current holders as tie-breakers so migrations
    are not gratuitous.
    """
    members = _sorted_members(members)
    loads: dict[NodeId, float] = {member: 0.0 for member in members}
    allocation: dict[str, tuple[NodeId | None, tuple[NodeId, ...]]] = {}
    if not members:
        return {sid: (None, ()) for sid in db.session_ids()}

    if not rebalance:
        # Preserve surviving roles; pre-charge loads with them first so
        # fill-ins go to genuinely light servers.
        for record in db.records():
            if record.primary in loads:
                loads[record.primary] += 1.0
            for backup in record.backups:
                if backup in loads:
                    loads[backup] += 0.25
        for record in db.records():
            scratch = dict(loads)
            primary, backups = select_for_session(
                record, members, num_backups, scratch,
                prefer_backups=prefer_backups,
            )
            # charge only the *new* roles
            if primary is not None and primary != record.primary:
                loads[primary] = loads.get(primary, 0.0) + 1.0
            for backup in backups:
                if backup not in record.backups:
                    loads[backup] = loads.get(backup, 0.0) + 0.25
            allocation[record.session_id] = (primary, backups)
        return allocation

    # Full rebalance: cap every server at ceil(sessions / servers)
    # primaries.  Pass 1 keeps surviving primaries up to the cap (so
    # migrations are not gratuitous); pass 2 assigns the rest to the
    # least-loaded member.  The result is even to within one session.
    records = db.records()
    target = -(-len(records) // len(members))  # ceil division
    primary_count: dict[NodeId, int] = {member: 0 for member in members}
    backup_load: dict[NodeId, float] = {member: 0.0 for member in members}
    kept: dict[str, NodeId] = {}
    for record in records:
        if (
            record.primary in primary_count
            and primary_count[record.primary] < target
        ):
            kept[record.session_id] = record.primary
            primary_count[record.primary] += 1
    for record in records:
        session_id = record.session_id
        primary = kept.get(session_id)
        if primary is None:
            # The paper's preference order even when rebalancing: a
            # surviving former backup (it holds every client update the
            # session group saw) before any merely lightly-loaded server.
            if prefer_backups:
                for backup in record.backups:
                    if backup in primary_count and primary_count[backup] < target:
                        primary = backup
                        break
            if primary is None:
                primary = min(
                    members, key=lambda m: (primary_count[m], str(m))
                )
            primary_count[primary] += 1
        backups: list[NodeId] = []
        taken = {primary}
        for backup in record.backups:
            if len(backups) >= num_backups:
                break
            if backup in primary_count and backup not in taken:
                backups.append(backup)
                taken.add(backup)
        while len(backups) < num_backups:
            candidates = [m for m in members if m not in taken]
            if not candidates:
                break
            chosen = min(
                candidates,
                key=lambda m: (primary_count[m] + backup_load[m], str(m)),
            )
            backups.append(chosen)
            taken.add(chosen)
        for backup in backups:
            backup_load[backup] += 0.25
        allocation[session_id] = (primary, tuple(backups))
    return allocation


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index of a load vector (1.0 = perfectly even)."""
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


__all__ = ["allocate_sessions", "jain_fairness", "select_for_session"]
