"""The framework server (Sections 3.3–3.4).

A :class:`FrameworkServer` owns a GCS daemon and implements the paper's
server-side logic:

* joins the **service group** and one **content group** per hosted unit;
* answers client discovery requests;
* on a ``start-session`` multicast, every content-group member updates its
  unit database and runs the same deterministic selection function; the
  chosen primary and backups join the session group, and the primary
  notifies the client;
* the primary streams responses point-to-point, applies client context
  updates, and periodically propagates context snapshots to the content
  group; backups record the client updates they see;
* on a **failure-type** content view change, members reallocate
  immediately without exchanging messages (virtual synchrony guarantees
  identical unit databases); on a **join-type** change they first run a
  state exchange, merge deterministically, then rebalance;
* controlled migrations hand off the exact context old-primary to
  new-primary; failure takeovers resolve the response-uncertainty window
  through the configured :class:`~repro.core.responses.UncertaintyPolicy`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Iterable

from repro.core.application import ResponseBody, ServiceApplication
from repro.core.config import AvailabilityPolicy
from repro.core.context import BackupContext, ContextSnapshot, PrimaryContext
from repro.core.selection import allocate_sessions, select_for_session
from repro.core.unit_db import UnitDatabase
from repro.core.wire import (
    ContextUpdate,
    EndSession,
    Handoff,
    ListUnitsRequest,
    Propagate,
    RebalanceRequest,
    ResponseMsg,
    SessionEnded,
    SessionStarted,
    StartSession,
    StateExchange,
    UnitList,
    content_group,
    service_group,
    session_group,
)
from repro.gcs.daemon import GcsDaemon
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.gcs.view import Configuration, GroupView
from repro.sim.network import Network
from repro.sim.topology import NodeId

#: Named protocol steps at which a chaos schedule can arm a crash
#: (``FaultSchedule.crash_at``).  Each fires *when the server enters the
#: step*, which is how Section 4's "crash at the worst moment" patterns
#: become directly expressible: ``pre-handoff`` kills the old primary after
#: it was demoted but before its context reaches the successor;
#: ``post-update`` kills a primary between applying a ``ContextUpdate`` and
#: the next ``Propagate``; ``mid-exchange`` kills a member that already
#: contributed its state-exchange snapshot but has not merged.
CRASH_HOOKS = (
    "post-promote",  # primary role adopted (session group joined)
    "pre-handoff",  # demoted primary about to send its context
    "post-handoff",  # successor adopted a handed-off context
    "post-update",  # client context update applied, not yet propagated
    "pre-propagate",  # about to multicast a context snapshot
    "mid-exchange",  # own state-exchange snapshot sent, merge pending
)


@dataclass
class _PrimaryRuntime:
    """Live state of a session this server is currently primary for."""

    session_id: str
    unit_id: str
    client_id: NodeId
    ctx: PrimaryContext
    awaiting_handoff: bool = False
    handoff_base_key: tuple = ()
    pending_updates: list[tuple[int, Any]] = field(default_factory=list)
    finished: bool = False
    timer_armed: bool = False
    response_event = None
    propagation_timer = None
    # delta propagation bookkeeping: how many deltas since the last full
    # snapshot, and the content view the receivers of that full saw
    deltas_since_full: int = 0
    propagated_view_key: tuple | None = None


@dataclass
class _LingeringPrimary:
    """A demoted-but-alive primary: keeps absorbing client updates during
    the leave-grace window and forwards them to the successor in fresh
    handoffs, so a controlled migration loses nothing."""

    session_id: str
    unit_id: str
    ctx: PrimaryContext
    successor: NodeId


class FrameworkServer:
    """One service server: GCS daemon + the framework's availability logic.

    Args:
        server_id: the server's node id.
        network: simulated network.
        world: all server ids (GCS heartbeat world).
        hosted_units: content units this server replicates.
        applications: ``unit_id -> ServiceApplication`` for hosted units.
        catalog: full ``unit_id -> content group name`` map of the service
            (static placement knowledge; every server can answer client
            discovery with the whole catalog).
        policy: the availability policy (backups, propagation period, ...).
        settings: GCS timing settings.
        monitor: optional GCS spec monitor.
    """

    def __init__(
        self,
        server_id: NodeId,
        network: Network,
        world: Iterable[NodeId],
        hosted_units: Iterable[str],
        applications: dict[str, ServiceApplication],
        catalog: dict[str, str],
        policy: AvailabilityPolicy | None = None,
        settings: GcsSettings | None = None,
        monitor: SpecMonitor | None = None,
    ) -> None:
        self.server_id = server_id
        self.policy = policy or AvailabilityPolicy()
        self.hosted_units = sorted(hosted_units)
        self.applications = dict(applications)
        self.catalog = dict(catalog)
        self.daemon = GcsDaemon(
            server_id,
            network,
            world=world,
            app=self,
            settings=settings,
            monitor=monitor,
        )
        self.sim = self.daemon.sim
        self.counters: Counter = Counter()
        # chaos instrumentation: armed crash-at-step traps.  Deliberately
        # NOT part of the volatile state — a trap armed while the server is
        # down survives recovery (the fault, not the server, owns it).
        self._crash_hooks: Counter = Counter()
        self._reset_volatile()

    def _reset_volatile(self) -> None:
        self.unit_dbs: dict[str, UnitDatabase] = {
            unit: UnitDatabase(unit) for unit in self.hosted_units
        }
        self.primaries: dict[str, _PrimaryRuntime] = {}
        self.backups: dict[str, BackupContext] = {}
        self._backup_units: dict[str, str] = {}
        self._lingering: dict[str, _LingeringPrimary] = {}
        self._content_views: dict[str, GroupView] = {}
        self._content_incarnations: dict[str, dict[NodeId, int]] = {}
        self._exchanges: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.daemon.start()
        self.daemon.join(service_group())
        for unit in self.hosted_units:
            self.daemon.join(content_group(unit))

    def crash(self) -> None:
        self.daemon.crash()

    def recover(self) -> None:
        self.daemon.recover()

    def is_up(self) -> bool:
        return self.daemon.is_up()

    def on_daemon_recovered(self) -> None:
        """After a restart the server re-joins its groups; a join-type
        view change then re-integrates it (state exchange + rebalance).

        Session *roles* and live contexts are always volatile.  The unit
        database is volatile too in the paper's design; with
        ``policy.durable_unit_db`` it survives the restart (as if read
        back from disk), so even a whole-cluster crash only suspends
        sessions instead of erasing them."""
        preserved = self.unit_dbs if self.policy.durable_unit_db else None
        self._reset_volatile()
        if preserved is not None:
            self.unit_dbs = preserved
        self.daemon.join(service_group())
        for unit in self.hosted_units:
            self.daemon.join(content_group(unit))

    # ------------------------------------------------------------------
    # chaos crash hooks
    # ------------------------------------------------------------------
    def arm_crash_hook(self, hook: str, times: int = 1) -> None:
        """Arm a crash that fires the next ``times`` times this server
        enters the named protocol step (see :data:`CRASH_HOOKS`)."""
        if hook not in CRASH_HOOKS:
            raise ValueError(f"unknown crash hook {hook!r} (valid: {CRASH_HOOKS})")
        self._crash_hooks[hook] += times

    def disarm_crash_hooks(self) -> None:
        """Drop every armed-but-unfired trap (the chaos heal phase calls
        this so a leftover trap cannot crash the server during the
        convergence window the oracles treat as fault-free)."""
        self._crash_hooks.clear()

    def _chaos_hook(self, hook: str) -> None:
        if self._crash_hooks.get(hook, 0) <= 0:
            return
        self._crash_hooks[hook] -= 1
        self.daemon.trace("fw.crash_hook", hook=hook)
        # Die *at this instant* without dying inline: muting output makes
        # everything the current handler says after the hook point vanish
        # (the crash is semantically here), while the actual teardown runs
        # as a zero-delay event so the handler finishes without tripping
        # over set_timer-on-a-crashed-process.
        self.daemon.mute_sends()
        self.sim.schedule(0.0, self.crash, label=f"crash-hook:{self.server_id}")

    # ------------------------------------------------------------------
    # introspection used by experiments and tests
    # ------------------------------------------------------------------
    def primary_sessions(self) -> frozenset[str]:
        """Sessions this server currently holds the primary role for."""
        return frozenset(self.primaries)

    def serving_sessions(self) -> frozenset[str]:
        """Primary sessions actually responding (not awaiting a handoff)."""
        return frozenset(
            sid for sid, rt in self.primaries.items() if not rt.awaiting_handoff
        )

    def backup_sessions(self) -> frozenset[str]:
        return frozenset(self.backups)

    def app_for(self, unit_id: str) -> ServiceApplication:
        return self.applications[unit_id]

    # ------------------------------------------------------------------
    # GcsApplication callbacks
    # ------------------------------------------------------------------
    def on_config_view(self, config: Configuration) -> None:
        self.counters["config_views"] += 1

    def on_group_view(self, view: GroupView) -> None:
        group = view.group
        if group.startswith("content:"):
            self._on_content_view(group.split(":", 1)[1], view)
        elif group.startswith("session:"):
            self.counters["session_views"] += 1
        elif group == service_group():
            self.counters["service_views"] += 1

    def on_group_message(
        self, group: str, origin: NodeId, payload: object, seq: int
    ) -> None:
        if isinstance(payload, StartSession):
            self._on_start_session(payload)
        elif isinstance(payload, ContextUpdate):
            self._on_context_update(payload)
        elif isinstance(payload, Propagate):
            self._on_propagate(payload)
        elif isinstance(payload, EndSession):
            self._on_end_session(payload)
        elif isinstance(payload, SessionEnded):
            self._on_session_ended(payload)
        elif isinstance(payload, StateExchange):
            self._on_state_exchange(payload)
        elif isinstance(payload, RebalanceRequest):
            self._on_rebalance_request(payload)
        elif isinstance(payload, ListUnitsRequest):
            self._on_list_units(payload)
        else:
            self.counters["unknown_group_msg"] += 1

    def on_ptp(self, sender: NodeId, payload: object) -> None:
        if isinstance(payload, Handoff):
            self._on_handoff(payload)
        else:
            self.counters["unknown_ptp"] += 1

    # ------------------------------------------------------------------
    # client discovery (service group)
    # ------------------------------------------------------------------
    def _on_list_units(self, request: ListUnitsRequest) -> None:
        members = self.daemon.members_of(service_group())
        if not members or min(members, key=str) != self.server_id:
            return  # exactly one member answers
        units = tuple(sorted(self.catalog.items()))
        self.daemon.send_ptp(request.client_id, UnitList(units=units))
        self.counters["catalog_replies"] += 1

    # ------------------------------------------------------------------
    # session establishment (content group)
    # ------------------------------------------------------------------
    def _on_start_session(self, message: StartSession) -> None:
        unit = message.unit_id
        db = self.unit_dbs.get(unit)
        if db is None:
            return
        if message.session_id in db:
            return  # duplicate start (client retry)
        app = self.applications[unit]
        initial = ContextSnapshot(
            app_state=app.initial_state(unit, message.params),
            stamped_at=self.sim.now,
        )
        record = db.add_session(
            message.session_id, message.client_id, message.params, initial
        )
        members = self._current_content_members(unit)
        loads = {member: db.load_of(member) for member in members}
        primary, backups = select_for_session(
            record,
            members,
            self.policy.num_backups,
            loads,
            prefer_backups=self.policy.prefer_backup_promotion,
        )
        db.set_allocation(message.session_id, primary, backups)
        self.counters["sessions_started"] += 1
        if primary == self.server_id:
            self._start_primary(
                message.session_id,
                unit,
                message.client_id,
                initial,
                uncertain=False,
                notify=True,
            )
        elif self.server_id in backups:
            self._start_backup(message.session_id, unit, initial)

    def _current_content_members(self, unit: str) -> tuple[NodeId, ...]:
        view = self._content_views.get(unit)
        if view is not None:
            return view.members
        return tuple(sorted(self.daemon.members_of(content_group(unit)), key=str))

    # ------------------------------------------------------------------
    # primary role
    # ------------------------------------------------------------------
    def _start_primary(
        self,
        session_id: str,
        unit: str,
        client_id: NodeId,
        snapshot: ContextSnapshot,
        uncertain: bool,
        notify: bool = False,
        await_handoff: bool = False,
    ) -> None:
        if session_id in self.primaries:
            return
        app = self.applications[unit]
        ctx = PrimaryContext.from_snapshot(snapshot)
        runtime = _PrimaryRuntime(
            session_id=session_id,
            unit_id=unit,
            client_id=client_id,
            ctx=ctx,
            awaiting_handoff=await_handoff,
            handoff_base_key=snapshot.freshness_key(),
        )
        self.primaries[session_id] = runtime
        self.daemon.join(session_group(session_id))
        self.daemon.trace(
            "fw.promote",
            session=session_id,
            unit=unit,
            uncertain=uncertain,
            await_handoff=await_handoff,
        )
        self.counters["promotions"] += 1

        if uncertain and not await_handoff:
            # The old primary may have kept sending from the snapshot's
            # capture until its crash; 'elapsed' is the only bound a
            # successor has (it includes detection latency, so skip-style
            # policies over-skip slightly — exactly the loss the paper's
            # tradeoff accepts).
            window = max(0.0, self.sim.now - snapshot.stamped_at)
            estimated = app.estimate_emitted(ctx.app_state, window)
            state, resend = self.policy.uncertainty_policy.resolve(
                app, ctx.app_state, estimated
            )
            ctx.app_state = state
            for response in resend:
                self._send_response(runtime, response, uncertain=True)
            self.counters["uncertain_windows"] += 1

        if notify:
            self.daemon.send_ptp(
                client_id,
                SessionStarted(
                    session_id=session_id,
                    session_group=session_group(session_id),
                    primary=self.server_id,
                ),
            )
        if await_handoff:
            self.daemon.set_timer(
                self.policy.handoff_timeout,
                lambda: self._handoff_timeout(session_id),
                label="handoff-timeout",
            )
        runtime.propagation_timer = self.daemon.set_periodic_timer(
            self.policy.propagation_period,
            lambda: self._propagate(session_id),
            label=f"propagate:{session_id}",
        )
        self._arm_response_timer(session_id)
        self._chaos_hook("post-promote")

    def _stop_primary(self, session_id: str, successor: NodeId | None) -> None:
        runtime = self.primaries.pop(session_id, None)
        if runtime is None:
            return
        if runtime.response_event is not None:
            runtime.response_event.cancel()
        if runtime.propagation_timer is not None:
            runtime.propagation_timer.stop()
        self.daemon.trace(
            "fw.demote", session=session_id, successor=successor
        )
        self.counters["demotions"] += 1
        if successor is not None and successor != self.server_id:
            lingering = _LingeringPrimary(
                session_id=session_id,
                unit_id=runtime.unit_id,
                ctx=runtime.ctx,
                successor=successor,
            )
            self._lingering[session_id] = lingering
            self._send_handoff(lingering)
            self.daemon.set_timer(
                self.policy.leave_grace,
                lambda: self._finish_lingering(session_id),
                label="leave-grace",
            )
        else:
            self._leave_session_group_later(session_id)

    def _finish_lingering(self, session_id: str) -> None:
        self._lingering.pop(session_id, None)
        if (
            session_id not in self.primaries
            and session_id not in self.backups
        ):
            self.daemon.leave(session_group(session_id))

    def _leave_session_group_later(self, session_id: str) -> None:
        def leave() -> None:
            if (
                session_id not in self.primaries
                and session_id not in self.backups
                and session_id not in self._lingering
            ):
                self.daemon.leave(session_group(session_id))

        self.daemon.set_timer(self.policy.leave_grace, leave, label="leave-grace")

    def _send_handoff(self, lingering: _LingeringPrimary) -> None:
        self._chaos_hook("pre-handoff")
        snapshot = lingering.ctx.snapshot(self.sim.now)
        self.daemon.send_ptp(
            lingering.successor,
            Handoff(
                session_id=lingering.session_id,
                unit_id=lingering.unit_id,
                snapshot=snapshot,
            ),
            size=4,
        )
        self.counters["handoffs_sent"] += 1

    def _adopt_snapshot(
        self, runtime: _PrimaryRuntime, snapshot: ContextSnapshot
    ) -> bool:
        """Replace the runtime context with a strictly more knowledgeable
        snapshot (replaying any pending updates it missed); returns
        whether an adoption happened.

        The epoch is deliberately NOT compared: epochs of concurrent
        primaries (a transient dual-primary during instability) are
        different lineages, and an epoch-fresher but update-poorer context
        must never overwrite updates this primary already applied."""
        incoming = (snapshot.update_counter, snapshot.response_counter)
        current = (runtime.ctx.update_counter, runtime.ctx.response_counter)
        if incoming <= current:
            return False
        app = self.applications[runtime.unit_id]
        ctx = PrimaryContext.from_snapshot(snapshot)
        for counter, update in sorted(runtime.pending_updates):
            if counter > ctx.update_counter:
                ctx.app_state = app.apply_update(ctx.app_state, update)
                ctx.update_counter = counter
        ctx.epoch = max(ctx.epoch, runtime.ctx.epoch)
        runtime.ctx = ctx
        return True

    def _on_handoff(self, handoff: Handoff) -> None:
        runtime = self.primaries.get(handoff.session_id)
        if runtime is None:
            return
        if runtime.awaiting_handoff:
            runtime.awaiting_handoff = False
            self.counters["handoffs_adopted"] += 1
        if self._adopt_snapshot(runtime, handoff.snapshot):
            self._chaos_hook("post-handoff")
        # the adopted context may have changed the streaming cadence
        # (e.g. a 'resume' the successor never saw): ensure a timer runs
        self._arm_response_timer(handoff.session_id)

    def _handoff_timeout(self, session_id: str) -> None:
        runtime = self.primaries.get(session_id)
        if runtime is None or not runtime.awaiting_handoff:
            return
        runtime.awaiting_handoff = False
        self.counters["handoff_timeouts"] += 1

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------
    def _arm_response_timer(self, session_id: str) -> None:
        runtime = self.primaries.get(session_id)
        if runtime is None or runtime.finished or runtime.timer_armed:
            return
        app = self.applications[runtime.unit_id]
        interval = app.response_interval(runtime.ctx.app_state)
        if interval is None:
            return  # paused or request/response service; updates re-arm
        runtime.timer_armed = True
        runtime.response_event = self.daemon.set_timer(
            interval,
            lambda: self._response_tick(session_id),
            label=f"respond:{session_id}",
        )

    def _response_tick(self, session_id: str) -> None:
        runtime = self.primaries.get(session_id)
        if runtime is None:
            return
        runtime.timer_armed = False
        app = self.applications[runtime.unit_id]
        if not runtime.awaiting_handoff:
            state, responses = app.next_responses(runtime.ctx.app_state)
            runtime.ctx.app_state = state
            for response in responses:
                self._send_response(runtime, response, uncertain=False)
            if app.is_finished(state):
                runtime.finished = True
                return
        self._arm_response_timer(session_id)

    def _send_response(
        self, runtime: _PrimaryRuntime, response: ResponseBody, uncertain: bool
    ) -> None:
        self.daemon.send_ptp(
            runtime.client_id,
            ResponseMsg(
                session_id=runtime.session_id,
                index=response.index,
                klass=response.klass,
                body=response.body,
                based_on_update=runtime.ctx.update_counter,
                uncertain=uncertain,
                size=response.size,
            ),
            size=response.size,
        )
        runtime.ctx.response_counter += 1
        self.counters["responses_sent"] += 1

    # ------------------------------------------------------------------
    # context updates (session group)
    # ------------------------------------------------------------------
    def _on_context_update(self, update: ContextUpdate) -> None:
        session_id = update.session_id
        runtime = self.primaries.get(session_id)
        if runtime is not None:
            app = self.applications[runtime.unit_id]
            if update.counter > runtime.ctx.update_counter:
                runtime.ctx.app_state = app.apply_update(
                    runtime.ctx.app_state, update.update
                )
                runtime.ctx.update_counter = update.counter
                runtime.pending_updates.append((update.counter, update.update))
                if len(runtime.pending_updates) > 64:
                    del runtime.pending_updates[:-64]
                self._chaos_hook("post-update")
                if not runtime.awaiting_handoff:
                    state, responses = app.respond_to_update(
                        runtime.ctx.app_state, update.update
                    )
                    runtime.ctx.app_state = state
                    for response in responses:
                        self._send_response(runtime, response, uncertain=False)
                    # the update may have changed the streaming cadence
                    # (e.g. a VoD 'resume'): make sure a timer is armed
                    self._arm_response_timer(session_id)
            self.counters["updates_primary"] += 1
            return
        lingering = self._lingering.get(session_id)
        if lingering is not None:
            app = self.applications[lingering.unit_id]
            if update.counter > lingering.ctx.update_counter:
                lingering.ctx.app_state = app.apply_update(
                    lingering.ctx.app_state, update.update
                )
                lingering.ctx.update_counter = update.counter
                self._send_handoff(lingering)
            return
        if session_id in self.backups:
            self.backups[session_id].apply_update(update.counter, update.update)
            self.counters["updates_backup"] += 1

    # ------------------------------------------------------------------
    # backup role
    # ------------------------------------------------------------------
    def _start_backup(self, session_id: str, unit: str, snapshot: ContextSnapshot) -> None:
        if session_id in self.backups or session_id in self.primaries:
            return
        self.backups[session_id] = BackupContext(base=snapshot)
        self._backup_units[session_id] = unit
        self.daemon.join(session_group(session_id))
        self.counters["backup_starts"] += 1

    def _stop_backup(self, session_id: str) -> None:
        if self.backups.pop(session_id, None) is None:
            return
        self._backup_units.pop(session_id, None)
        self._leave_session_group_later(session_id)
        self.counters["backup_stops"] += 1

    # ------------------------------------------------------------------
    # propagation (primary -> content group)
    # ------------------------------------------------------------------
    def _propagate(self, session_id: str) -> None:
        runtime = self.primaries.get(session_id)
        if runtime is None or runtime.awaiting_handoff:
            return
        self._chaos_hook("pre-propagate")
        view = self._content_views.get(runtime.unit_id)
        view_key = view.view_key if view is not None else None
        message = None
        if (
            self.policy.delta_propagation
            and runtime.propagated_view_key == view_key
            and runtime.deltas_since_full + 1 < self.policy.full_propagation_every
        ):
            delta = runtime.ctx.delta(self.sim.now)
            if delta is not None:
                message = Propagate(
                    session_id=session_id, unit_id=runtime.unit_id, delta=delta
                )
                runtime.deltas_since_full += 1
                self.counters["propagations_delta"] += 1
        if message is None:
            snapshot = runtime.ctx.snapshot(self.sim.now)
            message = Propagate(
                session_id=session_id, unit_id=runtime.unit_id, snapshot=snapshot
            )
            runtime.deltas_since_full = 0
            runtime.propagated_view_key = view_key
            self.counters["propagations_full"] += 1
        size = message.size_estimate
        self.daemon.mcast(content_group(runtime.unit_id), message, size=size)
        self.counters["propagations_sent"] += 1
        self.counters["propagation_bytes_est_sent"] += size
        self.counters["propagation_bytes_sent"] += self._wire_size(message, size)

    def _on_propagate(self, message: Propagate) -> None:
        db = self.unit_dbs.get(message.unit_id)
        if db is None:
            return
        snapshot = message.snapshot
        if snapshot is None:
            # incremental propagation: reconstruct the full snapshot from
            # our current record — possible only when we sit exactly at
            # the delta's base epoch (totally ordered propagations make
            # that the common case; joiners wait for the next full)
            record = db.get(message.session_id)
            if record is None or record.snapshot.epoch != message.delta.base_epoch:
                self.counters["propagation_delta_gaps"] += 1
                return
            snapshot = message.delta.apply_to(record.snapshot)
        db.apply_propagation(message.session_id, snapshot)
        if message.session_id in self.backups:
            self.backups[message.session_id].rebase(snapshot)
        self.counters["propagations_processed"] += 1
        estimate = message.size_estimate
        self.counters["propagation_bytes_est_processed"] += estimate
        self.counters["propagation_bytes_processed"] += self._wire_size(
            message, estimate
        )

    def _wire_size(self, message: Propagate, estimate: int) -> int:
        """Actual encoded byte size when the network can measure it (live
        runtime), the abstract estimate otherwise (simulation — where both
        counter families therefore stay equal)."""
        measure = getattr(self.daemon.network, "measure_frame", None)
        if measure is None:
            return estimate
        return int(measure(message))

    # ------------------------------------------------------------------
    # session teardown
    # ------------------------------------------------------------------
    def _on_end_session(self, message: EndSession) -> None:
        session_id = message.session_id
        runtime = self.primaries.get(session_id)
        if runtime is not None:
            self.daemon.mcast(
                content_group(runtime.unit_id),
                SessionEnded(session_id=session_id, unit_id=runtime.unit_id),
            )
            self._stop_primary(session_id, successor=None)
        if session_id in self.backups:
            self._stop_backup(session_id)
        self._lingering.pop(session_id, None)

    def _on_session_ended(self, message: SessionEnded) -> None:
        db = self.unit_dbs.get(message.unit_id)
        if db is not None:
            db.remove_session(message.session_id)
        self.counters["sessions_ended"] += 1

    # ------------------------------------------------------------------
    # preemptive load balancing (Section 3.1: migration "preemptively for
    # load balancing purposes")
    # ------------------------------------------------------------------
    def request_rebalance(self, unit: str) -> None:
        """Ask the whole content group to re-run the deterministic
        rebalance.  Safe to call from any member at any time; the request
        is totally ordered, so all members recompute the same allocation
        at the same logical instant."""
        if unit not in self.unit_dbs:
            raise ValueError(f"{self.server_id} does not host {unit!r}")
        self.daemon.mcast(content_group(unit), RebalanceRequest(unit_id=unit))

    def _on_rebalance_request(self, message: RebalanceRequest) -> None:
        """Run the full exchange-merge-rebalance pipeline on demand.

        The exchange makes the operation safe even when members' databases
        have diverged (e.g. a joiner that was never integrated because the
        rebalance-on-join ablation is active)."""
        unit = message.unit_id
        db = self.unit_dbs.get(unit)
        view = self._content_views.get(unit)
        if db is None or view is None:
            return
        if len(view.members) < 2:
            return  # nothing to balance against
        self._begin_exchange(unit, view)
        self.counters["preemptive_rebalances"] += 1

    # ------------------------------------------------------------------
    # content-group view changes (Section 3.4)
    # ------------------------------------------------------------------
    def _on_content_view(self, unit: str, view: GroupView) -> None:
        previous = self._content_views.get(unit)
        self._content_views[unit] = view
        db = self.unit_dbs.get(unit)
        if db is None:
            return
        incarnations = self.daemon.member_incarnations()
        previous_incarnations = self._content_incarnations.get(unit, {})
        self._content_incarnations[unit] = {
            m: incarnations[m] for m in view.members if m in incarnations
        }
        if previous is None:
            joiners = set(view.members) - {self.server_id}
            leavers: set[NodeId] = set()
        else:
            joiners = set(view.members) - set(previous.members)
            leavers = set(previous.members) - set(view.members)
            # A member that restarted between views (new incarnation) lost
            # all its volatile state: treat it as a joiner even though the
            # member *set* looks unchanged, so the state exchange rebuilds
            # it (mirrors the GCS-level incarnation handling).
            for member in view.members:
                old_inc = previous_incarnations.get(member)
                new_inc = incarnations.get(member)
                if old_inc is not None and new_inc is not None and old_inc != new_inc:
                    joiners.add(member)
        exchange_pending = unit in self._exchanges

        if (joiners or exchange_pending) and self.policy.rebalance_on_join and len(
            view.members
        ) > 1:
            self._begin_exchange(unit, view)
            return
        if joiners and not self.policy.rebalance_on_join:
            # Ablation: treat joiners as passive; no exchange, no rebalance.
            return
        if previous is None and len(view.members) == 1 and len(db) > 0:
            # A lone restart with a durable database: nobody to exchange
            # with, but the surviving records deserve primaries again.
            allocation = allocate_sessions(
                db,
                view.members,
                self.policy.num_backups,
                rebalance=False,
                prefer_backups=self.policy.prefer_backup_promotion,
            )
            self._apply_allocation(unit, view, allocation, cause="failure")
            self.counters["solo_restarts"] += 1
            return
        if leavers:
            allocation = allocate_sessions(
                db,
                view.members,
                self.policy.num_backups,
                rebalance=False,
                prefer_backups=self.policy.prefer_backup_promotion,
            )
            self._apply_allocation(unit, view, allocation, cause="failure")
            self.counters["failure_reallocations"] += 1

    def _exchange_snapshot(self, unit: str) -> dict:
        """The unit database dump this member contributes to an exchange,
        upgraded with its own live knowledge.

        The database only holds the last *propagated* snapshot of each
        session, but this member may know strictly more: a backup's
        recorded update log, or an incumbent primary's live counters.
        Views can briefly exclude a live member (a merge racing the
        failure detector), and updates delivered only inside the excluded
        member's configuration would otherwise be silently forgotten by
        the merge — the exchange must offer the freshest context each
        member can actually reconstruct, not just the last propagation."""
        dump = self.unit_dbs[unit].snapshot_for_exchange()
        app = self.applications[unit]
        for session_id, record in list(dump.items()):
            best = record.snapshot
            runtime = self.primaries.get(session_id)
            if runtime is not None and runtime.unit_id == unit:
                live = ContextSnapshot(
                    app_state=runtime.ctx.app_state,
                    update_counter=runtime.ctx.update_counter,
                    response_counter=runtime.ctx.response_counter,
                    stamped_at=self.sim.now,
                    epoch=runtime.ctx.epoch,
                )
                if live.freshness_key() > best.freshness_key():
                    best = live
            backup = self.backups.get(session_id)
            if backup is not None and self._backup_units.get(session_id) == unit:
                effective = backup.effective(app.apply_update)
                if effective.freshness_key() > best.freshness_key():
                    best = effective
            if best is not record.snapshot:
                dump[session_id] = replace(record, snapshot=best)
        return dump

    def _begin_exchange(self, unit: str, view: GroupView) -> None:
        self._exchanges[unit] = {"key": view.view_key, "received": {}}
        self.daemon.mcast(
            content_group(unit),
            StateExchange(
                unit_id=unit,
                view_key=view.view_key,
                sender=self.server_id,
                db_snapshot=self._exchange_snapshot(unit),
            ),
            size=2 + len(self.unit_dbs[unit]),
        )
        self.counters["exchanges_started"] += 1
        self._chaos_hook("mid-exchange")

    def _on_state_exchange(self, message: StateExchange) -> None:
        unit = message.unit_id
        exchange = self._exchanges.get(unit)
        view = self._content_views.get(unit)
        if view is None:
            return
        if message.view_key == view.view_key and (
            exchange is None or exchange["key"] != message.view_key
        ):
            # Another member decided this view needs an exchange (members
            # that took different view paths to the same configuration can
            # disagree about joiners): participation is contagious, so the
            # exchange always completes rather than hanging on the members
            # that saw no reason to start one.
            self._begin_exchange(unit, view)
            exchange = self._exchanges[unit]
        if exchange is None or message.view_key != exchange["key"]:
            return
        exchange["received"][message.sender] = message.db_snapshot
        if not set(view.members) <= set(exchange["received"]):
            return
        dumps = [exchange["received"][m] for m in sorted(view.members, key=str)]
        merged = UnitDatabase.merge(unit, dumps)
        self.unit_dbs[unit] = merged
        del self._exchanges[unit]
        allocation = allocate_sessions(
            merged,
            view.members,
            self.policy.num_backups,
            rebalance=True,
            prefer_backups=self.policy.prefer_backup_promotion,
        )
        self._apply_allocation(unit, view, allocation, cause="join")
        self.counters["join_rebalances"] += 1

    def _apply_allocation(
        self, unit: str, view: GroupView, allocation: dict, cause: str
    ) -> None:
        db = self.unit_dbs[unit]
        members = set(view.members)
        for session_id, (primary, backups) in allocation.items():
            record = db.get(session_id)
            if record is None:
                continue
            old_primary = record.primary
            db.set_allocation(session_id, primary, backups)

            if primary == self.server_id and session_id not in self.primaries:
                controlled = (
                    old_primary is not None
                    and old_primary in members
                    and old_primary != self.server_id
                )
                if session_id in self.backups:
                    app = self.applications[unit]
                    snapshot = self.backups[session_id].effective(app.apply_update)
                    # a state-exchange merge may know more than this
                    # member's own backup log (another member's updates)
                    if record.snapshot.freshness_key() > snapshot.freshness_key():
                        snapshot = record.snapshot
                    self.backups.pop(session_id, None)
                    self._backup_units.pop(session_id, None)
                else:
                    snapshot = record.snapshot
                self._start_primary(
                    session_id,
                    unit,
                    record.client_id,
                    snapshot,
                    uncertain=not controlled,
                    await_handoff=controlled,
                )
            elif primary == self.server_id and session_id in self.primaries:
                # Kept the role through a view change — but the merged
                # record may carry updates this primary never saw (they
                # were delivered only inside a configuration a view
                # briefly excluded this member from).  The freshest
                # context wins the merge, so adopt it; the session would
                # otherwise silently lose an acknowledged update.
                runtime = self.primaries[session_id]
                if self._adopt_snapshot(runtime, record.snapshot):
                    self.counters["merge_adoptions"] += 1
                    self._arm_response_timer(session_id)
            elif primary != self.server_id and session_id in self.primaries:
                self._stop_primary(session_id, successor=primary)

            if (
                self.server_id in backups
                and session_id not in self.backups
                and primary != self.server_id
            ):
                self._start_backup(session_id, unit, record.snapshot)
            elif (
                self.server_id in backups
                and session_id in self.backups
                and primary != self.server_id
            ):
                # freshness-guarded: a no-op unless the merge knew more
                self.backups[session_id].rebase(record.snapshot)
            elif self.server_id not in backups and session_id in self.backups:
                self._stop_backup(session_id)


__all__ = ["CRASH_HOOKS", "FrameworkServer"]
