"""Cluster builder: wires the simulator, network, servers, placement and
clients into a runnable service deployment.

This is the entry point examples, tests and experiments use::

    cluster = ServiceCluster.build(
        n_servers=4,
        units={"movie-1": vod_app},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=0.5),
        seed=7,
    )
    client = cluster.add_client("c0")
    cluster.run(1.0)
    handle = client.start_session("movie-1")
    cluster.run(60.0)
"""

from __future__ import annotations

from typing import Iterable

from repro.core.application import ServiceApplication
from repro.core.client import ServiceClient
from repro.core.config import AvailabilityPolicy
from repro.core.server import FrameworkServer
from repro.core.wire import content_group
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, lan_latency, wan_latency
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology
from repro.sim.trace import TraceLog


def place_units(
    unit_ids: list[str], server_ids: list[str], replication: int
) -> dict[str, list[str]]:
    """Round-robin partial replication: unit *i* lives on ``replication``
    consecutive servers starting at ``i`` (mod cluster size).  Partial, not
    total, replication — as the paper requires."""
    replication = min(replication, len(server_ids))
    placement: dict[str, list[str]] = {}
    for index, unit in enumerate(sorted(unit_ids)):
        placement[unit] = [
            server_ids[(index + k) % len(server_ids)] for k in range(replication)
        ]
    return placement


class ServiceCluster:
    """A complete simulated deployment of the framework."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        servers: dict[str, FrameworkServer],
        placement: dict[str, list[str]],
        policy: AvailabilityPolicy,
        settings: GcsSettings,
        rngs: RngRegistry,
        monitor: SpecMonitor,
    ) -> None:
        self.sim = sim
        self.network = network
        self.servers = servers
        self.placement = placement
        self.policy = policy
        self.settings = settings
        self.rngs = rngs
        self.monitor = monitor
        self.clients: dict[str, ServiceClient] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        n_servers: int,
        units: dict[str, ServiceApplication],
        replication: int = 2,
        policy: AvailabilityPolicy | None = None,
        settings: GcsSettings | None = None,
        seed: int = 0,
        latency: str = "lan",
        trace: bool = True,
        placement: dict[str, list[str]] | None = None,
        loss_probability: float = 0.0,
    ) -> "ServiceCluster":
        """Build a cluster of ``n_servers`` hosting ``units``.

        ``latency`` is ``"lan"``, ``"wan"`` or ``"zero"``; GCS timeouts are
        left at their LAN defaults unless explicit ``settings`` are given.
        ``loss_probability`` drops that fraction of network messages
        uniformly (the GCS recovers ordered traffic via NACKs; raw
        point-to-point responses are simply lost, as on a real UDP path).
        """
        policy = policy or AvailabilityPolicy()
        settings = settings or GcsSettings()
        rngs = RngRegistry(seed)
        sim = Simulator()
        trace_log = TraceLog(enabled=trace)
        if latency == "lan":
            model = lan_latency(rngs.stream("latency"))
        elif latency == "wan":
            model = wan_latency(rngs.stream("latency"))
        else:
            model = FixedLatency(0.0005)
        network = Network(
            sim,
            Topology(),
            model,
            trace=trace_log,
            loss_probability=loss_probability,
            loss_rng=rngs.stream("loss") if loss_probability > 0 else None,
            # dedicated stream so chaos adversity (duplication/reordering)
            # never perturbs the latency/loss draws of existing experiments
            chaos_rng=rngs.stream("chaos-net"),
        )
        monitor = SpecMonitor()

        server_ids = [f"s{i}" for i in range(n_servers)]
        if placement is None:
            placement = place_units(list(units), server_ids, replication)
        catalog = {unit: content_group(unit) for unit in units}

        servers: dict[str, FrameworkServer] = {}
        for server_id in server_ids:
            hosted = [u for u, hosts in placement.items() if server_id in hosts]
            servers[server_id] = FrameworkServer(
                server_id=server_id,
                network=network,
                world=server_ids,
                hosted_units=hosted,
                applications={u: units[u] for u in hosted},
                catalog=catalog,
                policy=policy,
                settings=settings,
                monitor=monitor,
            )
        cluster = ServiceCluster(
            sim=sim,
            network=network,
            servers=servers,
            placement=placement,
            policy=policy,
            settings=settings,
            rngs=rngs,
            monitor=monitor,
        )
        for server in servers.values():
            server.start()
        return cluster

    def spawn_server(
        self,
        server_id: str,
        hosted_units: list[str] | None = None,
        applications: dict[str, ServiceApplication] | None = None,
    ) -> FrameworkServer:
        """Bring a brand-new server into the running service.

        This is the mechanism behind the paper's availability-management
        future work ([Mishra & Pang 1999]): when the manager decides more
        capacity or replication is needed, a fresh server joins the
        world, starts heartbeating, and the join-type view change absorbs
        it (state exchange + rebalance) with no client involvement.

        ``hosted_units`` defaults to every unit in the service (full
        replication on the newcomer); ``applications`` defaults to reusing
        the existing servers' application instances.
        """
        if server_id in self.servers:
            raise ValueError(f"server id {server_id!r} already exists")
        if hosted_units is None:
            hosted_units = sorted(self.placement)
        if applications is None:
            applications = {}
            for unit in hosted_units:
                host = self.placement[unit][0]
                applications[unit] = self.servers[host].applications[unit]
        catalog = {unit: content_group(unit) for unit in self.placement}
        world = sorted(self.servers) + [server_id]
        server = FrameworkServer(
            server_id=server_id,
            network=self.network,
            world=world,
            hosted_units=hosted_units,
            applications=applications,
            catalog=catalog,
            policy=self.policy,
            settings=self.settings,
            monitor=self.monitor,
        )
        # existing daemons must learn to heartbeat the newcomer
        for existing in self.servers.values():
            if server_id not in existing.daemon.world:
                existing.daemon.world.append(server_id)
        self.servers[server_id] = server
        for unit in hosted_units:
            self.placement.setdefault(unit, [])
            if server_id not in self.placement[unit]:
                self.placement[unit].append(server_id)
        server.start()
        return server

    def add_client(self, client_id: str) -> ServiceClient:
        client = ServiceClient(
            client_id,
            self.network,
            contact_servers=sorted(self.servers),
            settings=self.settings,
            response_log_cap=self.policy.response_log_cap,
        )
        client.start()
        self.clients[client_id] = client
        return client

    # ------------------------------------------------------------------
    # running and fault control
    # ------------------------------------------------------------------
    def run(self, duration: float, max_events: int | None = 20_000_000) -> None:
        self.sim.run_until(self.sim.now + duration, max_events=max_events)

    def settle(self) -> None:
        """Let membership and allocations converge after startup/faults."""
        self.run(3.0)

    def crash_server(self, server_id: str) -> None:
        self.servers[server_id].crash()

    def recover_server(self, server_id: str) -> None:
        self.servers[server_id].recover()

    def partition(self, *components: Iterable[str]) -> None:
        self.network.topology.partition(*components)

    def heal(self) -> None:
        self.network.topology.heal_partition()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def live_servers(self) -> list[str]:
        return [sid for sid, server in self.servers.items() if server.is_up()]

    def hosts_of(self, unit_id: str) -> list[str]:
        return list(self.placement[unit_id])

    def primaries_of(self, session_id: str) -> list[str]:
        """All live servers currently claiming the primary role for the
        session (the unique-primary design goal says this should be one)."""
        return [
            server_id
            for server_id, server in self.servers.items()
            if server.is_up() and session_id in server.primary_sessions()
        ]

    def trace_log(self) -> TraceLog:
        return self.network.trace


__all__ = ["ServiceCluster", "place_units"]
