"""Replicated state machine for shared content updates.

The paper's conclusion names this extension explicitly: "integrate into
the design a mechanism for consistently updating the state that is shared
between clients, using the well-known replicated state machine technique
[Schneider 1990]".

Implementation: a :class:`ReplicatedStateMachine` rides on the content
group's totally ordered multicast.  Commands multicast to the group are
applied by every replica in the same (total) order to a deterministic
``apply`` function, so replicas stay identical; virtual synchrony plus a
state transfer on join-type view changes re-synchronizes newcomers.  This
is exactly the classical construction of state machine replication over
view-synchronous group communication.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable

from repro.gcs.daemon import GcsDaemon
from repro.gcs.view import GroupView


@dataclass(frozen=True)
class Command:
    """One state-machine command (opaque to the framework)."""

    op: Any


@dataclass(frozen=True)
class _RsmTransfer:
    """State transfer for members that joined the group mid-life."""

    group: str
    view_key: tuple
    applied: int
    state: Any


class ReplicatedStateMachine:
    """A deterministic state machine replicated over one group.

    Args:
        daemon: the hosting GCS daemon (the machine joins ``group`` on it).
        group: the group carrying commands (e.g. the content group).
        initial: initial state (deep-copied per replica).
        apply_fn: ``(state, op) -> state`` — MUST be deterministic.

    Use :meth:`submit` to issue a command; read :attr:`state` (do not
    mutate it).  ``applied_count`` counts commands applied, which together
    with determinism makes replica equality checkable in tests.

    The machine multiplexes on the daemon's group traffic: the hosting
    application forwards relevant callbacks via :meth:`on_group_message`
    and :meth:`on_group_view`.
    """

    def __init__(
        self,
        daemon: GcsDaemon,
        group: str,
        initial: Any,
        apply_fn: Callable[[Any, Any], Any],
    ) -> None:
        self.daemon = daemon
        self.group = group
        self.state = copy.deepcopy(initial)
        self.apply_fn = apply_fn
        self.applied_count = 0
        self._last_view: GroupView | None = None
        self._synced = True

    # ------------------------------------------------------------------
    # issuing commands
    # ------------------------------------------------------------------
    def submit(self, op: Any) -> None:
        """Multicast a command; it applies everywhere in total order
        (including here, when delivered)."""
        self.daemon.mcast(self.group, Command(op=op), size=2)

    # ------------------------------------------------------------------
    # plumbing: the host forwards group events here
    # ------------------------------------------------------------------
    def on_group_message(self, payload: Any) -> bool:
        """Returns True when the payload belonged to the state machine."""
        if isinstance(payload, Command):
            if self._synced:
                self.state = self.apply_fn(self.state, payload.op)
                self.applied_count += 1
            return True
        if isinstance(payload, _RsmTransfer):
            self._on_transfer(payload)
            return True
        return False

    def on_group_view(self, view: GroupView) -> None:
        previous = self._last_view
        self._last_view = view
        if previous is None and len(view.members) > 1:
            # We just joined an existing group: wait for a state transfer.
            self._synced = False
        joiners = (
            set(view.members) - set(previous.members) if previous is not None else set()
        )
        if joiners and self._synced:
            # The senior member ships the state to everyone (totally
            # ordered, so all replicas adopt the same transfer point).
            senior = min(
                (m for m in view.members if m not in joiners),
                default=None,
                key=str,
            )
            if senior == self.daemon.node_id:
                self.daemon.mcast(
                    self.group,
                    _RsmTransfer(
                        group=self.group,
                        view_key=view.view_key,
                        applied=self.applied_count,
                        state=copy.deepcopy(self.state),
                    ),
                    size=4,
                )

    def _on_transfer(self, transfer: _RsmTransfer) -> None:
        if transfer.applied >= self.applied_count or not self._synced:
            self.state = copy.deepcopy(transfer.state)
            self.applied_count = transfer.applied
            self._synced = True


__all__ = ["Command", "ReplicatedStateMachine"]
