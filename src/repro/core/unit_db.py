"""The replicated unit database (Section 3.1).

One :class:`UnitDatabase` instance exists per content unit per server.
It "keeps track of the sessions that exist for a particular content unit,
the allocation of servers to these sessions, and session context
information as periodically propagated by each primary."

Consistency is inherited from the GCS: every mutation is driven either by
a totally ordered content-group message or by an agreed view event, and
every mutator is deterministic — so all members of the content group hold
identical databases at equivalent points of the total order (the property
Section 3.4 uses to reallocate without extra communication).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.context import ContextSnapshot
from repro.sim.topology import NodeId


@dataclass(frozen=True)
class SessionRecord:
    """One session's entry in the unit database."""

    session_id: str
    client_id: NodeId
    unit_id: str
    params: object
    primary: NodeId | None
    backups: tuple[NodeId, ...]
    snapshot: ContextSnapshot

    def allocation(self) -> tuple[NodeId | None, tuple[NodeId, ...]]:
        return self.primary, self.backups


class UnitDatabase:
    """Sessions, allocations, and propagated contexts of one content unit."""

    def __init__(self, unit_id: str) -> None:
        self.unit_id = unit_id
        self._sessions: dict[str, SessionRecord] = {}

    # ------------------------------------------------------------------
    # mutations (must only be called from deterministic, agreed contexts)
    # ------------------------------------------------------------------
    def add_session(
        self,
        session_id: str,
        client_id: NodeId,
        params: object,
        snapshot: ContextSnapshot,
    ) -> SessionRecord:
        record = SessionRecord(
            session_id=session_id,
            client_id=client_id,
            unit_id=self.unit_id,
            params=params,
            primary=None,
            backups=(),
            snapshot=snapshot,
        )
        self._sessions[session_id] = record
        return record

    def remove_session(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def set_allocation(
        self, session_id: str, primary: NodeId | None, backups: tuple[NodeId, ...]
    ) -> None:
        record = self._sessions.get(session_id)
        if record is None:
            return
        self._sessions[session_id] = replace(
            record, primary=primary, backups=tuple(backups)
        )

    def apply_propagation(self, session_id: str, snapshot: ContextSnapshot) -> bool:
        """Adopt a propagated snapshot if it is fresher; returns whether
        the database changed."""
        record = self._sessions.get(session_id)
        if record is None:
            return False
        if snapshot.freshness_key() <= record.snapshot.freshness_key():
            return False
        self._sessions[session_id] = replace(record, snapshot=snapshot)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, session_id: str) -> SessionRecord | None:
        return self._sessions.get(session_id)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def session_ids(self) -> list[str]:
        """All session ids, sorted — iteration order is part of the
        deterministic-allocation contract."""
        return sorted(self._sessions)

    def records(self) -> list[SessionRecord]:
        return [self._sessions[sid] for sid in self.session_ids()]

    def load_of(self, server: NodeId, backup_weight: float = 0.25) -> float:
        """A server's load: primaries count 1, backups ``backup_weight``
        (backups only record updates; the paper notes their work is
        'merely receiving and recording')."""
        load = 0.0
        for record in self._sessions.values():
            if record.primary == server:
                load += 1.0
            elif server in record.backups:
                load += backup_weight
        return load

    def sessions_of_primary(self, server: NodeId) -> list[str]:
        return [
            sid
            for sid in self.session_ids()
            if self._sessions[sid].primary == server
        ]

    # ------------------------------------------------------------------
    # state exchange (join-type view changes, Section 3.4)
    # ------------------------------------------------------------------
    def snapshot_for_exchange(self) -> dict:
        """A picklable dump sent in a :class:`~repro.core.wire.StateExchange`."""
        return {sid: record for sid, record in self._sessions.items()}

    @staticmethod
    def merge(unit_id: str, dumps: list[dict]) -> "UnitDatabase":
        """Deterministically merge exchanged databases.

        Per session, the record with the freshest snapshot wins (epoch,
        then update counter, then response counter; ties broken by the
        record's primary id for full determinism).  Allocations are *not*
        merged — the caller recomputes them for the new view.
        """
        merged = UnitDatabase(unit_id)
        best: dict[str, SessionRecord] = {}
        for dump in dumps:
            for session_id, record in dump.items():
                current = best.get(session_id)
                if current is None:
                    best[session_id] = record
                    continue
                key_new = (record.snapshot.freshness_key(), str(record.primary))
                key_old = (current.snapshot.freshness_key(), str(current.primary))
                if key_new > key_old:
                    best[session_id] = record
        merged._sessions = dict(best)
        return merged

    def equals(self, other: "UnitDatabase") -> bool:
        """Structural equality — used by the replica-consistency tests."""
        if self.session_ids() != other.session_ids():
            return False
        for session_id in self.session_ids():
            a = self._sessions[session_id]
            b = other._sessions[session_id]
            if (a.primary, a.backups) != (b.primary, b.backups):
                return False
            if a.snapshot.freshness_key() != b.snapshot.freshness_key():
                return False
        return True


__all__ = ["SessionRecord", "UnitDatabase"]
