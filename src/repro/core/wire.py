"""Framework-level message payloads.

These ride inside GCS multicasts (ordered) or point-to-point sends
(responses, handoffs), mirroring Section 3.3/3.4 of the paper:

* clients address the **service group** to discover content units,
* a **content group** to start a session,
* the **session group** for everything else;
* only the primary answers, point-to-point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.context import ContextDelta, ContextSnapshot
from repro.sim.topology import NodeId


def service_group() -> str:
    """The service group's well-known name (clients know it a priori)."""
    return "svc"


def content_group(unit_id: str) -> str:
    return f"content:{unit_id}"


def session_group(session_id: str) -> str:
    """Session group names are computed deterministically from the session
    id, as in the paper ('the group name is computed deterministically by
    each of the servers')."""
    return f"session:{session_id}"


# ---------------------------------------------------------------------------
# client -> service group
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ListUnitsRequest:
    client_id: NodeId


@dataclass(frozen=True)
class UnitList:
    """Reply: available units and the content group name for each."""

    units: tuple[tuple[str, str], ...]  # (unit_id, content group name)


# ---------------------------------------------------------------------------
# client -> content group
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StartSession:
    client_id: NodeId
    session_id: str
    unit_id: str
    params: Any = None


@dataclass(frozen=True)
class SessionStarted:
    """Primary -> client: your session group is ready."""

    session_id: str
    session_group: str
    primary: NodeId


@dataclass(frozen=True)
class SessionDenied:
    session_id: str
    reason: str


# ---------------------------------------------------------------------------
# client -> session group
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContextUpdate:
    session_id: str
    counter: int
    update: Any


@dataclass(frozen=True)
class EndSession:
    session_id: str


# ---------------------------------------------------------------------------
# server -> server (through groups)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Propagate:
    """Primary -> content group: periodic context propagation.

    Carries either a full ``snapshot`` or an incremental ``delta``
    (exactly one is set).  Deltas ship only the app-state fields changed
    since the previous propagation epoch; a receiver whose record is not
    at the delta's base epoch ignores it and is repaired by the next full
    snapshot (the primary sends one on view changes and at least every
    ``AvailabilityPolicy.full_propagation_every`` propagations).

    ``size_estimate`` is the real wire cost of whichever form is carried,
    so the load accounting prices the propagation-frequency knob by what
    actually crosses the wire."""

    session_id: str
    unit_id: str
    snapshot: ContextSnapshot | None = None
    delta: ContextDelta | None = None

    @property
    def size_estimate(self) -> int:
        body = self.snapshot if self.snapshot is not None else self.delta
        return body.size_estimate


@dataclass(frozen=True)
class SessionEnded:
    """Primary -> content group: drop the session from the unit database."""

    session_id: str
    unit_id: str


@dataclass(frozen=True)
class RebalanceRequest:
    """Anyone -> content group: re-run the deterministic rebalance now.

    The paper's preemptive migration ("the primary server of an on-going
    session may have to change ... preemptively for load balancing
    purposes"): because the request is totally ordered and the unit
    databases are identical, every member computes the same new
    allocation with no further communication; displaced primaries hand
    their exact contexts to their successors."""

    unit_id: str


@dataclass(frozen=True)
class StateExchange:
    """Member -> content group after a join-type view change: my unit
    database, so the merged state can be rebuilt deterministically."""

    unit_id: str
    view_key: tuple
    sender: NodeId
    db_snapshot: dict


# ---------------------------------------------------------------------------
# server -> server / client (point-to-point)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Handoff:
    """Old primary -> new primary during a controlled migration: the exact
    up-to-date context (no uncertainty window)."""

    session_id: str
    unit_id: str
    snapshot: ContextSnapshot


@dataclass(frozen=True)
class ResponseMsg:
    """Primary -> client: one response.

    ``index`` is the application-level position (e.g. frame number), used
    by the client audit to detect duplicates and gaps; ``based_on_update``
    is the context update counter the response was generated under, used
    to detect responses based on stale context; ``uncertain`` marks
    retransmissions from a failover's uncertainty window.
    """

    session_id: str
    index: int
    klass: str
    body: Any
    based_on_update: int
    uncertain: bool = False
    size: int = 1


__all__ = [
    "ContextUpdate",
    "RebalanceRequest",
    "EndSession",
    "Handoff",
    "ListUnitsRequest",
    "Propagate",
    "ResponseMsg",
    "SessionDenied",
    "SessionEnded",
    "SessionStarted",
    "StartSession",
    "StateExchange",
    "UnitList",
    "content_group",
    "service_group",
    "session_group",
]
