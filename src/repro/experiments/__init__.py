"""The experiment suite: one module per quantified paper claim.

Every experiment exposes ``run(seed=0, fast=False) -> list[Table]``;
``fast=True`` shrinks sweeps and durations for CI.  ``runner`` executes
everything and prints the full report (the material EXPERIMENTS.md
records).  Benchmarks in ``benchmarks/`` wrap each experiment for
``pytest-benchmark``.

Experiment modules are imported lazily (``get_experiments``) so that
importing one experiment never drags in the whole suite.
"""

import importlib

EXPERIMENT_MODULES = {
    "E1": "repro.experiments.e1_context_loss",
    "E2": "repro.experiments.e2_load_tradeoff",
    "E3": "repro.experiments.e3_primary_uniqueness",
    "E4": "repro.experiments.e4_failover_duplicates",
    "E5": "repro.experiments.e5_replication_degree",
    "E6": "repro.experiments.e6_takeover_latency",
    "E7": "repro.experiments.e7_baseline_comparison",
    "E8": "repro.experiments.e8_load_balance",
    "E9": "repro.experiments.e9_uncertainty_policy",
    "E10": "repro.experiments.e10_extensions",
    "E11": "repro.experiments.e11_ablations",
}


def get_experiment(name: str):
    """Import and return one experiment module by id (e.g. "E1")."""
    return importlib.import_module(EXPERIMENT_MODULES[name])


def get_experiments() -> dict:
    """Import and return all experiment modules keyed by id."""
    return {name: get_experiment(name) for name in EXPERIMENT_MODULES}


__all__ = ["EXPERIMENT_MODULES", "get_experiment", "get_experiments"]
