"""Shared experiment machinery.

Provides the :class:`LedgerApplication` — a minimal service whose session
state is the *set of update counters received*, making per-update loss
directly observable — plus world builders and measurement helpers used by
several experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.core.application import RequestResponseApplication
from repro.services.content import build_movie
from repro.services.vod import VodApplication


@dataclass(frozen=True)
class LedgerState:
    """The set of update counters this session has absorbed."""

    unit_id: str
    counters: frozenset[int] = frozenset()


class LedgerApplication(RequestResponseApplication):
    """A diagnostic service: every update ``{"counter": c}`` is recorded in
    the context.  A counter the client sent but no surviving context holds
    is *exactly* one lost context update — the Section-4 event."""

    def initial_state(self, unit_id: str, params: Any) -> LedgerState:
        return LedgerState(unit_id=unit_id)

    def apply_update(self, state: LedgerState, update: Any) -> LedgerState:
        counter = update.get("counter")
        if counter is None:
            return state
        return replace(state, counters=state.counters | {int(counter)})

    def respond_to_update(self, state, update):
        return state, []


def surviving_counters(cluster, session_id: str) -> frozenset[int]:
    """The counters present in the session's *current serving context*
    (the live primary's), falling back to the freshest surviving backup or
    unit-database record when no primary exists."""
    for server in cluster.servers.values():
        if not server.is_up():
            continue
        runtime = server.primaries.get(session_id)
        if runtime is not None:
            return runtime.ctx.app_state.counters
    best: frozenset[int] = frozenset()
    best_key = None
    for server in cluster.servers.values():
        if not server.is_up():
            continue
        backup = server.backups.get(session_id)
        if backup is not None:
            app = server.applications[backup.base.app_state.unit_id]
            effective = backup.effective(app.apply_update)
            key = effective.freshness_key()
            if best_key is None or key > best_key:
                best, best_key = effective.app_state.counters, key
        for db in server.unit_dbs.values():
            record = db.get(session_id)
            if record is not None:
                key = record.snapshot.freshness_key()
                if best_key is None or key > best_key:
                    best, best_key = record.snapshot.app_state.counters, key
    return best


def ledger_cluster(
    n_servers: int,
    num_backups: int,
    propagation_period: float,
    seed: int,
    replication: int | None = None,
    n_units: int = 1,
) -> ServiceCluster:
    app = LedgerApplication()
    units = {f"ledger-{i}": app for i in range(n_units)}
    cluster = ServiceCluster.build(
        n_servers=n_servers,
        units=units,
        replication=replication if replication is not None else n_servers,
        policy=AvailabilityPolicy(
            num_backups=num_backups, propagation_period=propagation_period
        ),
        seed=seed,
        trace=False,
    )
    cluster.settle()
    return cluster


def vod_cluster(
    n_servers: int,
    num_backups: int,
    propagation_period: float,
    seed: int,
    frame_rate: float = 10.0,
    movie_seconds: float = 600.0,
    replication: int | None = None,
    n_movies: int = 1,
    uncertainty_policy=None,
    trace: bool = True,
) -> ServiceCluster:
    movies = {
        f"m{i}": build_movie(f"m{i}", duration_seconds=movie_seconds, frame_rate=frame_rate)
        for i in range(n_movies)
    }
    app = VodApplication(movies)
    kwargs = {
        "num_backups": num_backups,
        "propagation_period": propagation_period,
    }
    if uncertainty_policy is not None:
        kwargs["uncertainty_policy"] = uncertainty_policy
    cluster = ServiceCluster.build(
        n_servers=n_servers,
        units={unit: app for unit in movies},
        replication=replication if replication is not None else n_servers,
        policy=AvailabilityPolicy(**kwargs),
        seed=seed,
        trace=trace,
    )
    cluster.settle()
    return cluster


def send_updates_periodically(
    cluster: ServiceCluster,
    client,
    handle,
    period: float,
    duration: float,
    make_update,
) -> None:
    """Schedule ``make_update(k)`` sends every ``period`` for ``duration``."""
    count = int(duration / period)
    for k in range(count):
        at = cluster.sim.now + (k + 1) * period

        def send(k=k):
            if client.is_up():
                client.send_update(handle, make_update(k))

        cluster.sim.schedule_at(at, send)


def rng_for(seed: int, name: str) -> np.random.Generator:
    from repro.sim.rng import RngRegistry

    return RngRegistry(seed).stream(name)


__all__ = [
    "LedgerApplication",
    "LedgerState",
    "ledger_cluster",
    "rng_for",
    "send_updates_periodically",
    "surviving_counters",
    "vod_cluster",
]
