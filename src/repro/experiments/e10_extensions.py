"""E10 — the paper's future-work extensions, implemented and measured.

(a) Replicated state machine for shared content updates (Section 5 /
    [Schneider 1990]): concurrent content updates from several servers
    must leave all replicas identical, across crashes and rejoins.

(b) Availability manager ([Mishra-Pang 1999]-style): "the user might
    express a desired service quality in terms of a chance of losing a
    context update, and the system could then adjust the needed number of
    backups in each session group."  We table the backup count the
    manager derives for a range of quality targets and failure rates, and
    the analytically achieved loss probability.
"""

from __future__ import annotations

from repro.analysis.availability import context_loss_probability
from repro.core.manager import backups_for_target, period_for_target
from repro.core.statemachine import ReplicatedStateMachine
from repro.metrics.report import Table
from repro.gcs.settings import GcsSettings
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.network import Network
from repro.sim.topology import Topology


class _RsmHost:
    """Minimal GcsApplication hosting one replicated state machine."""

    def __init__(self, daemon, group):
        self.daemon = daemon
        self.rsm = ReplicatedStateMachine(
            daemon, group, initial={}, apply_fn=self._apply
        )

    @staticmethod
    def _apply(state, op):
        key, value = op
        new_state = dict(state)
        new_state[key] = value
        return new_state

    def on_config_view(self, config):
        pass

    def on_group_view(self, view):
        if view.group == self.rsm.group:
            self.rsm.on_group_view(view)

    def on_group_message(self, group, origin, payload, seq):
        if group == self.rsm.group:
            self.rsm.on_group_message(payload)

    def on_ptp(self, sender, payload):
        pass


def _rsm_world(n_daemons: int):
    from repro.gcs.daemon import GcsDaemon

    sim = Simulator()
    network = Network(sim, Topology(), FixedLatency(0.002))
    names = [f"s{i}" for i in range(n_daemons)]
    hosts = {}
    for name in names:
        daemon = GcsDaemon(name, network, world=names, settings=GcsSettings())
        host = _RsmHost(daemon, "content-updates")
        daemon.app = host
        daemon.start()
        hosts[name] = host
    sim.run_until(3.0)
    for host in hosts.values():
        host.daemon.join("content-updates")
    sim.run_until(4.0)
    return sim, hosts


def _rsm_experiment(seed: int, fast: bool) -> Table:
    n_updates = 10 if fast else 40
    sim, hosts = _rsm_world(3)
    names = sorted(hosts)
    # concurrent updates from all three replicas
    for index in range(n_updates):
        origin = hosts[names[index % 3]]
        origin.rsm.submit((f"k{index % 7}", index))
    sim.run_until(sim.now + 3.0)
    states_before = {n: dict(hosts[n].rsm.state) for n in names}
    # crash one replica mid-stream, keep updating, recover, check resync
    hosts[names[2]].daemon.crash()
    sim.run_until(sim.now + 2.0)
    for index in range(n_updates, n_updates + 10):
        hosts[names[0]].rsm.submit((f"k{index % 7}", index))
    sim.run_until(sim.now + 2.0)
    hosts[names[2]].daemon.recover()
    sim.run_until(sim.now + 2.0)
    hosts[names[2]].daemon.join("content-updates")
    sim.run_until(sim.now + 4.0)
    states_after = {n: dict(hosts[n].rsm.state) for n in names}

    table = Table(
        title="E10a: replicated state machine for shared content updates",
        columns=["check", "result"],
    )
    identical_before = len({str(sorted(s.items())) for s in states_before.values()}) == 1
    table.add_row("replicas identical after concurrent updates", identical_before)
    survivors_same = str(sorted(states_after[names[0]].items())) == str(
        sorted(states_after[names[1]].items())
    )
    table.add_row("survivors identical across crash", survivors_same)
    rejoined_same = str(sorted(states_after[names[2]].items())) == str(
        sorted(states_after[names[0]].items())
    )
    table.add_row("rejoined replica state-transferred to match", rejoined_same)
    table.add_row(
        "commands applied at s0", hosts[names[0]].rsm.applied_count
    )
    return table


def _manager_experiment() -> Table:
    table = Table(
        title="E10b: availability manager — target loss -> derived parameters",
        columns=[
            "target_loss",
            "failure_rate",
            "period_s",
            "backups_chosen",
            "achieved_loss",
            "max_period_for_b1",
        ],
    )
    for target in (1e-1, 1e-2, 1e-3, 1e-4):
        for rate in (0.01, 0.1):
            period = 0.5
            backups = backups_for_target(target, rate, period)
            achieved = context_loss_probability(rate, period, backups + 1)
            table.add_row(
                target,
                rate,
                period,
                backups,
                achieved,
                period_for_target(target, rate, num_backups=1),
            )
    table.add_note(
        "the paper's future-work loop: quality target in, session-group "
        "size (and affordable propagation period) out"
    )
    return table


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    return [_rsm_experiment(seed, fast), _manager_experiment()]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
