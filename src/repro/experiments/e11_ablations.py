"""E11 — ablations of the reproduction's design choices.

DESIGN.md §6 documents protocol/framework mechanisms that the paper's
design implies but does not spell out, each added because its absence
measurably lost client context updates under fault churn.  This ablation
turns each one off individually and re-runs the E1-style loss workload,
quantifying its contribution:

* ``no-divergence-detection`` — zombie views go unnoticed (daemons dropped
  from a reformation keep serving a private world);
* ``receipt-acks`` — client multicasts are acknowledged on receipt by the
  contact daemon rather than end-to-end on delivery;
* ``no-backup-preference`` — reallocation picks lightly-loaded servers
  instead of surviving former backups as new primaries;
* ``no-backups`` — the [2] configuration, for scale.
"""

from __future__ import annotations

from repro.analysis.montecarlo import MonteCarlo
from repro.core import AvailabilityPolicy, ServiceCluster
from repro.faults.generators import poisson_crash_schedule
from repro.faults.injector import inject
from repro.gcs.settings import GcsSettings
from repro.metrics.report import Table
from repro.experiments.common import (
    LedgerApplication,
    rng_for,
    send_updates_periodically,
    surviving_counters,
)

FAILURE_RATE = 0.08
MEAN_DOWNTIME = 2.0
UPDATE_PERIOD = 0.3
N_SERVERS = 5
N_SESSIONS = 4

VARIANTS = {
    "full design": dict(),
    "no-divergence-detection": dict(detect_divergence=False),
    "receipt-acks": dict(end_to_end_client_acks=False),
    "no-backup-preference": dict(prefer_backup_promotion=False),
    "no-backups": dict(num_backups=0),
}


def _one_rep(seed: int, variant: dict, duration: float) -> dict:
    settings = GcsSettings(
        detect_divergence=variant.get("detect_divergence", True),
        end_to_end_client_acks=variant.get("end_to_end_client_acks", True),
    )
    policy = AvailabilityPolicy(
        num_backups=variant.get("num_backups", 2),
        propagation_period=0.5,
        prefer_backup_promotion=variant.get("prefer_backup_promotion", True),
    )
    cluster = ServiceCluster.build(
        n_servers=N_SERVERS,
        units={"ledger-0": LedgerApplication()},
        replication=N_SERVERS,
        policy=policy,
        settings=settings,
        seed=seed,
        trace=False,
    )
    cluster.settle()
    clients, handles = [], []
    for index in range(N_SESSIONS):
        client = cluster.add_client(f"c{index}")
        handles.append(client.start_session("ledger-0"))
        clients.append(client)
    cluster.run(2.0)
    rng = rng_for(seed, "e11-faults")
    schedule = poisson_crash_schedule(
        rng,
        servers=sorted(cluster.servers),
        duration=duration,
        failure_rate=FAILURE_RATE,
        mean_downtime=MEAN_DOWNTIME,
        spare="s4",
    )
    inject(cluster, schedule)
    for client, handle in zip(clients, handles):
        send_updates_periodically(
            cluster, client, handle, UPDATE_PERIOD, duration,
            lambda k: {"counter": k + 1},
        )
    cluster.run(duration + 1.0)
    for server_id in list(cluster.servers):
        if not cluster.servers[server_id].is_up():
            cluster.recover_server(server_id)
    cluster.run(8.0)
    sent = 0
    lost = 0
    for handle in handles:
        failed = set(handle.failed_update_counters)
        sent_counters = {c for _, c, _ in handle.updates_sent} - failed
        survived = surviving_counters(cluster, handle.session_id)
        sent += len(sent_counters)
        lost += len(sent_counters - survived)
    return {"sent": sent, "lost": lost}


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    duration = 12.0 if fast else 40.0
    reps = 2 if fast else 4
    names = (
        ["full design", "no-divergence-detection", "no-backups"]
        if fast
        else list(VARIANTS)
    )
    table = Table(
        title="E11: design-choice ablations (context-update loss under churn)",
        columns=["variant", "updates_sent", "updates_lost", "loss_fraction"],
    )
    for name in names:
        variant = VARIANTS[name]
        mc = MonteCarlo(
            fn=lambda s, v=variant: _one_rep(s, v, duration),
            n_reps=reps,
            base_seed=seed,
        ).run()
        sent = sum(mc.values("sent"))
        lost = sum(mc.values("lost"))
        table.add_row(name, sent, lost, lost / max(1, sent))
    table.add_note(
        "each row disables exactly one mechanism relative to the full "
        "design (same seeds, same fault schedules); num_backups=2 except "
        "the no-backups row"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
