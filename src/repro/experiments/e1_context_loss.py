"""E1 — probability of losing client context updates.

Paper claim (Section 4): "The probability of losing context updates sent
by the client is the chance of every session group member failing or
separating from the client during the period between propagations.  Thus
this probability decreases as either the propagation frequency or the size
of the session group rise."

Method: sessions run the ledger application (context = set of update
counters), clients send updates at a fixed rate, servers crash and recover
as independent Poisson processes (one spare server never crashes, keeping
the unit database alive so losses are attributable to session-group
failure windows rather than total service loss — that scenario is E5).
After the fault window ends and everything recovers, the set difference
between sent and surviving counters is the measured loss.  The analytic
model ``(1 - exp(-lambda*T))**(1+b)`` is printed alongside.
"""

from __future__ import annotations

from repro.analysis.availability import context_loss_probability
from repro.analysis.montecarlo import MonteCarlo
from repro.faults.generators import poisson_crash_schedule
from repro.faults.injector import inject
from repro.metrics.report import Table
from repro.experiments.common import (
    ledger_cluster,
    rng_for,
    send_updates_periodically,
    surviving_counters,
)

FAILURE_RATE = 0.04  # crashes / second / server (accelerated, see DESIGN.md)
MEAN_DOWNTIME = 3.0
UPDATE_PERIOD = 0.25
N_SERVERS = 5
N_SESSIONS = 4
SPARE = "s4"


def _one_rep(seed: int, num_backups: int, period: float, duration: float):
    cluster = ledger_cluster(
        n_servers=N_SERVERS,
        num_backups=num_backups,
        propagation_period=period,
        seed=seed,
    )
    clients = []
    handles = []
    for index in range(N_SESSIONS):
        client = cluster.add_client(f"c{index}")
        handle = client.start_session("ledger-0")
        clients.append(client)
        handles.append(handle)
    cluster.run(2.0)

    rng = rng_for(seed, "e1-faults")
    schedule = poisson_crash_schedule(
        rng,
        servers=sorted(cluster.servers),
        duration=duration,
        failure_rate=FAILURE_RATE,
        mean_downtime=MEAN_DOWNTIME,
        spare=SPARE,
    )
    inject(cluster, schedule)
    for client, handle in zip(clients, handles):
        send_updates_periodically(
            cluster,
            client,
            handle,
            period=UPDATE_PERIOD,
            duration=duration,
            make_update=lambda k: {"counter": k + 1},
        )
    cluster.run(duration + 1.0)
    # quiesce: recover everyone, let state merge back
    for server_id in list(cluster.servers):
        if not cluster.servers[server_id].is_up():
            cluster.recover_server(server_id)
    cluster.run(8.0)

    sent = 0
    lost = 0
    for handle in handles:
        failed = set(handle.failed_update_counters)
        sent_counters = {c for _, c, _ in handle.updates_sent} - failed
        survived = surviving_counters(cluster, handle.session_id)
        sent += len(sent_counters)
        lost += len(sent_counters - survived)
    # the cost half of the tradeoff: wire bytes of propagation traffic
    # each server processed per second (delta accounting — incremental
    # propagations ship only changed state fields)
    prop_bytes = sum(
        server.counters["propagation_bytes_processed"]
        for server in cluster.servers.values()
    ) / (len(cluster.servers) * max(cluster.sim.now, 1.0))
    return {
        "sent": sent,
        "lost": lost,
        "loss_fraction": lost / max(1, sent),
        "prop_bytes_s": prop_bytes,
    }


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    backups_grid = [0, 1, 2] if fast else [0, 1, 2, 3]
    period_grid = [0.25, 1.0] if fast else [0.25, 0.5, 1.0, 2.0]
    duration = 12.0 if fast else 80.0
    reps = 2 if fast else 3

    table = Table(
        title="E1: context-update loss vs backups and propagation period",
        columns=[
            "backups",
            "period_s",
            "sent",
            "lost",
            "measured_loss",
            "predicted_loss",
            "prop_bytes_s",
        ],
    )
    for num_backups in backups_grid:
        for period in period_grid:
            mc = MonteCarlo(
                fn=lambda s, b=num_backups, p=period: _one_rep(s, b, p, duration),
                n_reps=reps,
                base_seed=seed + num_backups * 100 + int(period * 10),
            ).run()
            sent = sum(mc.values("sent"))
            lost = sum(mc.values("lost"))
            predicted = context_loss_probability(
                FAILURE_RATE, period, num_backups + 1
            )
            table.add_row(
                num_backups,
                period,
                sent,
                lost,
                lost / max(1, sent),
                predicted,
                sum(mc.values("prop_bytes_s")) / reps,
            )
    table.add_note(
        f"accelerated faults: lambda={FAILURE_RATE}/s/server, "
        f"mttr={MEAN_DOWNTIME}s, updates every {UPDATE_PERIOD}s"
    )
    table.add_note(
        "claim: loss falls as backups rise (down a column-group) and as the "
        "period shrinks (left within a group); prop_bytes_s is what that "
        "frequency costs on the wire (delta-accounted)"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
