"""E2 — the cost side of the tradeoff: per-server load vs parameters.

Paper claim (Section 4): "increasing either of these factors places more
work on each server.  Whenever client database information is propagated,
each server in the content group must process it; when the session groups
become larger, each server is a backup in more groups, and must therefore
receive more client requests (however, the work is merely receiving and
recording the request; only the primary responds)."

Method: a fault-free cluster streams VoD to a fixed session population
while clients send periodic context updates; we count, per server and
second, the propagation messages processed and the client updates received
as backup, sweeping the number of backups and the propagation period.  The
closed-form load model is printed alongside.
"""

from __future__ import annotations

from repro.analysis.availability import per_server_load
from repro.metrics.report import Table
from repro.experiments.common import send_updates_periodically, vod_cluster

N_SERVERS = 4
N_SESSIONS = 8
FRAME_RATE = 10.0
UPDATE_PERIOD = 1.0


def _one_cell(seed: int, num_backups: int, period: float, duration: float):
    cluster = vod_cluster(
        n_servers=N_SERVERS,
        num_backups=num_backups,
        propagation_period=period,
        seed=seed,
        frame_rate=FRAME_RATE,
        movie_seconds=3600,
        trace=False,
    )
    clients = []
    handles = []
    for index in range(N_SESSIONS):
        client = cluster.add_client(f"c{index}")
        handle = client.start_session("m0")
        clients.append(client)
        handles.append(handle)
    cluster.run(3.0)
    # zero counters after warm-up so only steady state is measured
    for server in cluster.servers.values():
        server.counters.clear()
    cluster.network.reset_stats()
    for client, handle in zip(clients, handles):
        send_updates_periodically(
            cluster,
            client,
            handle,
            period=UPDATE_PERIOD,
            duration=duration,
            make_update=lambda k: {"op": "skip", "to": 100 + k},
        )
    cluster.run(duration)

    per_server = []
    for server_id, server in sorted(cluster.servers.items()):
        propagations = server.counters["propagations_processed"] / duration
        backup_updates = server.counters["updates_backup"] / duration
        primary_updates = server.counters["updates_primary"] / duration
        responses = server.counters["responses_sent"] / duration
        # real wire cost of the propagation stream (delta accounting):
        # bytes each member actually processed per second, not message
        # count x assumed-constant size
        prop_bytes = server.counters["propagation_bytes_processed"] / duration
        per_server.append(
            (propagations, backup_updates, primary_updates, responses, prop_bytes)
        )
    n = len(per_server)
    return tuple(sum(values[i] for values in per_server) / n for i in range(5))


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    backups_grid = [0, 2] if fast else [0, 1, 2, 3]
    period_grid = [0.25, 1.0] if fast else [0.1, 0.25, 0.5, 1.0, 2.0]
    duration = 8.0 if fast else 20.0

    table = Table(
        title="E2: per-server load (msgs/s) vs backups and propagation period",
        columns=[
            "backups",
            "period_s",
            "propagations",
            "prop_bytes_s",
            "backup_updates",
            "primary_updates",
            "responses",
            "pred_propagations",
            "pred_backup_updates",
        ],
    )
    for num_backups in backups_grid:
        for period in period_grid:
            (
                propagations,
                backup_updates,
                primary_updates,
                responses,
                prop_bytes,
            ) = _one_cell(seed, num_backups, period, duration)
            predicted = per_server_load(
                n_sessions=N_SESSIONS,
                n_servers=N_SERVERS,
                content_group_size=N_SERVERS,
                propagation_period=period,
                num_backups=num_backups,
                update_rate=1.0 / UPDATE_PERIOD,
                response_rate=FRAME_RATE,
            )
            table.add_row(
                num_backups,
                period,
                propagations,
                prop_bytes,
                backup_updates,
                primary_updates,
                responses,
                predicted["propagation"],
                predicted["backup_updates"],
            )
    table.add_note(
        "claim: propagation processing rises as the period shrinks; backup "
        "update load rises with the number of backups; responses are "
        "unaffected (only the primary responds).  prop_bytes_s is the "
        "delta-accounted wire cost: incremental propagations ship only "
        "changed state fields, so bytes grow far slower than message count "
        "as the period shrinks"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
