"""E3 — the unique-primary design goal under the Section-4 scenarios.

Paper claims (Section 4): "the scenarios which can lead to a client not
having a unique primary server are the following: [view instability];
[every content server crashed/disconnected]; [the session group
partitioned non-transitively, with two partitions each seeing the client]
... very unlikely in a LAN, but it does occur sometimes in WANs."

Method: run each scenario and measure (a) total time with two or more
role-holding primaries, (b) the largest number of distinct servers the
client heard from within one second, and (c) total time with no primary
at all (loss of service).  The three bad scenarios should light up exactly
the columns the paper predicts, and the benign ones should not.
"""

from __future__ import annotations

from repro.analysis.risk import SCENARIOS
from repro.metrics.report import Table
from repro.metrics.session_audit import (
    dual_sender_time,
    max_concurrent_senders,
    multi_primary_time,
    no_primary_time,
)

RUN_SECONDS = 16.0


def _evaluate(name: str, seed: int) -> dict:
    cluster, client, handle = SCENARIOS[name](seed=seed)
    start = cluster.sim.now
    cluster.run(RUN_SECONDS)
    end = cluster.sim.now
    return {
        "multi_primary_s": multi_primary_time(cluster, handle.session_id),
        "client_senders": max_concurrent_senders(handle, window=1.0),
        "dual_sender_s": dual_sender_time(handle),
        "no_primary_s": no_primary_time(cluster, handle.session_id, start, end),
        "responses": len(handle.received),
    }


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    names = (
        ["stable", "total-content-loss", "wan-non-transitive"]
        if fast
        else list(SCENARIOS)
    )
    table = Table(
        title="E3: unique-primary violations by fault scenario",
        columns=[
            "scenario",
            "multi_primary_s",
            "max_senders_1s",
            "dual_sender_s",
            "no_primary_s",
            "responses",
        ],
    )
    for name in names:
        metrics = _evaluate(name, seed)
        table.add_row(
            name,
            metrics["multi_primary_s"],
            metrics["client_senders"],
            metrics["dual_sender_s"],
            metrics["no_primary_s"],
            metrics["responses"],
        )
    table.add_note(
        "multi_primary_s counts *role* overlap: an isolated minority keeps "
        "serving into the void during a clean partition (harmless to the "
        "client).  dual_sender_s is the client-visible violation: only the "
        "WAN non-transitive cut sustains it, exactly as the paper predicts; "
        "total content loss is the no-primary (outage) case"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
