"""E4 — duplicates and staleness after a failover vs propagation period.

Paper anecdote (Section 3.1): "In the VoD service of [2], such updates are
sent every half a second.  Thus, upon migration, a new primary may send
half a second of duplicate video frames to the client and the server may
be unaware of context updates sent by the client in the last half a
second."

Method: one VoD session streams; the primary is crashed mid-stream; under
the resend-all policy the client counts duplicated frames.  Sweeping the
propagation period shows duplicates growing linearly with it
(expectation: rate*T/2 plus a few detection-time frames, since the
successor resumes from the last snapshot).
"""

from __future__ import annotations

from repro.analysis.availability import expected_duplicate_responses
from repro.analysis.montecarlo import MonteCarlo
from repro.metrics.report import Table
from repro.metrics.session_audit import audit_session
from repro.experiments.common import vod_cluster

FRAME_RATE = 20.0


def _one_rep(seed: int, period: float) -> dict:
    cluster = vod_cluster(
        n_servers=3,
        num_backups=1,
        propagation_period=period,
        seed=seed,
        frame_rate=FRAME_RATE,
        movie_seconds=600,
        trace=False,
    )
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(4.0 + (seed % 7) * 0.13)  # vary the crash phase per rep
    victims = cluster.primaries_of(handle.session_id)
    if victims:
        cluster.crash_server(victims[0])
    cluster.run(8.0)
    report = audit_session(handle)
    return {
        "duplicates": report.duplicate_count,
        "missing": report.missing_count,
        "max_gap": report.max_gap,
    }


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    periods = [0.25, 1.0] if fast else [0.1, 0.25, 0.5, 1.0, 2.0]
    reps = 2 if fast else 6
    table = Table(
        title="E4: failover duplicates vs propagation period (resend-all, "
        f"{FRAME_RATE:.0f} fps)",
        columns=[
            "period_s",
            "dup_frames_mean",
            "dup_seconds_mean",
            "expected_dup_frames",
            "missing_mean",
            "takeover_gap_s",
        ],
    )
    for period in periods:
        mc = MonteCarlo(
            fn=lambda s, p=period: _one_rep(s, p),
            n_reps=reps,
            base_seed=seed + int(period * 100),
        ).run()
        duplicates = mc.aggregate("duplicates").mean
        table.add_row(
            period,
            duplicates,
            duplicates / FRAME_RATE,
            expected_duplicate_responses(period, FRAME_RATE),
            mc.aggregate("missing").mean,
            mc.aggregate("max_gap").mean,
        )
    table.add_note(
        "paper (T=0.5 s): about half a second of duplicate frames on "
        "migration; duplicates should grow roughly linearly with T"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
