"""E5 — service outage vs the degree of content replication.

Paper claim (Section 4): "Every server which can provide this content may
have either crashed or disconnected from the client.  Clearly availability
is impossible in a scenario such as this.  The probability of this
scenario can be reduced by increasing the degree of replication."

Method: a VoD session streams while the unit's replicas crash and recover
as Poisson processes; we measure the fraction of time with no live
primary role for the session (service outage).  The analytic steady-state
model ``(lambda/(lambda+mu))**r`` is printed alongside.
"""

from __future__ import annotations

from repro.analysis.availability import total_outage_probability
from repro.analysis.markov import all_down_hitting_probability
from repro.analysis.montecarlo import MonteCarlo
from repro.faults.generators import poisson_crash_schedule
from repro.faults.injector import inject
from repro.metrics.report import Table
from repro.metrics.session_audit import no_primary_time
from repro.experiments.common import rng_for, vod_cluster

FAILURE_RATE = 0.1
MEAN_DOWNTIME = 3.0


def _one_rep(seed: int, replication: int, duration: float) -> dict:
    cluster = vod_cluster(
        n_servers=5,
        num_backups=1,
        propagation_period=0.5,
        seed=seed,
        frame_rate=10.0,
        movie_seconds=3600,
        replication=replication,
    )
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(3.0)
    hosts = cluster.hosts_of("m0")
    rng = rng_for(seed, "e5-faults")
    schedule = poisson_crash_schedule(
        rng,
        servers=hosts,
        duration=duration,
        failure_rate=FAILURE_RATE,
        mean_downtime=MEAN_DOWNTIME,
    )
    inject(cluster, schedule)
    start = cluster.sim.now
    # sample the all-hosts-down state as the run progresses
    samples = {"down": 0, "total": 0}

    def sample() -> None:
        samples["total"] += 1
        if all(not cluster.servers[h].is_up() for h in hosts):
            samples["down"] += 1
        if cluster.sim.now < start + duration - 0.2:
            cluster.sim.schedule(0.1, sample)

    cluster.sim.schedule(0.1, sample)
    cluster.run(duration)
    end = cluster.sim.now
    outage = no_primary_time(cluster, handle.session_id, start, end)
    # a session whose every replica was simultaneously down is gone for
    # good (all unit databases were volatile) unless the client restarts
    # it; detect that terminal state
    session_lost = not any(
        handle.session_id in db
        for server in cluster.servers.values()
        if server.is_up()
        for db in [server.unit_dbs.get("m0")]
        if db is not None
    )
    return {
        "outage_fraction": outage / (end - start),
        "all_down_fraction": samples["down"] / max(1, samples["total"]),
        "session_lost": 1.0 if session_lost else 0.0,
    }


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    replication_grid = [1, 3] if fast else [1, 2, 3, 4, 5]
    duration = 15.0 if fast else 60.0
    reps = 2 if fast else 4
    table = Table(
        title="E5: service outage vs content replication degree",
        columns=[
            "replication",
            "all_down_fraction",
            "predicted_all_down",
            "sessions_lost_frac",
            "predicted_lost (Markov)",
            "no_primary_fraction",
        ],
    )
    for replication in replication_grid:
        mc = MonteCarlo(
            fn=lambda s, r=replication: _one_rep(s, r, duration),
            n_reps=reps,
            base_seed=seed + replication,
        ).run()
        table.add_row(
            replication,
            mc.aggregate("all_down_fraction").mean,
            total_outage_probability(
                FAILURE_RATE, 1.0 / MEAN_DOWNTIME, replication
            ),
            mc.aggregate("session_lost").mean,
            all_down_hitting_probability(
                replication, FAILURE_RATE, 1.0 / MEAN_DOWNTIME, duration
            ),
            mc.aggregate("outage_fraction").mean,
        )
    table.add_note(
        f"faults: lambda={FAILURE_RATE}/s/server, mttr={MEAN_DOWNTIME}s on the "
        "unit's replicas only.  all_down matches the steady-state model; "
        "sessions whose replicas were ever all down simultaneously are lost "
        "permanently (volatile databases), so no_primary_fraction includes "
        "the permanent tail — the cost of under-replication"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
