"""E6 — takeover paths: immediate (failure-only) vs exchange (join).

Paper claim (Section 3.4): "If the content group membership change
notification reflects server failures only, then virtual synchrony
semantics allow the servers to immediately reach a consistent decision as
to which clients each server will serve *without exchanging additional
information* ... The ability to re-distribute the clients immediately
without first exchanging messages allows servers to quickly take over
failed servers' clients.  If a content group change reflects the joining
of new servers ..., then all the servers first exchange information about
clients, and then use the exchanged information to decide."

Method: measure (a) the client-visible service gap when the primary
crashes (failure-only path) and when a rebalance migrates the session to
a joining server (exchange path), and (b) how many state-exchange
multicasts each path generated.
"""

from __future__ import annotations

from repro.analysis.montecarlo import MonteCarlo
from repro.metrics.report import Table
from repro.metrics.session_audit import service_gaps
from repro.experiments.common import vod_cluster


def _crash_failover(seed: int) -> dict:
    cluster = vod_cluster(
        n_servers=3, num_backups=1, propagation_period=0.5, seed=seed,
        frame_rate=20.0, movie_seconds=600, trace=False,
    )
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(4.0)
    before = sum(
        s.counters["exchanges_started"] for s in cluster.servers.values()
    )
    at = cluster.sim.now
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(8.0)
    gaps = service_gaps(handle, threshold=0.2)
    gap = max((b - a) for a, b in gaps if a >= at - 1.0) if gaps else 0.0
    exchanges = (
        sum(s.counters["exchanges_started"] for s in cluster.servers.values())
        - before
    )
    return {"gap_s": gap, "exchanges": exchanges}


def _join_migration(seed: int) -> dict:
    cluster = vod_cluster(
        n_servers=3, num_backups=1, propagation_period=0.5, seed=seed,
        frame_rate=20.0, movie_seconds=600, trace=False,
    )
    # Victim crashes first so its later recovery is a pure join that the
    # rebalance will use (sessions migrate toward the joiner).
    cluster.crash_server("s2")
    cluster.settle()
    clients = []
    handles = []
    for index in range(6):
        client = cluster.add_client(f"c{index}")
        handles.append(client.start_session("m0"))
        clients.append(client)
    cluster.run(4.0)
    before = sum(
        s.counters["exchanges_started"] for s in cluster.servers.values()
    )
    at = cluster.sim.now
    cluster.recover_server("s2")
    cluster.run(8.0)
    migrated = [
        handle
        for handle in handles
        if cluster.primaries_of(handle.session_id) == ["s2"]
    ]
    gap = 0.0
    for handle in migrated:
        gaps = service_gaps(handle, threshold=0.2)
        relevant = [(b - a) for a, b in gaps if a >= at - 1.0]
        if relevant:
            gap = max(gap, max(relevant))
    exchanges = (
        sum(s.counters["exchanges_started"] for s in cluster.servers.values())
        - before
    )
    return {
        "gap_s": gap,
        "exchanges": exchanges,
        "migrated": len(migrated),
    }


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    reps = 2 if fast else 5
    table = Table(
        title="E6: takeover behaviour — failure-only vs join-type view change",
        columns=[
            "path",
            "client_gap_s",
            "state_exchange_mcasts",
            "migrated_sessions",
        ],
    )
    crash = MonteCarlo(fn=_crash_failover, n_reps=reps, base_seed=seed).run()
    join = MonteCarlo(fn=_join_migration, n_reps=reps, base_seed=seed + 1).run()
    table.add_row(
        "crash (immediate)",
        crash.aggregate("gap_s").mean,
        crash.aggregate("exchanges").mean,
        "-",
    )
    table.add_row(
        "join (exchange+rebalance)",
        join.aggregate("gap_s").mean,
        join.aggregate("exchanges").mean,
        join.aggregate("migrated").mean,
    )
    table.add_note(
        "claim: the failure path reallocates with zero exchange messages "
        "(virtual synchrony made the databases identical); the join path "
        "pays one exchange multicast per member but migrates smoothly "
        "(handoff), so its client gap stays small"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
