"""E7 — the framework against its baselines.

The paper positions the framework against (a) no replication at all and
(b) the original VoD design of [2] (no backup servers), and argues that
backups "eliminate the risk of losing client requests upon migration to a
backup, but not the risk of sending duplicate responses" (Section 3.1).
A (near-)full-synchronization variant bounds the other end of the cost
axis.

Method: identical fault schedules and workloads run against five
configurations of the *same* framework code: single server, [2]-style
no-backup, the framework with one and two backups, and full-sync
(propagation at the response rate).  Metrics: lost context updates,
duplicate responses, client-visible outage, and per-server propagation
processing load.
"""

from __future__ import annotations

from repro.analysis.montecarlo import MonteCarlo
from repro.faults.generators import poisson_crash_schedule
from repro.faults.injector import inject
from repro.metrics.report import Table
from repro.metrics.session_audit import audit_session, no_primary_time
from repro.experiments.common import (
    ledger_cluster,
    rng_for,
    send_updates_periodically,
    surviving_counters,
    vod_cluster,
)

FAILURE_RATE = 0.05
MEAN_DOWNTIME = 2.5
UPDATE_PERIOD = 0.4
FRAME_RATE = 10.0

CONFIGS = {
    "single-server": dict(n_servers=1, replication=1, num_backups=0, period=0.5),
    "no-backup [2]": dict(n_servers=4, replication=4, num_backups=0, period=0.5),
    "framework b=1": dict(n_servers=4, replication=4, num_backups=1, period=0.5),
    "framework b=2": dict(n_servers=4, replication=4, num_backups=2, period=0.5),
    "full-sync": dict(
        n_servers=4, replication=4, num_backups=1, period=1.0 / FRAME_RATE
    ),
}


def _one_rep(seed: int, config: dict, duration: float) -> dict:
    # Two parallel worlds under the same fault schedule: a ledger cluster
    # for exact lost-update counting and a VoD cluster for response
    # duplicates/outage.
    results: dict[str, float] = {}

    ledger = ledger_cluster(
        n_servers=config["n_servers"],
        num_backups=config["num_backups"],
        propagation_period=config["period"],
        seed=seed,
        replication=config["replication"],
    )
    client = ledger.add_client("c0")
    handle = client.start_session("ledger-0")
    ledger.run(2.0)
    rng = rng_for(seed, "e7-faults")
    schedule = poisson_crash_schedule(
        rng,
        servers=sorted(ledger.servers),
        duration=duration,
        failure_rate=FAILURE_RATE,
        mean_downtime=MEAN_DOWNTIME,
    )
    inject(ledger, schedule)
    send_updates_periodically(
        ledger, client, handle, UPDATE_PERIOD, duration,
        lambda k: {"counter": k + 1},
    )
    ledger.run(duration + 1.0)
    for server_id in list(ledger.servers):
        if not ledger.servers[server_id].is_up():
            ledger.recover_server(server_id)
    ledger.run(6.0)
    failed = set(handle.failed_update_counters)
    sent = {c for _, c, _ in handle.updates_sent} - failed
    survived = surviving_counters(ledger, handle.session_id)
    results["updates_sent"] = len(sent)
    results["updates_lost"] = len(sent - survived)

    vod = vod_cluster(
        n_servers=config["n_servers"],
        num_backups=config["num_backups"],
        propagation_period=config["period"],
        seed=seed,
        frame_rate=FRAME_RATE,
        movie_seconds=3600,
        replication=config["replication"],
    )
    vclient = vod.add_client("c0")
    vhandle = vclient.start_session("m0")
    vod.run(2.0)
    inject(vod, schedule)  # the identical schedule
    start = vod.sim.now
    vod.run(duration)
    end = vod.sim.now
    report = audit_session(vhandle, until=end)
    results["dup_frames"] = report.duplicate_count
    results["outage_fraction"] = (
        no_primary_time(vod, vhandle.session_id, start, end) / (end - start)
    )
    per_server = [
        server.counters["propagations_processed"] / duration
        for server in vod.servers.values()
    ]
    results["propagations_per_s"] = sum(per_server) / len(per_server)
    return results


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    duration = 15.0 if fast else 50.0
    reps = 2 if fast else 4
    names = (
        ["single-server", "no-backup [2]", "framework b=1"]
        if fast
        else list(CONFIGS)
    )
    table = Table(
        title="E7: framework vs baselines under identical fault schedules",
        columns=[
            "configuration",
            "updates_lost",
            "updates_sent",
            "dup_frames",
            "outage_fraction",
            "propagations/s/server",
        ],
    )
    for name in names:
        config = CONFIGS[name]
        mc = MonteCarlo(
            fn=lambda s, c=config: _one_rep(s, c, duration),
            n_reps=reps,
            base_seed=seed,
        ).run()
        table.add_row(
            name,
            sum(mc.values("updates_lost")),
            sum(mc.values("updates_sent")),
            mc.aggregate("dup_frames").mean,
            mc.aggregate("outage_fraction").mean,
            mc.aggregate("propagations_per_s").mean,
        )
    table.add_note(
        "expected ordering: single server worst on loss+outage; backups cut "
        "lost updates vs [2] at unchanged propagation cost; full-sync cuts "
        "duplicates to ~0 at an order-of-magnitude higher propagation load"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
