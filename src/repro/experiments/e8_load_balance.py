"""E8 — fair redistribution of clients across membership changes.

Paper claims (Section 3.4): "Upon receiving the new view, the servers
evenly re-distribute the clients among them" and the join-time allocation
"is done deterministically based on the combined information, in such a
way as to balance the load fairly."

Method: a population of sessions spreads over the cluster; we record the
per-server primary counts and Jain's fairness index before a crash, after
the crash (survivors absorb the victims' sessions), and after the victim
rejoins (rebalance hands sessions back).  We also count how many sessions
migrated at the rejoin — fairness should be restored with only about
``sessions/servers`` migrations.
"""

from __future__ import annotations

from repro.core.selection import jain_fairness
from repro.metrics.report import Table
from repro.experiments.common import vod_cluster

N_SESSIONS = 24
N_SERVERS = 4


def _primary_counts(cluster, handles) -> dict[str, int]:
    counts: dict[str, int] = {s: 0 for s in cluster.servers if cluster.servers[s].is_up()}
    for handle in handles:
        primaries = cluster.primaries_of(handle.session_id)
        if primaries:
            counts[primaries[0]] = counts.get(primaries[0], 0) + 1
    return counts


def _assignment(cluster, handles) -> dict[str, str]:
    out = {}
    for handle in handles:
        primaries = cluster.primaries_of(handle.session_id)
        out[handle.session_id] = primaries[0] if primaries else "-"
    return out


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    n_sessions = 12 if fast else N_SESSIONS
    cluster = vod_cluster(
        n_servers=N_SERVERS,
        num_backups=1,
        propagation_period=0.5,
        seed=seed,
        frame_rate=5.0,
        movie_seconds=3600,
        trace=False,
    )
    handles = []
    for index in range(n_sessions):
        client = cluster.add_client(f"c{index}")
        handles.append(client.start_session("m0"))
    cluster.run(4.0)

    table = Table(
        title="E8: load balance across membership changes "
        f"({n_sessions} sessions, {N_SERVERS} servers)",
        columns=["stage", "per_server_primaries", "jain_index", "migrations"],
    )

    before_counts = _primary_counts(cluster, handles)
    before_assign = _assignment(cluster, handles)
    table.add_row(
        "initial",
        str(dict(sorted(before_counts.items()))),
        jain_fairness(list(before_counts.values())),
        "-",
    )

    cluster.crash_server("s1")
    cluster.run(4.0)
    crash_counts = _primary_counts(cluster, handles)
    crash_assign = _assignment(cluster, handles)
    crash_migrations = sum(
        1 for sid in crash_assign if crash_assign[sid] != before_assign[sid]
    )
    table.add_row(
        "after crash of s1",
        str(dict(sorted(crash_counts.items()))),
        jain_fairness(list(crash_counts.values())),
        crash_migrations,
    )

    cluster.recover_server("s1")
    cluster.run(8.0)
    rejoin_counts = _primary_counts(cluster, handles)
    rejoin_assign = _assignment(cluster, handles)
    rejoin_migrations = sum(
        1 for sid in rejoin_assign if rejoin_assign[sid] != crash_assign[sid]
    )
    table.add_row(
        "after s1 rejoins",
        str(dict(sorted(rejoin_counts.items()))),
        jain_fairness(list(rejoin_counts.values())),
        rejoin_migrations,
    )
    table.add_note(
        "claims: only the victim's sessions move on the crash; fairness "
        "returns to ~1.0 after the rejoin with roughly sessions/servers "
        "migrations"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
