"""E9 — the duplicate-vs-loss choice for uncertain responses.

Paper claim (Section 4): for responses possibly sent between the last
propagation and the crash, the successor "can either transmit the response
(risking the client seeing a duplicate ...) or it can not transmit
(risking that the client never sees the response).  The choice is
application specific.  For example, for MPEG-encoded video, one would
favor duplicate delivery for full image (I) frames over the risk of losing
them, but would risk missing some incremental (P or B) frames."

Method: identical failovers on an MPEG-like GOP stream under resend-all,
skip-uncertain, and the selective MPEG policy; duplicates and losses are
counted per frame class.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.montecarlo import MonteCarlo
from repro.core.responses import ResendAll, SkipUncertain, mpeg_policy
from repro.metrics.report import Table
from repro.experiments.common import vod_cluster

FRAME_RATE = 24.0

POLICIES = {
    "resend-all": ResendAll,
    "skip-uncertain": SkipUncertain,
    "mpeg (I only)": mpeg_policy,
}


def _one_rep(seed: int, policy_factory) -> dict:
    cluster = vod_cluster(
        n_servers=3,
        num_backups=1,
        propagation_period=0.5,
        seed=seed,
        frame_rate=FRAME_RATE,
        movie_seconds=600,
        uncertainty_policy=policy_factory(),
        trace=False,
    )
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(4.0 + (seed % 5) * 0.11)
    victims = cluster.primaries_of(handle.session_id)
    if victims:
        cluster.crash_server(victims[0])
    cluster.run(6.0)

    app = cluster.servers[cluster.hosts_of("m0")[0]].applications["m0"]
    movie = app.movie("m0")
    seen = [r.index for r in handle.received]
    counts = Counter(seen)
    dup_by_class: Counter = Counter()
    for index, count in counts.items():
        if count > 1:
            dup_by_class[movie.frame_class(index)] += count - 1
    missing_by_class: Counter = Counter()
    for index in range(max(seen) + 1):
        if index not in counts:
            missing_by_class[movie.frame_class(index)] += 1
    return {
        "dup_I": dup_by_class["I"],
        "dup_PB": dup_by_class["P"] + dup_by_class["B"],
        "lost_I": missing_by_class["I"],
        "lost_PB": missing_by_class["P"] + missing_by_class["B"],
    }


def run(seed: int = 0, fast: bool = False) -> list[Table]:
    reps = 2 if fast else 6
    table = Table(
        title="E9: uncertainty policies on an MPEG-like stream "
        f"(GOP IBBPBBPBBPBB, {FRAME_RATE:.0f} fps, T=0.5 s)",
        columns=[
            "policy",
            "dup_I",
            "dup_P/B",
            "lost_I",
            "lost_P/B",
        ],
    )
    for name, factory in POLICIES.items():
        mc = MonteCarlo(
            fn=lambda s, f=factory: _one_rep(s, f),
            n_reps=reps,
            base_seed=seed,
        ).run()
        table.add_row(
            name,
            mc.aggregate("dup_I").mean,
            mc.aggregate("dup_PB").mean,
            mc.aggregate("lost_I").mean,
            mc.aggregate("lost_PB").mean,
        )
    table.add_note(
        "paper's recommendation is the third row: duplicate I frames "
        "(never lose one), accept losing some P/B frames"
    )
    return [table]


if __name__ == "__main__":  # pragma: no cover
    for t in run():
        t.show()
