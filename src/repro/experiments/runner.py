"""Run the whole experiment suite and print every table.

Usage::

    python -m repro.experiments.runner            # full suite
    python -m repro.experiments.runner --fast     # CI-sized sweeps
    python -m repro.experiments.runner E1 E4      # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENT_MODULES, get_experiment


def run_all(
    names: list[str] | None = None, seed: int = 0, fast: bool = False
) -> dict[str, list]:
    """Run the selected experiments; returns ``{id: [Table, ...]}``."""
    names = names or list(EXPERIMENT_MODULES)
    results: dict[str, list] = {}
    for name in names:
        module = get_experiment(name)
        started = time.time()
        tables = module.run(seed=seed, fast=fast)
        elapsed = time.time() - started
        results[name] = tables
        for table in tables:
            table.show()
        print(f"[{name}] done in {elapsed:.1f}s wall time")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=list(EXPERIMENT_MODULES) + [[]],
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast", action="store_true", help="small sweeps for smoke runs"
    )
    args = parser.parse_args(argv)
    run_all(args.experiments or None, seed=args.seed, fast=args.fast)
    return 0


if __name__ == "__main__":
    sys.exit(main())
