"""Run the whole experiment suite and print every table.

Usage::

    python -m repro.experiments.runner            # full suite
    python -m repro.experiments.runner --fast     # CI-sized sweeps
    python -m repro.experiments.runner E1 E4      # a subset
    python -m repro.experiments.runner --workers 4  # shard across cores

Experiments are independent (each builds its own simulated worlds from
its own seeds), so with ``--workers N`` they are sharded across worker
processes.  Output is merged **in experiment order**, not completion
order, so a parallel run prints exactly what a serial run prints.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENT_MODULES, get_experiment
from repro.parallel import map_sharded


def _run_one(task: tuple) -> tuple[str, list, float]:
    """Worker: run one experiment module; returns (name, tables, secs)."""
    name, seed, fast = task
    module = get_experiment(name)
    # Host-side progress accounting, never simulation state; perf_counter
    # is monotonic (time.time() can jump under NTP slew).
    started = time.perf_counter()  # repro-lint: allow(wall-clock)
    tables = module.run(seed=seed, fast=fast)
    return name, tables, time.perf_counter() - started  # repro-lint: allow(wall-clock)


def run_all(
    names: list[str] | None = None,
    seed: int = 0,
    fast: bool = False,
    workers: int = 1,
) -> dict[str, list]:
    """Run the selected experiments; returns ``{id: [Table, ...]}``.

    ``workers > 1`` runs experiments in parallel processes; tables are
    printed in experiment order regardless of completion order.
    """
    names = names or list(EXPERIMENT_MODULES)
    tasks = [(name, seed, fast) for name in names]
    results: dict[str, list] = {}
    if workers <= 1:
        outcomes = (_run_one(task) for task in tasks)  # lazy: stream output
    else:
        outcomes = map_sharded(_run_one, tasks, workers=workers)
    for name, tables, elapsed in outcomes:
        results[name] = tables
        for table in tables:
            table.show()
        print(f"[{name}] done in {elapsed:.1f}s wall time")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=list(EXPERIMENT_MODULES) + [[]],
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast", action="store_true", help="small sweeps for smoke runs"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard experiments across (default 1)",
    )
    args = parser.parse_args(argv)
    run_all(
        args.experiments or None,
        seed=args.seed,
        fast=args.fast,
        workers=args.workers,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
