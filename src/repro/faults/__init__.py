"""Fault injection: schedules, random generators, and the injector that
applies them to a running cluster."""

from repro.faults.generators import poisson_crash_schedule
from repro.faults.injector import inject
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = ["FaultEvent", "FaultSchedule", "inject", "poisson_crash_schedule"]
