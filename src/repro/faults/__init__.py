"""Fault injection: schedules, random generators, and the injector that
applies them to a running cluster."""

from repro.faults.generators import (
    crash_burst_schedule,
    crash_hook_schedule,
    flapping_partition_schedule,
    link_delay_spike_schedule,
    message_adversity_schedule,
    poisson_crash_schedule,
    slowdown_schedule,
)
from repro.faults.injector import inject
from repro.faults.schedule import FaultEvent, FaultSchedule, VALID_KINDS

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "VALID_KINDS",
    "crash_burst_schedule",
    "crash_hook_schedule",
    "flapping_partition_schedule",
    "inject",
    "link_delay_spike_schedule",
    "message_adversity_schedule",
    "poisson_crash_schedule",
    "slowdown_schedule",
]
