"""Random fault-pattern generators.

The Section-4 experiments need repeatable random fault workloads: Poisson
crash/recovery processes per server, correlated crash bursts, and flapping
partitions.  The chaos engine adds gray-failure processes on top: slowdown
windows, per-link delay spikes, duplication/reordering windows, and
crash-at-protocol-step arming.  All generators are pure functions of an
RNG, returning a :class:`~repro.faults.schedule.FaultSchedule`; layered
workloads are built with :meth:`FaultSchedule.merged`.
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import FaultSchedule


def poisson_crash_schedule(
    rng: np.random.Generator,
    servers: list[str],
    duration: float,
    failure_rate: float,
    mean_downtime: float = 2.0,
    spare: str | None = None,
) -> FaultSchedule:
    """Independent crash/repair per server.

    Each server alternates up (exponential with rate ``failure_rate``) and
    down (exponential with mean ``mean_downtime``).  ``spare`` optionally
    names one server that never crashes (so experiments keep a witness
    that can always report surviving state).
    """
    schedule = FaultSchedule()
    for server in servers:
        if server == spare:
            continue
        t = 0.0
        while True:
            up = float(rng.exponential(1.0 / failure_rate)) if failure_rate > 0 else duration + 1
            t += up
            if t >= duration:
                break
            schedule.crash(t, server)
            down = float(rng.exponential(mean_downtime))
            t += down
            if t >= duration:
                break
            schedule.recover(t, server)
    return schedule


def crash_burst_schedule(
    rng: np.random.Generator,
    servers: list[str],
    at: float,
    burst_size: int,
    stagger: float = 0.05,
    recover_after: float | None = None,
) -> FaultSchedule:
    """A correlated burst: ``burst_size`` randomly chosen servers crash
    within ``stagger`` seconds of ``at`` (the "every session group member
    fails together" pattern Section 4 worries about)."""
    schedule = FaultSchedule()
    burst_size = min(burst_size, len(servers))
    victims = rng.choice(servers, size=burst_size, replace=False)
    for index, victim in enumerate(victims):
        crash_at = at + float(rng.uniform(0, stagger)) + index * 1e-4
        schedule.crash(crash_at, str(victim))
        if recover_after is not None:
            schedule.recover(crash_at + recover_after, str(victim))
    return schedule


def flapping_partition_schedule(
    rng: np.random.Generator,
    left: list[str],
    right: list[str],
    duration: float,
    mean_stable: float = 5.0,
    mean_partitioned: float = 2.0,
) -> FaultSchedule:
    """Alternating partition/heal between two server sets (WAN flaps)."""
    schedule = FaultSchedule()
    t = 0.0
    while True:
        t += float(rng.exponential(mean_stable))
        if t >= duration:
            break
        schedule.partition(t, left, right)
        t += float(rng.exponential(mean_partitioned))
        if t >= duration:
            break
        schedule.heal(t)
    return schedule


def slowdown_schedule(
    rng: np.random.Generator,
    servers: list[str],
    duration: float,
    rate: float,
    mean_slow: float = 2.0,
    delay_range: tuple[float, float] = (0.05, 0.6),
    spare: str | None = None,
) -> FaultSchedule:
    """Gray failures: servers intermittently go *slow* (not down).

    Each server alternates full speed (exponential with ``rate``) and a
    slowdown window (exponential mean ``mean_slow``) during which every
    handler/timer dispatch lags by a uniform draw from ``delay_range`` —
    the degraded-but-alive mode a crash-only vocabulary cannot express.
    """
    schedule = FaultSchedule()
    for server in servers:
        if server == spare:
            continue
        t = 0.0
        while rate > 0:
            t += float(rng.exponential(1.0 / rate))
            if t >= duration:
                break
            delay = float(rng.uniform(*delay_range))
            schedule.slowdown(t, server, delay)
            t += float(rng.exponential(mean_slow))
            if t >= duration:
                break
            schedule.restore_speed(t, server)
    return schedule


def link_delay_spike_schedule(
    rng: np.random.Generator,
    servers: list[str],
    duration: float,
    spikes: int,
    extra_range: tuple[float, float] = (0.02, 0.25),
    mean_spike: float = 1.5,
) -> FaultSchedule:
    """Transient congestion: ``spikes`` random server pairs suffer an extra
    one-way delay for an exponential-length window."""
    schedule = FaultSchedule()
    if len(servers) < 2:
        return schedule
    for _ in range(spikes):
        at = float(rng.uniform(0.0, duration))
        a, b = rng.choice(servers, size=2, replace=False)
        extra = float(rng.uniform(*extra_range))
        until = min(duration, at + float(rng.exponential(mean_spike)))
        schedule.delay_link(at, str(a), str(b), extra)
        schedule.restore_delay(until, str(a), str(b))
    return schedule


def message_adversity_schedule(
    rng: np.random.Generator,
    duration: float,
    duplicate_probability: float = 0.05,
    reorder_probability: float = 0.05,
    reorder_window: float = 0.05,
) -> FaultSchedule:
    """One window of network-level adversity (duplication + bounded
    reordering) covering a random span of the run."""
    schedule = FaultSchedule()
    start = float(rng.uniform(0.0, duration / 2))
    end = float(rng.uniform(start, duration))
    if duplicate_probability > 0:
        schedule.duplicate(start, duplicate_probability)
        schedule.duplicate(end, 0.0)
    if reorder_probability > 0:
        schedule.reorder(start, reorder_probability, reorder_window)
        schedule.reorder(end, 0.0, 0.0)
    return schedule


def crash_hook_schedule(
    rng: np.random.Generator,
    servers: list[str],
    duration: float,
    hooks: list[str],
    count: int = 1,
    spare: str | None = None,
) -> FaultSchedule:
    """Arm ``count`` crash-at-protocol-step traps on random servers: the
    crash fires when the victim next enters the named step (mid-handoff,
    between update and propagation, during state exchange, ...) — the
    paper's "crash at the worst possible moment" patterns, found by search
    instead of by hand."""
    schedule = FaultSchedule()
    victims = [s for s in servers if s != spare]
    if not victims or not hooks:
        return schedule
    for _ in range(count):
        at = float(rng.uniform(0.0, duration))
        victim = str(rng.choice(victims))
        hook = str(rng.choice(hooks))
        schedule.crash_at(at, victim, hook)
    return schedule


__all__ = [
    "crash_burst_schedule",
    "crash_hook_schedule",
    "flapping_partition_schedule",
    "link_delay_spike_schedule",
    "message_adversity_schedule",
    "poisson_crash_schedule",
    "slowdown_schedule",
]
