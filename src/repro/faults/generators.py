"""Random fault-pattern generators.

The Section-4 experiments need repeatable random fault workloads: Poisson
crash/recovery processes per server, correlated crash bursts, and flapping
partitions.  All generators are pure functions of an RNG, returning a
:class:`~repro.faults.schedule.FaultSchedule`.
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import FaultSchedule


def poisson_crash_schedule(
    rng: np.random.Generator,
    servers: list[str],
    duration: float,
    failure_rate: float,
    mean_downtime: float = 2.0,
    spare: str | None = None,
) -> FaultSchedule:
    """Independent crash/repair per server.

    Each server alternates up (exponential with rate ``failure_rate``) and
    down (exponential with mean ``mean_downtime``).  ``spare`` optionally
    names one server that never crashes (so experiments keep a witness
    that can always report surviving state).
    """
    schedule = FaultSchedule()
    for server in servers:
        if server == spare:
            continue
        t = 0.0
        while True:
            up = float(rng.exponential(1.0 / failure_rate)) if failure_rate > 0 else duration + 1
            t += up
            if t >= duration:
                break
            schedule.crash(t, server)
            down = float(rng.exponential(mean_downtime))
            t += down
            if t >= duration:
                break
            schedule.recover(t, server)
    return schedule


def crash_burst_schedule(
    rng: np.random.Generator,
    servers: list[str],
    at: float,
    burst_size: int,
    stagger: float = 0.05,
    recover_after: float | None = None,
) -> FaultSchedule:
    """A correlated burst: ``burst_size`` randomly chosen servers crash
    within ``stagger`` seconds of ``at`` (the "every session group member
    fails together" pattern Section 4 worries about)."""
    schedule = FaultSchedule()
    burst_size = min(burst_size, len(servers))
    victims = rng.choice(servers, size=burst_size, replace=False)
    for index, victim in enumerate(victims):
        crash_at = at + float(rng.uniform(0, stagger)) + index * 1e-4
        schedule.crash(crash_at, str(victim))
        if recover_after is not None:
            schedule.recover(crash_at + recover_after, str(victim))
    return schedule


def flapping_partition_schedule(
    rng: np.random.Generator,
    left: list[str],
    right: list[str],
    duration: float,
    mean_stable: float = 5.0,
    mean_partitioned: float = 2.0,
) -> FaultSchedule:
    """Alternating partition/heal between two server sets (WAN flaps)."""
    schedule = FaultSchedule()
    t = 0.0
    while True:
        t += float(rng.exponential(mean_stable))
        if t >= duration:
            break
        schedule.partition(t, left, right)
        t += float(rng.exponential(mean_partitioned))
        if t >= duration:
            break
        schedule.heal(t)
    return schedule


__all__ = [
    "crash_burst_schedule",
    "flapping_partition_schedule",
    "poisson_crash_schedule",
]
