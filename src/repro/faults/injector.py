"""Applies a fault schedule to a running cluster.

Every applied event is recorded in the cluster's trace log under a
``fault.<kind>`` category, so a chaos repro's event log shows the injected
faults inline with the protocol events they provoked — the single
interleaved timeline that makes a shrunk schedule debuggable.
"""

from __future__ import annotations

from repro.faults.schedule import FaultEvent, FaultSchedule


def _trace(cluster, event: FaultEvent) -> None:
    cluster.network.trace.record(
        cluster.sim.now,
        event.target if event.target is not None else "net",
        f"fault.{event.kind}",
        **event.args,
    )


def _apply(cluster, event: FaultEvent) -> None:
    _trace(cluster, event)
    manager = getattr(cluster, "availability_manager", None)
    if event.kind == "crash":
        server = cluster.servers.get(event.target)
        if server is not None and server.is_up():
            server.crash()
            if manager is not None:
                manager.record_crash(cluster.sim.now)
    elif event.kind == "recover":
        server = cluster.servers.get(event.target)
        if server is not None and not server.is_up():
            server.recover()
            # symmetric with record_crash: the manager's observed failure
            # rate window should see repairs too, not only failures
            if manager is not None and hasattr(manager, "record_recovery"):
                manager.record_recovery(cluster.sim.now)
    elif event.kind == "partition":
        cluster.network.topology.partition(*event.args["components"])
    elif event.kind == "heal":
        cluster.network.topology.heal_partition()
    elif event.kind == "cut_link":
        cluster.network.topology.cut_link(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif event.kind == "restore_link":
        cluster.network.topology.restore_link(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif event.kind == "slowdown":
        server = cluster.servers.get(event.target)
        if server is not None:
            server.daemon.set_dispatch_delay(float(event.args["delay"]))
    elif event.kind == "restore_speed":
        server = cluster.servers.get(event.target)
        if server is not None:
            server.daemon.set_dispatch_delay(0.0)
    elif event.kind == "delay_link":
        cluster.network.set_link_delay(
            event.args["a"],
            event.args["b"],
            float(event.args["extra"]),
            symmetric=event.args.get("symmetric", True),
        )
    elif event.kind == "restore_delay":
        cluster.network.clear_link_delay(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif event.kind == "duplicate":
        cluster.network.set_duplication(float(event.args["probability"]))
    elif event.kind == "reorder":
        cluster.network.set_reordering(
            float(event.args["probability"]),
            window=float(event.args.get("window", 0.05)),
        )
    elif event.kind == "crash_at":
        server = cluster.servers.get(event.target)
        if server is not None and hasattr(server, "arm_crash_hook"):
            server.arm_crash_hook(event.args["hook"])


def inject(cluster, schedule: FaultSchedule, offset: float | None = None) -> None:
    """Schedule every fault event on the cluster's simulator.

    ``offset`` defaults to the current simulation time, so a schedule
    written with times relative to "now" applies as expected after any
    warm-up the experiment already ran.
    """
    base = cluster.sim.now if offset is None else offset
    for event in schedule.sorted_events():
        at = base + event.time
        cluster.sim.schedule_at(at, lambda e=event: _apply(cluster, e))


__all__ = ["inject"]
