"""Applies a fault schedule to a running cluster."""

from __future__ import annotations

from repro.faults.schedule import FaultEvent, FaultSchedule


def _apply(cluster, event: FaultEvent) -> None:
    if event.kind == "crash":
        server = cluster.servers.get(event.target)
        if server is not None and server.is_up():
            server.crash()
            manager = getattr(cluster, "availability_manager", None)
            if manager is not None:
                manager.record_crash(cluster.sim.now)
    elif event.kind == "recover":
        server = cluster.servers.get(event.target)
        if server is not None and not server.is_up():
            server.recover()
    elif event.kind == "partition":
        cluster.network.topology.partition(*event.args["components"])
    elif event.kind == "heal":
        cluster.network.topology.heal_partition()
    elif event.kind == "cut_link":
        cluster.network.topology.cut_link(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )
    elif event.kind == "restore_link":
        cluster.network.topology.restore_link(
            event.args["a"], event.args["b"], symmetric=event.args.get("symmetric", True)
        )


def inject(cluster, schedule: FaultSchedule, offset: float | None = None) -> None:
    """Schedule every fault event on the cluster's simulator.

    ``offset`` defaults to the current simulation time, so a schedule
    written with times relative to "now" applies as expected after any
    warm-up the experiment already ran.
    """
    base = cluster.sim.now if offset is None else offset
    for event in schedule.sorted_events():
        at = base + event.time
        cluster.sim.schedule_at(at, lambda e=event: _apply(cluster, e))


__all__ = ["inject"]
