"""Fault schedules: a declarative list of timed fault events.

A schedule is data, so experiments can log it, replay it, and hand the
identical fault pattern to the framework and to each baseline — the only
fair way to compare them.  The chaos engine (:mod:`repro.chaos`) relies on
the same property in the other direction: because a schedule is plain
data, a randomly generated one can be layered (:meth:`FaultSchedule.merged`),
persisted (:meth:`FaultSchedule.to_json`), delta-debugged down to a minimal
subsequence, and replayed bit-for-bit from a repro artifact.

Beyond the original crash/partition vocabulary, the schedule speaks the
gray-failure and message-adversity dialect Section 4's "crash at the worst
moment" patterns need:

* ``slowdown`` / ``restore_speed`` — a server stays up but dispatches
  every handler and timer late (degraded-but-not-dead);
* ``delay_link`` / ``restore_delay`` — a transient per-link latency spike;
* ``duplicate`` — the network may deliver unicasts twice;
* ``reorder`` — bounded FIFO violations on the wire;
* ``crash_at`` — arm a crash that fires the next time the target server
  enters a *named protocol step* (e.g. mid-handoff), the precision tool
  for the paper's worst-moment crash scenarios.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any

VALID_KINDS = {
    "crash",  # target: server id
    "recover",  # target: server id
    "partition",  # args: components (list of node-id lists)
    "heal",  # no args
    "cut_link",  # args: a, b, symmetric
    "restore_link",  # args: a, b, symmetric
    "slowdown",  # target: server id; args: delay (seconds of dispatch lag)
    "restore_speed",  # target: server id
    "delay_link",  # args: a, b, extra, symmetric
    "restore_delay",  # args: a, b, symmetric
    "duplicate",  # args: probability (0 disables)
    "reorder",  # args: probability, window (0 disables)
    "crash_at",  # target: server id; args: hook (named protocol step)
}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault."""

    time: float
    kind: str
    target: Any = None
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not math.isfinite(self.time):
            raise ValueError(f"fault time must be finite (got {self.time!r})")
        if self.time < 0:
            raise ValueError("fault time must be >= 0")

    def key(self) -> tuple:
        """A stable identity used for sorting and shrinking."""
        return (
            self.time,
            self.kind,
            str(self.target),
            tuple(sorted((k, json.dumps(v, sort_keys=True)) for k, v in self.args.items())),
        )


@dataclass
class FaultSchedule:
    """An ordered collection of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    def add(self, time: float, kind: str, target: Any = None, **args) -> "FaultSchedule":
        self.events.append(FaultEvent(time=time, kind=kind, target=target, args=args))
        return self

    def crash(self, time: float, server: str) -> "FaultSchedule":
        return self.add(time, "crash", server)

    def recover(self, time: float, server: str) -> "FaultSchedule":
        return self.add(time, "recover", server)

    def partition(self, time: float, *components) -> "FaultSchedule":
        return self.add(time, "partition", components=[list(c) for c in components])

    def heal(self, time: float) -> "FaultSchedule":
        return self.add(time, "heal")

    def cut_link(self, time: float, a, b, symmetric: bool = True) -> "FaultSchedule":
        return self.add(time, "cut_link", a=a, b=b, symmetric=symmetric)

    def restore_link(self, time: float, a, b, symmetric: bool = True) -> "FaultSchedule":
        return self.add(time, "restore_link", a=a, b=b, symmetric=symmetric)

    def slowdown(self, time: float, server: str, delay: float) -> "FaultSchedule":
        return self.add(time, "slowdown", server, delay=delay)

    def restore_speed(self, time: float, server: str) -> "FaultSchedule":
        return self.add(time, "restore_speed", server)

    def delay_link(
        self, time: float, a, b, extra: float, symmetric: bool = True
    ) -> "FaultSchedule":
        return self.add(time, "delay_link", a=a, b=b, extra=extra, symmetric=symmetric)

    def restore_delay(self, time: float, a, b, symmetric: bool = True) -> "FaultSchedule":
        return self.add(time, "restore_delay", a=a, b=b, symmetric=symmetric)

    def duplicate(self, time: float, probability: float) -> "FaultSchedule":
        return self.add(time, "duplicate", probability=probability)

    def reorder(
        self, time: float, probability: float, window: float = 0.05
    ) -> "FaultSchedule":
        return self.add(time, "reorder", probability=probability, window=window)

    def crash_at(self, time: float, server: str, hook: str) -> "FaultSchedule":
        """Arm a crash that fires when ``server`` next enters the named
        protocol step (see ``repro.core.server.CRASH_HOOKS``)."""
        return self.add(time, "crash_at", server, hook=hook)

    def sorted_events(self) -> list[FaultEvent]:
        return sorted(self.events, key=FaultEvent.key)

    def crashes(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == "crash"]

    def kinds(self) -> frozenset[str]:
        """The set of fault kinds this schedule contains (oracles use it to
        decide which invariants apply to a run)."""
        return frozenset(e.kind for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def shifted(self, offset: float) -> "FaultSchedule":
        """The same schedule delayed by ``offset`` seconds (e.g. to skip a
        warm-up phase)."""
        return FaultSchedule(
            events=[
                FaultEvent(
                    time=e.time + offset, kind=e.kind, target=e.target, args=e.args
                )
                for e in self.events
            ]
        )

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """The time-sorted union of this schedule and ``other`` — how the
        chaos generator layers independent fault processes (crashes +
        partitions + gray failures) into one run."""
        return FaultSchedule(
            events=sorted(self.events + other.events, key=FaultEvent.key)
        )

    # ------------------------------------------------------------------
    # persistence (chaos repro artifacts)
    # ------------------------------------------------------------------
    def to_json(self) -> list[dict]:
        """A JSON-friendly dump; round-trips through :meth:`from_json`."""
        return [
            {
                "time": event.time,
                "kind": event.kind,
                "target": event.target,
                "args": event.args,
            }
            for event in self.sorted_events()
        ]

    @classmethod
    def from_json(cls, data: list[dict]) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_json` output.

        Validates aggressively — a repro artifact is untrusted input:
        unknown kinds, non-finite or negative times, and malformed entries
        are all rejected with a descriptive error.
        """
        if not isinstance(data, list):
            raise ValueError(f"schedule JSON must be a list (got {type(data).__name__})")
        events: list[FaultEvent] = []
        for index, entry in enumerate(data):
            if not isinstance(entry, dict):
                raise ValueError(f"schedule entry {index} is not an object")
            try:
                time = float(entry["time"])
                kind = entry["kind"]
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"schedule entry {index} is malformed: {exc}") from exc
            args = entry.get("args") or {}
            if not isinstance(args, dict):
                raise ValueError(f"schedule entry {index} args must be an object")
            # FaultEvent.__post_init__ rejects NaN/inf/negative times and
            # unknown kinds; re-raise with the entry index for debuggability.
            try:
                events.append(
                    FaultEvent(time=time, kind=kind, target=entry.get("target"), args=args)
                )
            except ValueError as exc:
                raise ValueError(f"schedule entry {index}: {exc}") from exc
        return cls(events=events)


__all__ = ["FaultEvent", "FaultSchedule", "VALID_KINDS"]
