"""Fault schedules: a declarative list of timed fault events.

A schedule is data, so experiments can log it, replay it, and hand the
identical fault pattern to the framework and to each baseline — the only
fair way to compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

VALID_KINDS = {
    "crash",  # target: server id
    "recover",  # target: server id
    "partition",  # args: components (list of node-id lists)
    "heal",  # no args
    "cut_link",  # args: a, b, symmetric
    "restore_link",  # args: a, b, symmetric
}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault."""

    time: float
    kind: str
    target: Any = None
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be >= 0")


@dataclass
class FaultSchedule:
    """An ordered collection of fault events."""

    events: list[FaultEvent] = field(default_factory=list)

    def add(self, time: float, kind: str, target: Any = None, **args) -> "FaultSchedule":
        self.events.append(FaultEvent(time=time, kind=kind, target=target, args=args))
        return self

    def crash(self, time: float, server: str) -> "FaultSchedule":
        return self.add(time, "crash", server)

    def recover(self, time: float, server: str) -> "FaultSchedule":
        return self.add(time, "recover", server)

    def partition(self, time: float, *components) -> "FaultSchedule":
        return self.add(time, "partition", components=[list(c) for c in components])

    def heal(self, time: float) -> "FaultSchedule":
        return self.add(time, "heal")

    def cut_link(self, time: float, a, b, symmetric: bool = True) -> "FaultSchedule":
        return self.add(time, "cut_link", a=a, b=b, symmetric=symmetric)

    def restore_link(self, time: float, a, b, symmetric: bool = True) -> "FaultSchedule":
        return self.add(time, "restore_link", a=a, b=b, symmetric=symmetric)

    def sorted_events(self) -> list[FaultEvent]:
        return sorted(self.events, key=lambda e: e.time)

    def crashes(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == "crash"]

    def __len__(self) -> int:
        return len(self.events)

    def shifted(self, offset: float) -> "FaultSchedule":
        """The same schedule delayed by ``offset`` seconds (e.g. to skip a
        warm-up phase)."""
        return FaultSchedule(
            events=[
                FaultEvent(
                    time=e.time + offset, kind=e.kind, target=e.target, args=e.args
                )
                for e in self.events
            ]
        )


__all__ = ["FaultEvent", "FaultSchedule", "VALID_KINDS"]
