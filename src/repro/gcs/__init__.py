"""A partitionable, virtually synchronous group communication system.

This package implements, from scratch on the simulation substrate, the GCS
properties the paper relies on (Section 3.2):

* a **membership service** delivering views of the network topology that
  are *precise* while the network is stable, with one process's failure
  reflected consistently across all the groups it belongs to;
* **reliable multicast** to named groups, **totally ordered** within each
  configuration (one total order across all groups, which also yields the
  causal ordering across groups the paper asks for);
* **virtual synchrony**: processes that move together from one view to the
  next deliver the same set of messages in the earlier view (implemented by
  a flush round during view formation);
* **open groups**: a process (in particular a client) need not be a member
  of a group to multicast to it.

Architecture (the Transis/Spread daemon model): server processes run
:class:`~repro.gcs.daemon.GcsDaemon`, which maintains one *configuration*
(daemon-level membership) per partition component; per-group views are
derived from the configuration plus a replicated group-membership map that
is updated by totally ordered join/leave events.  Clients use
:class:`~repro.gcs.client_api.GcsClient`, which funnels group-addressed
messages through any live contact daemon.
"""

from repro.gcs.client_api import GcsClient
from repro.gcs.daemon import GcsDaemon
from repro.gcs.endpoint import GcsApplication
from repro.gcs.settings import GcsSettings
from repro.gcs.view import Configuration, GroupView, ViewId

__all__ = [
    "Configuration",
    "GcsApplication",
    "GcsClient",
    "GcsDaemon",
    "GcsSettings",
    "GroupView",
    "ViewId",
]
