"""Vector clocks — used by the specification monitors to *check* causal
delivery across groups.

The GCS itself does not need vector clocks at run time: one sequencer
orders all groups of a configuration into a single total order, so any
message causally after another (within the component) is also sequenced
after it.  The monitors use these clocks to verify that claim rather than
assume it.
"""

from __future__ import annotations

from typing import Hashable, Iterable


class VectorClock:
    """A mapping from node id to event counter with the usual partial order."""

    def __init__(self, entries: dict | None = None) -> None:
        self._entries: dict[Hashable, int] = dict(entries or {})

    def copy(self) -> "VectorClock":
        return VectorClock(self._entries)

    def get(self, node: Hashable) -> int:
        return self._entries.get(node, 0)

    def increment(self, node: Hashable) -> "VectorClock":
        """Return a new clock with ``node``'s component advanced by one."""
        clock = self.copy()
        clock._entries[node] = clock.get(node) + 1
        return clock

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (the receive rule)."""
        merged = dict(self._entries)
        for node, count in other._entries.items():
            if merged.get(node, 0) < count:
                merged[node] = count
        return VectorClock(merged)

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        return all(count <= other.get(node) for node, count in self._entries.items())

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        nodes = set(self._entries) | set(other._entries)
        return all(self.get(n) == other.get(n) for n in nodes)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(frozenset((n, c) for n, c in self._entries.items() if c))

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}:{c}" for n, c in sorted(self._entries.items(), key=lambda kv: str(kv[0])))
        return f"VC({inner})"

    @staticmethod
    def zero(nodes: Iterable[Hashable] = ()) -> "VectorClock":
        return VectorClock({node: 0 for node in nodes})


__all__ = ["VectorClock"]
