"""Client access to the GCS: open-group sends through contact daemons.

Clients are not daemons — they hold no membership state and see no views.
A client multicasts to a *group name* by handing the message to any live
contact daemon, which acknowledges receipt and injects the message into its
configuration's total order on the client's behalf.  If the contact stays
silent the client rotates to the next one and retransmits; the request id
travels with the message, so double injection is suppressed by the
daemons' duplicate filters.

This realizes the paper's design rule that "the client need not be aware of
the current membership of this group" (Section 3.1): a client only ever
names groups, never members.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.gcs.messages import ClientAck, ClientMcast, PtpData, RequestId
from repro.gcs.settings import GcsSettings
from repro.sim.network import Message, Network
from repro.sim.process import Process
from repro.sim.topology import NodeId


class _Outstanding:
    __slots__ = ("mcast", "retries", "timer")

    def __init__(self, mcast: ClientMcast) -> None:
        self.mcast = mcast
        self.retries = 0
        self.timer = None


class GcsClient(Process):
    """A client-side endpoint.

    Args:
        node_id: the client's address.
        network: the simulated network.
        contacts: daemon ids the client may use as entry points (in the
            framework this is the full server list, learned out of band).
        app: optional object with ``on_ptp(sender, payload)`` and
            ``on_send_failed(group, payload)`` callbacks.
        settings: timing constants (ack timeout, retry limit).
    """

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        contacts: Iterable[NodeId],
        app: Any = None,
        settings: GcsSettings | None = None,
    ) -> None:
        super().__init__(node_id, network)
        self.contacts = list(contacts)
        if not self.contacts:
            raise ValueError("a client needs at least one contact daemon")
        self.app = app
        self.settings = settings or GcsSettings()
        self._counter = itertools.count()
        self._contact_index = 0
        self._outstanding: dict[RequestId, _Outstanding] = {}
        self.sends_failed = 0

    @property
    def current_contact(self) -> NodeId:
        return self.contacts[self._contact_index % len(self.contacts)]

    def rotate_contact(self) -> None:
        self._contact_index += 1

    def mcast(self, group: str, payload: Any, size: int = 1) -> RequestId:
        """Send ``payload`` to every current member of ``group`` via the
        total order.  Retries through other contacts until acknowledged."""
        request_id = RequestId(self.node_id, self.incarnation, next(self._counter))
        mcast = ClientMcast(
            request_id=request_id, group=group, payload=payload, size_estimate=size
        )
        entry = _Outstanding(mcast)
        self._outstanding[request_id] = entry
        self._transmit(request_id)
        return request_id

    def _transmit(self, request_id: RequestId) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None or not self.is_up():
            return
        self.send(
            self.current_contact,
            entry.mcast,
            kind="gcs.client_mcast",
            size=entry.mcast.size_estimate,
        )
        entry.timer = self.set_timer(
            self.settings.client_ack_timeout,
            lambda: self._on_ack_timeout(request_id),
            label=f"client-ack:{self.node_id}",
        )

    def _on_ack_timeout(self, request_id: RequestId) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None:
            return
        entry.retries += 1
        if entry.retries > self.settings.client_max_retries:
            del self._outstanding[request_id]
            self.sends_failed += 1
            self.trace("client.send_failed", group=entry.mcast.group)
            if self.app is not None:
                self.app.on_send_failed(entry.mcast.group, entry.mcast.payload)
            return
        self.rotate_contact()
        self._transmit(request_id)

    @property
    def unacked_count(self) -> int:
        return len(self._outstanding)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, ClientAck):
            entry = self._outstanding.pop(payload.request_id, None)
            if entry is not None and entry.timer is not None:
                entry.timer.cancel()
        elif isinstance(payload, PtpData):
            if self.app is not None:
                self.app.on_ptp(message.sender, payload.payload)
        else:  # pragma: no cover - defensive
            self.trace("client.unknown_payload", type=type(payload).__name__)

    def on_recover(self) -> None:
        self._outstanding.clear()


__all__ = ["GcsClient"]
