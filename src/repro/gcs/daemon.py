"""The GCS daemon: one process running the full protocol stack.

A :class:`GcsDaemon` combines

* a failure detector — the all-pairs heartbeat mesh or the SWIM gossip
  detector, selected by ``settings.membership_mode``,
* the membership engine (view formation with flush),
* the sequencer-based total order of its current configuration, and
* the named-group layer (replicated group map, derived group views,
  open-group injection for clients),

and exposes the endpoint API the framework is written against: ``join`` /
``leave`` / ``mcast`` / ``send_ptp`` plus application callbacks for
delivered messages, group views and configuration changes
(:class:`~repro.gcs.endpoint.GcsApplication`).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.gcs.failure_detector import FailureDetector
from repro.gcs.groups import GroupMap, MEMBERSHIP_GROUP
from repro.gcs.membership import MembershipEngine
from repro.gcs.messages import (
    AttemptId,
    ClientAck,
    ClientMcast,
    Heartbeat,
    Install,
    NackSeqs,
    OrderRequest,
    Propose,
    ProposeNack,
    PtpData,
    RequestId,
    ResyncRequired,
    Sequenced,
    SequencedBatch,
    SyncReply,
)
from repro.gcs.ordering import DuplicateFilter, HoldbackBuffer, PendingRequests
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.gcs.swim import SwimDetector
from repro.gcs.view import Configuration, GroupView, ViewId
from repro.sim.network import Message, Network
from repro.sim.process import Process
from repro.sim.topology import NodeId


class GcsDaemon(Process):
    """A group-communication daemon (one per server machine).

    Args:
        node_id: this daemon's address.
        network: the transport injection point — a simulated
            :class:`~repro.sim.network.Network` in experiments, or a
            :class:`repro.net.runtime.LiveNetwork` (same interface, real
            sockets underneath) in live deployments.  The daemon never
            learns which one it got.
        world: all daemon ids that may ever exist (heartbeat targets; the
            paper likewise assumes a-priori knowledge of the service).
        app: optional :class:`~repro.gcs.endpoint.GcsApplication` receiving
            deliveries and views.
        settings: protocol timing constants.
        monitor: optional spec monitor receiving protocol-level events
            (used by the property tests).
    """

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        world: Iterable[NodeId],
        app: Any = None,
        settings: GcsSettings | None = None,
        monitor: SpecMonitor | None = None,
    ) -> None:
        super().__init__(node_id, network)
        self.world: list[NodeId] = [n for n in world]
        if node_id not in self.world:
            self.world.append(node_id)
        self.app = app
        self.settings = settings or GcsSettings()
        self.monitor = monitor
        if self.settings.membership_mode not in ("heartbeat", "gossip"):
            raise ValueError(
                f"unknown membership_mode {self.settings.membership_mode!r}"
                " (expected 'heartbeat' or 'gossip')"
            )
        # The failure detector: the classic all-pairs heartbeat mesh, or
        # the SWIM gossip detector (same surface, constant per-node probe
        # work — see gcs/swim.py).  ``self.fd`` is what every consumer
        # above the detector interface uses; ``self.swim`` is non-None
        # only in gossip mode, for the wiring that is protocol-specific
        # (probe timer, swim message dispatch).
        self.swim: SwimDetector | None = None
        if self.settings.membership_mode == "gossip":
            self.swim = SwimDetector(
                node_id,
                self.world,
                self.settings,
                lambda: self.sim.now,
                self._on_fd_change,
                self.send_protocol,
                self._swim_local_state,
                self._swim_schedule,
            )
            self.fd: Any = self.swim
        else:
            self.fd = FailureDetector(
                node_id,
                self.settings.suspect_timeout,
                lambda: self.sim.now,
                self._on_fd_change,
            )
        self.membership = MembershipEngine(self)
        self.config = Configuration.make(ViewId(0, node_id), [node_id])
        self.holdback = HoldbackBuffer()
        self.group_map = GroupMap()
        self.dup_filter = DuplicateFilter()
        self.pending = PendingRequests()
        self._pending_since: dict[RequestId, float] = {}
        self._req_counter = itertools.count()
        self._next_seq = 0
        self._my_groups_intent: set[str] = set()
        self._last_group_view: dict[str, GroupView] = {}
        self._member_incarnations: dict[NodeId, int] = {}
        self._client_acks_pending: dict[RequestId, NodeId] = {}
        self._membership_event_guard: dict[tuple, int] = {}
        self._config_installed_at = 0.0
        self._hb_timer = None
        self._probe_timer = None
        # sequencer batching: messages stamped but not yet disseminated
        self._batch: list[Sequenced] = []
        self._batch_timer = None
        # heartbeat piggybacking: when we last sent each peer a *real*
        # heartbeat (traffic suppresses them, but view-id/incarnation
        # reporting must not starve — see heartbeat_refresh_factor)
        self._last_hb_sent: dict[NodeId, float] = {}
        # members removed by an installed view since this incarnation
        # booted; only consulted when settings.readmit_evicted is off
        # (the "partition-amnesia" chaos plant)
        self._evicted: set[NodeId] = set()
        self._amnesia_traced: set[NodeId] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._boot()

    def on_recover(self) -> None:
        """After a crash, come back as a fresh singleton configuration; the
        heartbeat exchange merges us back into the component.  All group
        memberships are gone — the application re-joins what it needs."""
        self.fd.reset()
        self.membership.reset()
        self.config = Configuration.make(
            ViewId(self.membership.view_counter + 1, self.node_id), [self.node_id]
        )
        self.membership.view_counter += 1
        self.holdback = HoldbackBuffer()
        self.group_map = GroupMap()
        self.dup_filter = DuplicateFilter()
        self.pending.clear()
        self._pending_since.clear()
        self._next_seq = 0
        self._batch = []
        self._batch_timer = None
        self._last_hb_sent.clear()
        self._evicted.clear()
        self._amnesia_traced.clear()
        self._my_groups_intent.clear()
        self._last_group_view.clear()
        self._client_acks_pending.clear()
        self._membership_event_guard.clear()
        self._boot()
        if self.app is not None and hasattr(self.app, "on_daemon_recovered"):
            self.app.on_daemon_recovered()

    def _boot(self) -> None:
        self._config_installed_at = self.sim.now
        self._emit_config_view()
        # process-lifetime timer: crash() cancels every timer of this node
        self._hb_timer = self.set_periodic_timer(  # repro-lint: allow(P202)
            self.settings.heartbeat_interval,
            self._tick,
            label=f"hb:{self.node_id}",
            first_delay=0.0 if self.sim.now == 0 else None,
        )
        if self.swim is not None:
            # gossip mode: the probe round runs on its own cadence (the
            # protocol tick above keeps driving membership/order upkeep)
            self._probe_timer = self.set_periodic_timer(  # repro-lint: allow(P202)
                self.settings.probe_interval,
                self.swim.on_probe_tick,
                label=f"swim:{self.node_id}",
                first_delay=0.0 if self.sim.now == 0 else None,
            )

    def _tick(self) -> None:
        if self.swim is None:
            self._broadcast_heartbeat()
        self.fd.check()
        self.membership.on_tick()
        if self.config_divergence_detected():
            self.membership.reconfigure()
        self._resubmit_stale()
        self._nack_gaps()
        self.holdback.prune(self.settings.holdback_keep)

    def _broadcast_heartbeat(self, force: bool = False) -> None:
        """Heartbeat every world peer, skipping peers that recent outgoing
        protocol traffic already proved us alive to (piggybacking).  A full
        heartbeat still goes out every ``heartbeat_refresh_factor`` intervals
        per peer, because only heartbeats carry our view id and incarnation
        (the divergence and restart detectors feed on them)."""
        heartbeat = Heartbeat(
            self.node_id,
            self.incarnation,
            self.membership.view_counter,
            config_view_id=self.config.view_id,
        )
        now = self.sim.now
        interval = self.settings.heartbeat_interval
        refresh_after = interval * self.settings.heartbeat_refresh_factor
        for peer in self.world:
            if peer == self.node_id:
                continue
            if (
                not force
                and self.settings.piggyback_liveness
                and now - self._last_hb_sent.get(peer, float("-inf")) < refresh_after
                and now - self.network.last_sent_at(self.node_id, peer) < interval
            ):
                continue
            self._last_hb_sent[peer] = now
            self.send(peer, heartbeat, kind="gcs.heartbeat")

    def _on_fd_change(self) -> None:
        self.membership.reconfigure()

    def _swim_local_state(self) -> tuple[int, int, ViewId | None]:
        """What the SWIM detector stamps on every message it authors
        (the gossip-mode equivalent of the heartbeat's header fields)."""
        return (
            self.incarnation,
            self.membership.view_counter,
            self.config.view_id,
        )

    def _swim_schedule(self, delay: float, callback: Any) -> None:
        """One-shot timers for the probe state machine.  The handles are
        deliberately dropped: probe deadlines are keyed by sequence number
        inside the detector (a late firing for an acked probe is a no-op),
        and ``crash()`` cancels them with every other timer of this node."""
        self.set_timer(delay, callback, label=f"swim:{self.node_id}")

    # ------------------------------------------------------------------
    # public endpoint API
    # ------------------------------------------------------------------
    def join(self, group: str) -> None:
        """Join a named group (takes effect when the event is ordered)."""
        if group == MEMBERSHIP_GROUP:
            raise ValueError(f"{MEMBERSHIP_GROUP} is reserved")
        if group in self._my_groups_intent:
            return
        self._my_groups_intent.add(group)
        self._submit(MEMBERSHIP_GROUP, ("join", group, self.node_id))

    def leave(self, group: str) -> None:
        """Leave a named group."""
        if group not in self._my_groups_intent:
            return
        self._my_groups_intent.discard(group)
        self._submit(MEMBERSHIP_GROUP, ("leave", group, self.node_id))

    def mcast(self, group: str, payload: Any, size: int = 1) -> RequestId:
        """Reliable, totally ordered multicast to ``group`` (open-group:
        the sender need not be a member)."""
        return self._submit(group, payload, size=size)

    def send_ptp(self, dest: NodeId, payload: Any, size: int = 1) -> None:
        """Plain point-to-point send, outside the total order."""
        self.send(dest, PtpData(payload), kind="gcs.ptp", size=size)

    def my_groups(self) -> frozenset[str]:
        return frozenset(self._my_groups_intent)

    def member_incarnations(self) -> dict[NodeId, int]:
        """The incarnation of each current configuration member, as
        recorded at install time.  A change between two views of the same
        member set means that member restarted (and lost its volatile
        state) — the framework uses this to trigger a state exchange even
        for restart-without-membership-change events."""
        return dict(self._member_incarnations)

    def group_view(self, group: str) -> GroupView:
        """The group's current view as derived from local agreed state."""
        return self.group_map.view(group, self.config, self.holdback.delivered_upto)

    def members_of(self, group: str) -> frozenset[NodeId]:
        return frozenset(
            m for m in self.group_map.members(group) if m in self.config
        )

    # ------------------------------------------------------------------
    # submission / total order
    # ------------------------------------------------------------------
    def _submit(
        self,
        group: str,
        payload: Any,
        size: int = 1,
        request: OrderRequest | None = None,
    ) -> RequestId:
        if request is None:
            request = OrderRequest(
                request_id=RequestId(
                    self.node_id, self.incarnation, next(self._req_counter)
                ),
                group=group,
                payload=payload,
                size_estimate=size,
            )
        self.pending.add(request)
        self._pending_since[request.request_id] = self.sim.now
        self._send_order_request(request)
        return request.request_id

    def _send_order_request(self, request: OrderRequest) -> None:
        if self.membership.forming:
            return  # resubmitted on install
        self.send(
            self.config.sequencer,
            request,
            kind="gcs.order_req",
            size=request.size_estimate,
        )

    def _resubmit_stale(self) -> None:
        """Requests can be lost when their order request or its sequencing
        raced a view change; retry ones that have been pending too long
        (the duplicate filter makes retries idempotent)."""
        if self.membership.forming:
            return
        threshold = self.sim.now - 2 * self.settings.suspect_timeout
        for request in self.pending.outstanding():
            if self._pending_since.get(request.request_id, 0.0) <= threshold:
                self._pending_since[request.request_id] = self.sim.now
                self._send_order_request(request)

    def _on_order_request(self, request: OrderRequest) -> None:
        if self.membership.forming or self.config.sequencer != self.node_id:
            return
        sequenced = Sequenced(
            config_view_id=self.config.view_id, seq=self._next_seq, request=request
        )
        self._next_seq += 1
        if self.settings.batching_enabled and len(self.config.members) > 1:
            self._batch.append(sequenced)
            if len(self._batch) >= self.settings.batch_max:
                self._flush_batch()
            elif self._batch_timer is None or self._batch_timer.finished:
                self._batch_timer = self.set_timer(
                    self.settings.batch_window,
                    self._flush_batch,
                    label=f"batch:{self.node_id}",
                )
        else:
            for member in self.config.members:
                if member == self.node_id:
                    continue
                self.send(
                    member,
                    sequenced,
                    kind="gcs.sequenced",
                    size=request.size_estimate,
                )
        # The sequencer takes its own copy synchronously: a message it has
        # sequenced must be visible to any sync reply it builds from this
        # instant on, or a racing view formation could install a view
        # whose flush union silently misses the message.  (With batching
        # this also covers messages buffered but never flushed: they are in
        # the holdback, hence in the sync reply, hence in the flush union.)
        self._on_sequenced(sequenced)

    def _flush_batch(self) -> None:
        """Disseminate the accumulated window as one SequencedBatch per
        configuration member."""
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        if not self._batch:
            return
        batch = SequencedBatch(
            # every buffered entry was stamped in the current configuration
            # (the buffer is discarded on install/resync/recovery)
            config_view_id=self._batch[0].config_view_id,
            messages=tuple(self._batch),
        )
        self._batch = []
        for member in self.config.members:
            if member == self.node_id:
                continue
            self.send(
                member,
                batch,
                kind="gcs.sequenced_batch",
                size=batch.size_estimate,
            )

    def _discard_batch(self) -> None:
        """Drop buffered-but-unsent sequenced messages (configuration died;
        survivors obtain them from the flush union instead)."""
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        self._batch = []

    def _on_sequenced(self, sequenced: Sequenced) -> None:
        if sequenced.config_view_id != self.config.view_id:
            return
        self.holdback.insert(sequenced)
        if not self.membership.forming:
            self.flush_ready()

    def _on_sequenced_batch(self, batch: SequencedBatch) -> None:
        """Unpack a batch into the holdback buffer.  Entries are filtered
        per message, so a batch whose window straddled a view change (or a
        duplicate retransmission) contributes only its live entries."""
        live = tuple(
            m for m in batch.messages if m.config_view_id == self.config.view_id
        )
        if not live:
            return
        self.holdback.insert_batch(
            SequencedBatch(config_view_id=live[0].config_view_id, messages=live)
        )
        if not self.membership.forming:
            self.flush_ready()

    def flush_ready(self) -> None:
        """Deliver everything now contiguous in the holdback buffer."""
        for message in self.holdback.take_ready():
            self._deliver(message)

    def _nack_gaps(self) -> None:
        """Lossy links can drop a Sequenced message, leaving a holdback
        gap that would otherwise stall delivery until the next view
        change; ask the sequencer to retransmit the missing range."""
        if self.membership.forming or self.config.sequencer == self.node_id:
            return
        missing = self.holdback.missing_seqs()
        if missing:
            self.send(
                self.config.sequencer,
                NackSeqs(config_view_id=self.config.view_id, seqs=tuple(missing)),
                kind="gcs.nack_seq",
            )

    def _on_nack_seqs(self, nack: NackSeqs, sender: NodeId) -> None:
        if (
            nack.config_view_id != self.config.view_id
            or self.config.sequencer != self.node_id
        ):
            return
        resend: list[Sequenced] = []
        unfillable = False
        for seq in nack.seqs:
            message = self.holdback.get(seq)
            if message is not None:
                resend.append(message)
            elif seq < self.holdback.pruned_below:
                # The peer lags beyond the retransmission horizon: this gap
                # can never be filled in place.  Silently ignoring it (the
                # pre-fix behaviour) stalled the peer forever — heartbeats
                # kept flowing, so no view change ever repaired it.
                unfillable = True
        if unfillable:
            self.trace("gcs.nack_unfillable", peer=str(sender))
            self.send(
                sender,
                ResyncRequired(config_view_id=self.config.view_id),
                kind="gcs.resync",
            )
            return
        if not resend:
            return
        if self.settings.batching_enabled:
            batch = SequencedBatch(
                config_view_id=self.config.view_id, messages=tuple(resend)
            )
            self.send(
                sender, batch, kind="gcs.sequenced_batch", size=batch.size_estimate
            )
        else:
            for message in resend:
                self.send(
                    sender,
                    message,
                    kind="gcs.sequenced",
                    size=message.request.size_estimate,
                )

    def _on_resync_required(self, resync: ResyncRequired) -> None:
        """The sequencer told us our holdback gap is beyond repair: abandon
        the configuration like a freshly recovered daemon (fresh singleton
        view) — but keep our identity: incarnation, group intents, pending
        requests and the duplicate filter all survive, so re-merging is an
        ordinary join and retransmissions stay idempotent.  The messages we
        missed are lost to us, which is sound precisely because we do *not*
        transition to the next view together with the daemons that
        delivered them (virtual synchrony binds only joint transitions)."""
        if resync.config_view_id != self.config.view_id:
            return
        if len(self.config.members) == 1:
            return
        self.trace("gcs.resync_to_singleton", abandoned=str(self.config.view_id))
        counter = self.membership.restart_as_singleton()
        self.config = Configuration.make(
            ViewId(counter, self.node_id), [self.node_id]
        )
        self._config_installed_at = self.sim.now
        self.holdback = HoldbackBuffer()
        self._next_seq = 0
        self._discard_batch()
        self._record_member_incarnations()
        self._emit_config_view()
        for group in sorted(set(self.group_map.groups()) | set(self._last_group_view)):
            self._emit_group_view(group, change_seq=0)
        # Announce the new view immediately (piggyback suppression would
        # otherwise delay the heartbeat that lets peers spot the divergence
        # and pull us back in).
        if self.swim is not None:
            self.swim.announce()
        else:
            self._broadcast_heartbeat(force=True)
        self.membership.reconfigure()

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _deliver(self, sequenced: Sequenced) -> None:
        request = sequenced.request
        request_id = request.request_id
        if self.dup_filter.is_duplicate(request_id):
            self._settle_request(request_id)
            return
        if request.group != MEMBERSHIP_GROUP:
            members = [
                m
                for m in self.group_map.members(request.group)
                if m in self.config
            ]
            if not members:
                # Nobody can apply this message: treating it as delivered
                # would silently lose it (and poison the duplicate filter
                # across a later merge).  Leave it pending — the origin
                # retransmits until the group has members again, or the
                # client gives up visibly.
                return
        self._settle_request(request_id)
        self.dup_filter.mark_delivered(request_id)
        if self.monitor is not None:
            self.monitor.record_delivery(
                self.node_id, self.config.view_id, sequenced.seq, request
            )
        if request.group == MEMBERSHIP_GROUP:
            self._apply_membership_event(
                request.payload, sequenced.seq, request_id
            )
            return
        if self.node_id in self.group_map.members(request.group):
            if self.app is not None:
                self.app.on_group_message(
                    request.group, request_id, request.payload, sequenced.seq
                )

    def _settle_request(self, request_id: RequestId) -> None:
        """The request is (now known to be) delivered: stop retransmitting
        it and release any client waiting for an end-to-end ack."""
        self.pending.resolve(request_id)
        self._pending_since.pop(request_id, None)
        waiting_client = self._client_acks_pending.pop(request_id, None)
        if waiting_client is not None:
            self.send(waiting_client, ClientAck(request_id), kind="gcs.client_ack")

    def _apply_membership_event(
        self, event: tuple, change_seq: int, request_id: RequestId
    ) -> None:
        action, group, node = event
        # Delivery is not FIFO per origin (a lost join/leave can be
        # retransmitted after newer events): apply an event only if it is
        # the newest we have seen for this (group, node), so a late
        # retransmitted 'join' can never undo a subsequent 'leave'.
        guard_key = (group, str(node), request_id.incarnation)
        if self._membership_event_guard.get(guard_key, -1) >= request_id.counter:
            return
        self._membership_event_guard[guard_key] = request_id.counter
        if action == "join":
            changed = self.group_map.join(group, node)
        else:
            changed = self.group_map.leave(group, node)
        if changed:
            self._emit_group_view(group, change_seq)

    # ------------------------------------------------------------------
    # membership engine plumbing
    # ------------------------------------------------------------------
    def send_protocol(
        self, dest: NodeId, payload: Any, kind: str, size: int = 1
    ) -> None:
        self.send(dest, payload, kind=kind, size=size)

    def config_divergence_detected(self) -> bool:
        """True when a reachable peer persistently reports a different
        installed configuration — this daemon may be a 'zombie': dropped
        from a reformation it never heard about, still happily serving.
        A grace of two heartbeat intervals filters the ordinary window in
        which peers simply have not heartbeated their new view yet."""
        if not self.settings.detect_divergence:
            return False
        grace = 2 * self.settings.heartbeat_interval
        if self.sim.now - self._config_installed_at < grace:
            return False
        return bool(
            self.fd.divergent_peers(
                self.config.view_id,
                heard_after=self._config_installed_at + grace,
            )
        )

    def incarnations_stale(self) -> bool:
        """True when a current member restarted since the view was
        installed (its heartbeats carry a new incarnation).  A restart is a
        membership change even when the estimate set looks unchanged —
        the restarted peer lost all its state and sits in a singleton
        view, so a new view must be formed to reabsorb it."""
        for member in self.config.members:
            if member == self.node_id:
                continue
            incarnation = self.fd.incarnation_of(member)
            if incarnation is None:
                continue
            if incarnation != self._member_incarnations.get(member, incarnation):
                return True
        return False

    def _record_member_incarnations(self) -> None:
        self._member_incarnations = {}
        for member in self.config.members:
            if member == self.node_id:
                self._member_incarnations[member] = self.incarnation
            else:
                incarnation = self.fd.incarnation_of(member)
                if incarnation is not None:
                    self._member_incarnations[member] = incarnation

    def build_sync_reply(self, attempt: AttemptId, view_counter: int) -> SyncReply:
        return SyncReply(
            attempt=attempt,
            sender=self.node_id,
            config_view_id=self.config.view_id,
            sequenced=self.holdback.all_received(),
            unsequenced=tuple(self.pending.outstanding()),
            my_groups=tuple(sorted(self._my_groups_intent)),
            delivered_counters=self.dup_filter.snapshot(),
            view_counter=view_counter,
            incarnation=self.incarnation,
        )

    def apply_install(self, install: Install) -> None:
        # 1. Finish the old configuration: deliver the agreed tail suffix.
        tail = install.per_config_tail.get(self.config.view_id, ())
        for message in tail:
            if message.seq >= self.holdback.delivered_upto:
                self._deliver(message)
        # 2. Switch to the new configuration.
        previous_members = set(self.config.members)
        self.config = Configuration.make(install.view_id, install.members)
        self._config_installed_at = self.sim.now
        self._evicted |= previous_members - set(install.members) - {self.node_id}
        self._evicted -= set(install.members)
        # Incarnations come from the members' own sync replies — the only
        # authoritative source (the failure detector may not have heard a
        # restarted member's first new-incarnation heartbeat yet).
        if install.member_incarnations:
            self._member_incarnations = dict(install.member_incarnations)
        else:
            self._record_member_incarnations()
        self._next_seq = len(install.orphans)
        self.holdback = HoldbackBuffer()
        self._discard_batch()
        self.group_map = GroupMap.from_snapshot(install.group_map)
        self.dup_filter.merge(install.delivered_counters)
        # Requests orphaned by the old configuration's death are delivered
        # at the head of the new configuration (never re-using old
        # sequence numbers, which may have been bound to other requests by
        # the dead sequencer).  Every member seeds the same list, so the
        # new configuration starts with an agreed prefix.
        for seq, request in enumerate(install.orphans):
            self.holdback.insert(
                Sequenced(
                    config_view_id=self.config.view_id,
                    seq=seq,
                    request=request,
                )
            )
        self.trace(
            "gcs.view_installed",
            view=str(install.view_id),
            members=install.members,
        )
        self._emit_config_view()
        groups_to_emit = set(self.group_map.groups()) | set(self._last_group_view)
        for group in sorted(groups_to_emit):
            self._emit_group_view(group, change_seq=0)
        # 3. Deliver the seeded orphan prefix, then re-drive any still
        # interrupted requests into the new configuration.
        self.flush_ready()
        for request in self.pending.outstanding():
            self._pending_since[request.request_id] = self.sim.now
            self._send_order_request(request)

    def _emit_config_view(self) -> None:
        if self.monitor is not None:
            self.monitor.record_config_view(self.node_id, self.config)
        if self.app is not None:
            self.app.on_config_view(self.config)

    def _emit_group_view(self, group: str, change_seq: int) -> None:
        view = self.group_map.view(group, self.config, change_seq)
        previous = self._last_group_view.get(group)
        if self.node_id in view.members:
            self._last_group_view[group] = view
        elif previous is not None:
            del self._last_group_view[group]
        else:
            return  # never was a member; nothing to tell the app
        if self.monitor is not None:
            self.monitor.record_group_view(self.node_id, view)
        if self.app is not None:
            self.app.on_group_view(view)

    # ------------------------------------------------------------------
    # client injection (open groups)
    # ------------------------------------------------------------------
    def _on_client_mcast(self, mcast: ClientMcast, sender: NodeId) -> None:
        if self.dup_filter.is_duplicate(mcast.request_id):
            # Already delivered (e.g. the client retried through us after
            # another contact succeeded): acknowledge straight away.
            self.send(sender, ClientAck(mcast.request_id), kind="gcs.client_ack")
            return
        if not self.members_of(mcast.group):
            # No member of the target group is reachable in this daemon's
            # configuration — e.g. it just recovered into a transient
            # singleton view with a fresh group map.  Accepting the
            # injection would "deliver" the message to nobody while the
            # duplicate filter (merged into the next configuration)
            # permanently suppresses any redelivery: an acknowledged
            # update would vanish.  Stay silent instead; the client's ack
            # timeout rotates it to a contact that can actually deliver.
            self.trace("gcs.client_mcast_refused", group=mcast.group)
            return
        if self.settings.end_to_end_client_acks:
            # End-to-end acknowledgement: ack only when the request is
            # actually *delivered* in the total order (see _deliver).  If
            # we crash first, the client times out and retries through
            # another contact; the duplicate filter keeps delivery
            # exactly-once.
            self._client_acks_pending[mcast.request_id] = sender
        else:
            # Ablation: acknowledge on receipt (fire-and-forget handoff to
            # the ordering layer) — a contact crash can now silently drop
            # an acknowledged update.
            self.send(sender, ClientAck(mcast.request_id), kind="gcs.client_ack")
        request = OrderRequest(
            request_id=mcast.request_id,
            group=mcast.group,
            payload=mcast.payload,
            size_estimate=mcast.size_estimate,
        )
        self._submit(mcast.group, mcast.payload, request=request)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        payload = message.payload
        readmitting = self.settings.readmit_evicted
        if not readmitting and message.sender in self._evicted:
            # The "partition-amnesia" plant: liveness evidence from a
            # member this daemon once evicted is discarded, so a healed
            # partition never re-merges.  Correct configurations always
            # run with readmit_evicted=True, which skips this branch.
            if message.sender not in self._amnesia_traced:
                self._amnesia_traced.add(message.sender)
                self.trace("gcs.evicted_liveness_ignored", peer=message.sender)
            if isinstance(payload, Heartbeat):
                return
            if self.swim is not None and self.swim.owns(payload):
                # gossip-mode liveness evidence from an evicted peer is
                # discarded the same way the mesh drops its heartbeats
                return
        elif isinstance(payload, Heartbeat):
            self.fd.on_heartbeat(payload)
            return
        elif self.swim is not None and self.swim.on_message(
            payload, message.sender
        ):
            return
        if self.settings.piggyback_liveness and (
            readmitting or message.sender not in self._evicted
        ):
            # Any protocol message is liveness evidence for its sender
            # (delivery metadata carries the sender), which is what lets
            # the sender suppress explicit heartbeats on busy links.
            self.fd.observe_traffic(message.sender)
        if isinstance(payload, SequencedBatch):
            self._on_sequenced_batch(payload)
        elif isinstance(payload, Sequenced):
            self._on_sequenced(payload)
        elif isinstance(payload, OrderRequest):
            self._on_order_request(payload)
        elif isinstance(payload, ResyncRequired):
            self._on_resync_required(payload)
        elif isinstance(payload, Propose):
            self.membership.on_propose(payload, message.sender)
        elif isinstance(payload, SyncReply):
            self.membership.on_sync_reply(payload)
        elif isinstance(payload, Install):
            self.membership.on_install(payload)
        elif isinstance(payload, ProposeNack):
            self.membership.on_propose_nack(payload)
        elif isinstance(payload, NackSeqs):
            self._on_nack_seqs(payload, message.sender)
        elif isinstance(payload, ClientMcast):
            self._on_client_mcast(payload, message.sender)
        elif isinstance(payload, PtpData):
            if self.app is not None:
                self.app.on_ptp(message.sender, payload.payload)
        else:  # pragma: no cover - defensive
            self.trace("gcs.unknown_payload", type=type(payload).__name__)


__all__ = ["GcsDaemon"]
