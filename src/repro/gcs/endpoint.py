"""Application-facing callback protocols for the GCS.

The framework's server (:mod:`repro.core.server`) implements
:class:`GcsApplication`; the framework's client library implements
:class:`GcsClientApplication`.  Keeping these as structural protocols keeps
the GCS reusable for the tests, examples, and any future service.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.gcs.messages import RequestId
from repro.gcs.view import Configuration, GroupView
from repro.sim.topology import NodeId


@runtime_checkable
class GcsApplication(Protocol):
    """Callbacks a daemon delivers to its hosting application."""

    def on_config_view(self, config: Configuration) -> None:
        """A new daemon-level configuration was installed."""
        ...

    def on_group_view(self, view: GroupView) -> None:
        """A group this application belongs(ed) to changed membership."""
        ...

    def on_group_message(
        self, group: str, origin: RequestId, payload: Any, seq: int
    ) -> None:
        """A totally ordered multicast addressed to ``group`` arrived."""
        ...

    def on_ptp(self, sender: NodeId, payload: Any) -> None:
        """A point-to-point payload (outside the total order) arrived."""
        ...


@runtime_checkable
class GcsClientApplication(Protocol):
    """Callbacks delivered by a :class:`~repro.gcs.client_api.GcsClient`."""

    def on_ptp(self, sender: NodeId, payload: Any) -> None:
        """A point-to-point payload (e.g. a server response) arrived."""
        ...

    def on_send_failed(self, group: str, payload: Any) -> None:
        """A group send exhausted its retries without any daemon ack."""
        ...


__all__ = ["GcsApplication", "GcsClientApplication"]
