"""Heartbeat failure detector.

Each daemon periodically multicasts a :class:`~repro.gcs.messages.Heartbeat`
to every daemon in the world (the statically known set of potential
servers; the paper likewise assumes a-priori knowledge of the service
group's name).  A peer is *alive* if a heartbeat arrived within the suspect
timeout; it becomes suspected when the silence exceeds the timeout, and
alive again as soon as a heartbeat is heard — including after a partition
heals, which is how components discover each other and merge.

Incarnation numbers ride on heartbeats so a restarted peer is recognized as
a membership change even if it restarted faster than the suspect timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gcs.messages import Heartbeat
from repro.gcs.view import ViewId
from repro.sim.topology import NodeId


@dataclass
class _PeerState:
    last_heard: float
    incarnation: int
    config_view_id: ViewId | None = None
    # when the peer last *reported* its view id (a real heartbeat, not
    # mere traffic evidence) — divergence detection must compare against
    # this, or a stale view report kept "fresh" by data traffic would
    # trigger spurious reconfigurations.
    last_view_report: float = 0.0


class FailureDetector:
    """Tracks which daemons are currently believed alive.

    The detector is passive: the owning daemon feeds it heartbeats via
    :meth:`on_heartbeat` and pumps time via :meth:`check` (called from a
    periodic timer).  ``on_change`` fires whenever the alive set — or the
    incarnation of an alive peer — changes.
    """

    def __init__(
        self,
        me: NodeId,
        suspect_timeout: float,
        now: Callable[[], float],
        on_change: Callable[[], None],
    ) -> None:
        self.me = me
        self.suspect_timeout = suspect_timeout
        self._now = now
        self._on_change = on_change
        self._peers: dict[NodeId, _PeerState] = {}
        self._alive: set[NodeId] = set()
        self.max_view_counter_seen = 0
        # Conservative lower bound on the earliest instant any alive peer
        # can expire: check() is O(1) until the clock passes it.  Refreshes
        # (heartbeats, traffic) only push real expiries *later*, so a
        # stale-low bound costs one redundant scan, never a missed expiry.
        self._next_expiry = float("inf")
        # Observability for the bound (pinned by the unit test): how many
        # check() calls returned without scanning vs. scanned the table.
        self.idle_checks = 0
        self.full_scans = 0

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Feed one received heartbeat; may fire ``on_change``.

        A heartbeat carrying an incarnation *lower* than the one already
        recorded is stale pre-restart traffic (e.g. delayed in flight
        across the peer's crash/recovery) and is ignored outright — it
        must not resurrect the old incarnation's aliveness or roll the
        recorded incarnation backwards.
        """
        peer = heartbeat.sender
        if peer == self.me:
            return
        state = self._peers.get(peer)
        if state is not None and heartbeat.incarnation < state.incarnation:
            return
        self.max_view_counter_seen = max(
            self.max_view_counter_seen, heartbeat.view_counter
        )
        changed = False
        if state is None:
            self._peers[peer] = _PeerState(
                self._now(),
                heartbeat.incarnation,
                heartbeat.config_view_id,
                last_view_report=self._now(),
            )
            changed = True
        else:
            if heartbeat.incarnation != state.incarnation:
                changed = True
            state.last_heard = self._now()
            state.incarnation = heartbeat.incarnation
            state.config_view_id = heartbeat.config_view_id
            state.last_view_report = self._now()
        if peer not in self._alive:
            self._alive.add(peer)
            self._next_expiry = min(
                self._next_expiry, self._now() + self.suspect_timeout
            )
            changed = True
        if changed:
            self._on_change()

    def observe_traffic(self, peer: NodeId) -> None:
        """Feed delivery of *any* protocol message from ``peer`` as liveness
        evidence (heartbeat piggybacking: the sender suppresses explicit
        heartbeats on links its traffic already covers).

        Only refreshes peers that have introduced themselves with at least
        one real heartbeat — plain traffic carries no incarnation or view
        id, so an unknown sender stays unknown until its first heartbeat.
        """
        state = self._peers.get(peer)
        if state is None or peer == self.me:
            return
        state.last_heard = self._now()
        if peer not in self._alive:
            self._alive.add(peer)
            self._next_expiry = min(
                self._next_expiry, self._now() + self.suspect_timeout
            )
            self._on_change()

    def check(self) -> None:
        """Expire peers whose last heartbeat is older than the timeout.

        O(1) while the clock has not reached the tracked next-expiry
        bound — with hundreds of daemons ticking several times per
        suspect timeout, the common case is "nothing can have expired
        yet" and must not rescan the whole peer table.
        """
        now = self._now()
        if now <= self._next_expiry:
            self.idle_checks += 1
            return
        self.full_scans += 1
        expired: set[NodeId] = set()
        next_expiry = float("inf")
        for peer in sorted(self._alive, key=str):
            deadline = self._peers[peer].last_heard + self.suspect_timeout
            if now > deadline:
                expired.add(peer)
            else:
                next_expiry = min(next_expiry, deadline)
        self._next_expiry = next_expiry
        if expired:
            self._alive -= expired
            self._on_change()

    def forget(self, peer: NodeId) -> None:
        """Drop a peer immediately (used when a reply times out so the next
        formation attempt excludes it without waiting for heartbeat expiry)."""
        if peer in self._alive:
            self._alive.discard(peer)
            self._on_change()

    def reset(self) -> None:
        """Forget everything (used on process recovery)."""
        self._peers.clear()
        self._alive.clear()
        self._next_expiry = float("inf")

    def alive_peers(self) -> frozenset[NodeId]:
        """Peers currently believed alive (never includes ``me``)."""
        return frozenset(self._alive)

    def alive_set(self) -> frozenset[NodeId]:
        """Alive peers plus ``me`` — the membership estimate."""
        return frozenset(self._alive | {self.me})

    def incarnation_of(self, peer: NodeId) -> int | None:
        state = self._peers.get(peer)
        return state.incarnation if state else None

    def divergent_peers(
        self, my_config_view_id: ViewId, heard_after: float
    ) -> list[NodeId]:
        """Alive peers whose latest heartbeat (newer than ``heard_after``)
        reports a configuration different from mine.

        Persistent divergence means this daemon and the peer sit in
        different views while able to exchange heartbeats — the 'zombie
        view' hazard: a daemon dropped from a reformation that never
        notices, keeps serving, and loses everything at the next merge.
        Detecting it drives a reconfiguration that reunites the component.
        """
        divergent: list[NodeId] = []
        for peer in sorted(self._alive, key=str):
            state = self._peers[peer]
            if state.last_view_report < heard_after:
                continue
            if (
                state.config_view_id is not None
                and state.config_view_id != my_config_view_id
            ):
                divergent.append(peer)
        return divergent


__all__ = ["FailureDetector"]
