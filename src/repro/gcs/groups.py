"""Named groups: the replicated group-membership map and derived views.

Joins and leaves travel through the configuration's total order (in the
reserved ``__membership__`` group), so every daemon applies them to its
copy of the map in the same order.  A group's *view* is the intersection of
the map entry with the current configuration; because both inputs are agreed,
all members derive identical group views — the paper's requirement that a
process's failure be reflected consistently in all its groups.
"""

from __future__ import annotations

from repro.gcs.view import Configuration, GroupView
from repro.sim.topology import NodeId

MEMBERSHIP_GROUP = "__membership__"


class GroupMap:
    """group name -> set of daemons that have joined it.

    The map may list daemons outside the current configuration (they joined
    in some component and are currently unreachable); such entries are kept
    so a future merge restores them, but they are filtered out of views.
    """

    def __init__(self) -> None:
        self._members: dict[str, set[NodeId]] = {}

    def join(self, group: str, node: NodeId) -> bool:
        """Apply a join; returns True if the map changed."""
        members = self._members.setdefault(group, set())
        if node in members:
            return False
        members.add(node)
        return True

    def leave(self, group: str, node: NodeId) -> bool:
        """Apply a leave; returns True if the map changed."""
        members = self._members.get(group)
        if not members or node not in members:
            return False
        members.discard(node)
        if not members:
            del self._members[group]
        return True

    def drop_node(self, node: NodeId) -> list[str]:
        """Remove ``node`` from every group; returns the affected groups."""
        affected = []
        for group in list(self._members):
            if self.leave(group, node):
                affected.append(group)
        return affected

    def members(self, group: str) -> frozenset[NodeId]:
        return frozenset(self._members.get(group, ()))

    def groups_of(self, node: NodeId) -> tuple[str, ...]:
        """All groups ``node`` belongs to, sorted (used in sync replies)."""
        return tuple(
            sorted(g for g, members in self._members.items() if node in members)
        )

    def groups(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def view(
        self, group: str, config: Configuration, change_seq: int
    ) -> GroupView:
        """Derive the group's view in ``config``."""
        visible = [m for m in self.members(group) if m in config]
        return GroupView.make(group, config.view_id, change_seq, visible)

    def snapshot(self) -> dict[str, tuple[NodeId, ...]]:
        return {
            group: tuple(sorted(members, key=str))
            for group, members in self._members.items()
        }

    @staticmethod
    def from_reports(
        reports: dict[NodeId, tuple[str, ...]],
    ) -> "GroupMap":
        """Rebuild the map at a view merge.

        Each daemon is authoritative for its *own* memberships, so the
        merged map is exactly the union of every surviving daemon's
        self-reported group list.  Daemons outside the new view are dropped
        (if they are alive elsewhere, their own component keeps them)."""
        merged = GroupMap()
        for node, groups in reports.items():
            for group in groups:
                merged.join(group, node)
        return merged

    @staticmethod
    def from_snapshot(snapshot: dict[str, tuple[NodeId, ...]]) -> "GroupMap":
        restored = GroupMap()
        for group, members in snapshot.items():
            for member in members:
                restored.join(group, member)
        return restored


__all__ = ["GroupMap", "MEMBERSHIP_GROUP"]
