"""View formation: coordinator-driven membership agreement with a flush
round (virtual synchrony).

The protocol, per formation attempt:

1. A daemon whose failure detector's estimate changed — and which is the
   smallest id in its estimate — becomes *coordinator* and sends
   ``PROPOSE(attempt, members)`` to the estimate.
2. Each recipient that finds itself in the proposal *accepts* (if the
   attempt id is the largest it has seen), stops delivering messages of its
   current configuration (it keeps receiving and recording them), and sends
   the coordinator a ``SYNC`` reply carrying everything it received in that
   configuration plus its own not-yet-sequenced requests.
3. When the coordinator holds replies from every proposed member it computes,
   for each *prior configuration* represented among the replies, the union
   of that configuration's messages (re-sequencing orphaned requests), picks
   a new view id larger than anything reported, merges the group map from
   the members' self-reports, and sends ``INSTALL``.
4. Each member delivers the not-yet-delivered suffix of its own prior
   configuration's union — so members that move together deliver the same
   set — and then switches to the new configuration.

Failures during formation are handled by restarting with a larger attempt
id: the coordinator restarts when a reply times out (dropping the silent
member from its estimate) or when it is NACKed by a member with a higher
view counter; participants fall back to reconfiguration when the INSTALL
does not arrive in time.  Concurrent coordinators in one component resolve
by attempt-id order; coordinators in different components form separate
views, which is precisely the partitionable behaviour the paper builds on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.gcs.messages import (
    AttemptId,
    Install,
    Propose,
    ProposeNack,
    SyncReply,
)
from repro.gcs.groups import GroupMap
from repro.gcs.ordering import DuplicateFilter, collect_orphans, flush_union
from repro.gcs.view import ViewId
from repro.sim.topology import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.gcs.daemon import GcsDaemon


class MembershipEngine:
    """The view-formation state machine of one daemon.

    The engine owns both roles: *participant* (accepting proposals,
    answering syncs, awaiting installs) and *coordinator* (driving an
    attempt).  A daemon may play both at once — every coordinator is also a
    participant in its own attempt.
    """

    def __init__(self, daemon: "GcsDaemon") -> None:
        self.daemon = daemon
        self.me: NodeId = daemon.node_id
        self.settings = daemon.settings
        self.view_counter = 0
        # participant state
        self.accepted_attempt: AttemptId | None = None
        self.forming = False
        self._install_deadline: float | None = None
        self._waiting_for: NodeId | None = None  # expected coordinator
        self._waiting_since: float | None = None
        # coordinator state
        self._attempt: AttemptId | None = None
        self._attempt_members: tuple[NodeId, ...] = ()
        self._replies: dict[NodeId, SyncReply] = {}
        self._sync_deadline: float | None = None

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def reconfigure(self) -> None:
        """React to a failure-detector change (or a stuck-state timeout)."""
        estimate = self.daemon.fd.alive_set()
        current = set(self.daemon.config.members)
        if (
            estimate == current
            and not self.forming
            and self._attempt is None
            and not self.daemon.incarnations_stale()
            and not self.daemon.config_divergence_detected()
        ):
            self._waiting_since = None
            return
        coordinator = min(estimate, key=str)
        if coordinator == self.me:
            self._start_attempt(estimate)
        else:
            # Someone else should coordinate; remember who and since when,
            # so a silent coordinator can be abandoned (asymmetric links).
            if self._attempt is not None:
                self._abandon_coordination()
            if self._waiting_for != coordinator:
                self._waiting_for = coordinator
                self._waiting_since = self.daemon.sim.now

    def on_tick(self) -> None:
        """Periodic maintenance: expire sync/install waits."""
        now = self.daemon.sim.now
        if (
            self._attempt is not None
            and self._sync_deadline is not None
            and now >= self._sync_deadline
        ):
            self._on_sync_timeout()
        if (
            self.forming
            and self._install_deadline is not None
            and now >= self._install_deadline
        ):
            self._on_install_timeout()
        if (
            self._waiting_for is not None
            and self._waiting_since is not None
            and not self.forming
            and self._attempt is None
            and now - self._waiting_since > self.settings.install_timeout
        ):
            # The expected coordinator never proposed to us (it may not be
            # able to hear us).  Drop it from the estimate and retry.
            silent = self._waiting_for
            self._waiting_for = None
            self._waiting_since = None
            self.daemon.trace("gcs.coordinator_silent", coordinator=silent)
            self.daemon.fd.forget(silent)
            self.reconfigure()

    def reset(self) -> None:
        """Forget all protocol state (process recovery)."""
        self.accepted_attempt = None
        self.forming = False
        self._install_deadline = None
        self._waiting_for = None
        self._waiting_since = None
        self._abandon_coordination()

    def restart_as_singleton(self) -> int:
        """Abandon the current configuration (used when the sequencer
        reports an unfillable holdback gap): drop all formation state and
        return a fresh view counter — strictly above everything seen — for
        the singleton view the daemon falls back to before re-merging."""
        self.reset()
        self.view_counter = (
            max(self.view_counter, self.daemon.fd.max_view_counter_seen) + 1
        )
        return self.view_counter

    # ------------------------------------------------------------------
    # coordinator role
    # ------------------------------------------------------------------
    def _start_attempt(self, members: Iterable[NodeId]) -> None:
        self.view_counter = max(
            self.view_counter, self.daemon.fd.max_view_counter_seen
        )
        self.view_counter += 1
        attempt = AttemptId(counter=self.view_counter, coordinator=self.me)
        self._attempt = attempt
        self._attempt_members = tuple(sorted(members, key=str))
        self._replies = {}
        self._sync_deadline = self.daemon.sim.now + self.settings.sync_timeout
        self._waiting_for = None
        self._waiting_since = None
        self.daemon.trace(
            "gcs.propose", attempt=str(attempt.counter), members=self._attempt_members
        )
        proposal = Propose(attempt=attempt, members=self._attempt_members)
        for member in self._attempt_members:
            self.daemon.send_protocol(member, proposal, kind="gcs.propose")

    def _abandon_coordination(self) -> None:
        self._attempt = None
        self._attempt_members = ()
        self._replies = {}
        self._sync_deadline = None

    def _on_sync_timeout(self) -> None:
        """Some proposed members never replied: drop them and retry."""
        missing = [m for m in self._attempt_members if m not in self._replies]
        self.daemon.trace("gcs.sync_timeout", missing=missing)
        for member in missing:
            if member != self.me:
                self.daemon.fd.forget(member)
        responders = set(self._replies) | {self.me}
        self._abandon_coordination()
        self._start_attempt(responders)

    def on_sync_reply(self, reply: SyncReply) -> None:
        if self._attempt is None or reply.attempt != self._attempt:
            return
        self._replies[reply.sender] = reply
        self.view_counter = max(self.view_counter, reply.view_counter)
        if all(member in self._replies for member in self._attempt_members):
            self._finish_attempt()

    def _finish_attempt(self) -> None:
        attempt = self._attempt
        assert attempt is not None
        replies = dict(self._replies)
        members = self._attempt_members

        highest = max(
            [self.view_counter]
            + [r.view_counter for r in replies.values()]
            + [r.config_view_id.counter for r in replies.values()]
        )
        new_counter = highest + 1
        self.view_counter = new_counter
        view_id = ViewId(counter=new_counter, coordinator=self.me)

        # Flush: one definitive tail per prior configuration.
        by_config: dict[ViewId, list[SyncReply]] = {}
        for reply in replies.values():
            by_config.setdefault(reply.config_view_id, []).append(reply)
        per_config_tail = {}
        for config_view_id, config_replies in by_config.items():
            tail = flush_union([r.sequenced for r in config_replies])
            per_config_tail[config_view_id] = tuple(tail)
        orphans = collect_orphans(
            [list(tail) for tail in per_config_tail.values()],
            [r.unsequenced for r in replies.values()],
        )

        # Each member is authoritative for its own group memberships.
        group_map = GroupMap.from_reports(
            {sender: reply.my_groups for sender, reply in replies.items()}
        )
        delivered = DuplicateFilter.merge_snapshots(
            [r.delivered_counters for r in replies.values()]
        )
        member_incarnations = {
            sender: reply.incarnation for sender, reply in replies.items()
        }

        install = Install(
            attempt=attempt,
            view_id=view_id,
            members=members,
            per_config_tail=per_config_tail,
            group_map=group_map.snapshot(),
            delivered_counters=delivered,
            member_incarnations=member_incarnations,
            orphans=tuple(orphans),
        )
        self.daemon.trace(
            "gcs.install_sent", view=str(view_id), members=members
        )
        self._abandon_coordination()
        for member in members:
            self.daemon.send_protocol(
                member,
                install,
                kind="gcs.install",
                size=20 + sum(len(t) for t in per_config_tail.values()),
            )

    # ------------------------------------------------------------------
    # participant role
    # ------------------------------------------------------------------
    def on_propose(self, proposal: Propose, sender: NodeId) -> None:
        if self.me not in proposal.members:
            return
        if proposal.attempt.counter <= self.daemon.config.view_id.counter:
            # Stale coordinator (e.g. the small-id side of a healed
            # partition): tell it how far the world has moved.
            self.daemon.send_protocol(
                proposal.attempt.coordinator,
                ProposeNack(attempt=proposal.attempt, view_counter=self.view_counter),
                kind="gcs.nack",
            )
            return
        if self.accepted_attempt is not None and proposal.attempt <= self.accepted_attempt:
            return
        self.view_counter = max(self.view_counter, proposal.attempt.counter)
        if self._attempt is not None and self._attempt < proposal.attempt:
            self._abandon_coordination()
        self.accepted_attempt = proposal.attempt
        self.forming = True
        self._install_deadline = self.daemon.sim.now + self.settings.install_timeout
        self._waiting_for = None
        self._waiting_since = None
        reply = self.daemon.build_sync_reply(proposal.attempt, self.view_counter)
        self.daemon.send_protocol(
            proposal.attempt.coordinator,
            reply,
            kind="gcs.sync",
            size=20 + len(reply.sequenced) + len(reply.unsequenced),
        )

    def on_propose_nack(self, nack: ProposeNack) -> None:
        if self._attempt is None or nack.attempt != self._attempt:
            return
        self.view_counter = max(self.view_counter, nack.view_counter)
        members = set(self._attempt_members)
        self._abandon_coordination()
        self._start_attempt(members)

    def on_install(self, install: Install) -> None:
        if install.attempt != self.accepted_attempt:
            return
        self.view_counter = max(self.view_counter, install.view_id.counter)
        self.accepted_attempt = None
        self.forming = False
        self._install_deadline = None
        self.daemon.apply_install(install)

    def _on_install_timeout(self) -> None:
        """The coordinator we synced with went silent: resume and retry."""
        attempt = self.accepted_attempt
        self.accepted_attempt = None
        self.forming = False
        self._install_deadline = None
        if attempt is not None and attempt.coordinator != self.me:
            self.daemon.trace("gcs.install_timeout", coordinator=attempt.coordinator)
            self.daemon.fd.forget(attempt.coordinator)
        # Delivery was withheld while forming; release what is ready.
        self.daemon.flush_ready()
        self.reconfigure()


__all__ = ["MembershipEngine"]
