"""Wire payloads exchanged by the GCS protocol.

All payloads are small frozen dataclasses.  ``size_estimate`` gives the
abstract byte count used by the network accounting (experiment E2 charges
servers for the traffic they process).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.gcs.view import ViewId
from repro.sim.topology import NodeId


@dataclass(frozen=True, slots=True)
class RequestId:  # repro-lint: allow(P201) — id helper carried inside payloads, not dispatched
    """Globally unique id of one multicast request.

    ``origin`` is the daemon or client that created the message,
    ``incarnation`` distinguishes restarts of the same node, and
    ``counter`` increases per origin — so per-origin dedup can keep just
    the highest counter seen.
    """

    origin: NodeId
    incarnation: int
    counter: int

    def _key(self) -> tuple:
        return (str(self.origin), self.incarnation, self.counter)

    def __lt__(self, other: "RequestId") -> bool:
        return self._key() < other._key()


# ---------------------------------------------------------------------------
# failure detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Heartbeat:
    sender: NodeId
    incarnation: int
    view_counter: int
    config_view_id: ViewId | None = None


# ---------------------------------------------------------------------------
# SWIM gossip failure detection (membership_mode="gossip"; see gcs/swim.py)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SwimUpdate:  # repro-lint: allow(P201) — carried inside swim payloads, not dispatched
    """One piggybacked membership observation: ``subject`` is in ``status``
    at ordering point ``(incarnation, epoch)``.

    ``incarnation`` is the subject's process incarnation (bumped by the
    runtime on restart); ``epoch`` is the subject's refutation counter
    within that incarnation.  Observations are ordered lexicographically by
    ``(incarnation, epoch)``; at an equal point a stronger status wins
    (dead > suspect > alive), which is what makes dissemination monotone.
    """

    subject: NodeId
    status: int  # 0 = alive, 1 = suspect, 2 = dead (gcs/swim.py constants)
    incarnation: int
    epoch: int


@dataclass(frozen=True, slots=True)
class SwimPing:
    """Direct (``origin=None``) or relayed probe of the receiver.

    A helper relaying an indirect probe stamps ``origin`` with the
    requesting prober so the target's ack can find its way back.
    ``updates`` piggybacks pending gossip."""

    sender: NodeId
    incarnation: int
    view_counter: int
    config_view_id: ViewId | None
    probe_seq: int
    origin: NodeId | None
    updates: tuple[SwimUpdate, ...] = ()


@dataclass(frozen=True, slots=True)
class SwimAck:
    """Probe response.  ``origin`` echoes the ping's origin: a helper
    receiving an ack destined for another prober forwards it verbatim."""

    sender: NodeId
    incarnation: int
    view_counter: int
    config_view_id: ViewId | None
    probe_seq: int
    origin: NodeId | None
    updates: tuple[SwimUpdate, ...] = ()


@dataclass(frozen=True, slots=True)
class SwimPingReq:
    """Prober -> helper: ping ``target`` on my behalf (indirect probe after
    the direct ping timed out; ``probe_seq`` is the prober's sequence)."""

    sender: NodeId
    incarnation: int
    view_counter: int
    config_view_id: ViewId | None
    target: NodeId
    probe_seq: int
    updates: tuple[SwimUpdate, ...] = ()


@dataclass(frozen=True, slots=True)
class SwimDigest:
    """Anti-entropy: the sender's full membership table.  The receiver
    merges it under the update ordering and, when ``reply_requested``,
    answers with its own digest (push-pull), which is what re-converges
    views after a partition heals."""

    sender: NodeId
    incarnation: int
    view_counter: int
    config_view_id: ViewId | None
    entries: tuple[SwimUpdate, ...]
    reply_requested: bool = False


# ---------------------------------------------------------------------------
# total order
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OrderRequest:
    """Ask the configuration's sequencer to order one group multicast."""

    request_id: RequestId
    group: str
    payload: Any
    size_estimate: int = 1


@dataclass(frozen=True, slots=True)
class Sequenced:
    """A multicast stamped with its position in the configuration's total
    order, disseminated by the sequencer to all configuration members."""

    config_view_id: ViewId
    seq: int
    request: OrderRequest


@dataclass(frozen=True, slots=True)
class SequencedBatch:
    """A window's worth of sequenced multicasts disseminated as one wire
    message (sequencer batching).

    Each contained :class:`Sequenced` carries its own ``config_view_id``
    and sequence number, so a receiver simply unpacks the batch into its
    holdback buffer; entries stamped by a configuration the receiver has
    already left are ignored per-entry, which is what makes a batch split
    across a view change safe."""

    config_view_id: ViewId
    messages: tuple[Sequenced, ...]

    @property
    def size_estimate(self) -> int:
        return sum(m.request.size_estimate for m in self.messages)


@dataclass(frozen=True, slots=True)
class NackSeqs:
    """Member -> sequencer: I hold a gap in the configuration's sequence
    (a Sequenced message was lost on the wire); please retransmit."""

    config_view_id: ViewId
    seqs: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class ResyncRequired:
    """Sequencer -> member: the sequence gap you NACKed was pruned from the
    retransmission buffer, so it can never be filled in place.  The member
    abandons the configuration (resetting to a fresh singleton view, like a
    recovery but keeping its group intents and pending requests) and merges
    back through the ordinary view-formation path; the messages it missed
    are gone for it — exactly a rejoin, repaired by the application-level
    state exchange that every join triggers."""

    config_view_id: ViewId


# ---------------------------------------------------------------------------
# membership / view formation
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AttemptId:  # repro-lint: allow(P201) — id helper carried inside payloads, not dispatched
    """Identifies one view-formation attempt: ``(counter, coordinator)``."""

    counter: int
    coordinator: NodeId

    def _key(self) -> tuple:
        return (self.counter, str(self.coordinator))

    def __lt__(self, other: "AttemptId") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "AttemptId") -> bool:
        return self._key() <= other._key()


@dataclass(frozen=True, slots=True)
class Propose:
    """Coordinator -> participants: start forming a view with ``members``."""

    attempt: AttemptId
    members: tuple[NodeId, ...]


@dataclass(frozen=True, slots=True)
class ProposeNack:
    """Participant -> coordinator: your attempt counter is stale; retry
    with a counter above ``view_counter``."""

    attempt: AttemptId
    view_counter: int


@dataclass(frozen=True, slots=True)
class SyncReply:
    """Participant -> coordinator: my state for the flush round.

    * ``config_view_id`` — the configuration I am (was) in; virtual
      synchrony is enforced among members reporting the same value.
    * ``sequenced`` — every sequenced message of that configuration I have
      received, keyed by sequence number.
    * ``unsequenced`` — my own requests not yet seen sequenced (the
      coordinator re-sequences them so they are not lost).
    * ``my_groups`` — the groups I currently belong to (authoritative for
      me; the coordinator merges these into the new group map).
    * ``delivered_counters`` — per-origin highest delivered request
      counter (merged by max; used for duplicate suppression).
    * ``view_counter`` — highest view counter I have seen.
    """

    attempt: AttemptId
    sender: NodeId
    config_view_id: ViewId
    sequenced: dict[int, Sequenced]
    unsequenced: tuple[OrderRequest, ...]
    my_groups: tuple[str, ...]
    delivered_counters: dict[tuple, tuple]
    view_counter: int
    incarnation: int = 0


@dataclass(frozen=True, slots=True)
class Install:
    """Coordinator -> participants: the new view, plus everything each
    surviving prior configuration must deliver before switching.

    ``per_config_tail`` maps a prior configuration's view id to the ordered
    list of that configuration's messages (the union of everything any of
    its surviving members received, followed by re-sequenced orphans).  A
    participant delivers the not-yet-delivered suffix for *its own* prior
    configuration, which realizes virtual synchrony.
    """

    attempt: AttemptId
    view_id: ViewId
    members: tuple[NodeId, ...]
    per_config_tail: dict[ViewId, tuple[Sequenced, ...]]
    group_map: dict[str, tuple[NodeId, ...]]
    delivered_counters: dict[tuple, tuple]
    member_incarnations: dict = field(default_factory=dict)
    orphans: tuple[OrderRequest, ...] = ()


# ---------------------------------------------------------------------------
# client access
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ClientMcast:
    """Client -> contact daemon: inject a group multicast into the total
    order on my behalf (the GCS's open-group property)."""

    request_id: RequestId
    group: str
    payload: Any
    size_estimate: int = 1


@dataclass(frozen=True, slots=True)
class ClientAck:
    """Contact daemon -> client: your message was accepted for ordering."""

    request_id: RequestId


__all__ = [
    "NackSeqs",
    "PtpData",
    "AttemptId",
    "ClientAck",
    "ClientMcast",
    "Heartbeat",
    "Install",
    "OrderRequest",
    "Propose",
    "ProposeNack",
    "RequestId",
    "ResyncRequired",
    "Sequenced",
    "SequencedBatch",
    "SwimAck",
    "SwimDigest",
    "SwimPing",
    "SwimPingReq",
    "SwimUpdate",
    "SyncReply",
]


@dataclass(frozen=True, slots=True)
class PtpData:
    """A point-to-point application payload carried outside the total order
    (used for server responses to clients and for direct handoffs)."""

    payload: Any
