"""Total-order delivery machinery: holdback, duplicate suppression, and
tracking of a daemon's own pending requests.

Within a configuration the network's per-pair FIFO property means messages
from the sequencer arrive gap-free, but the holdback buffer still enforces
in-sequence delivery defensively (a gap can only be resolved across a view
change, where the flush round fills or truncates it).

*Receiving* and *delivering* are deliberately separate: while a daemon
participates in a view-formation attempt it keeps receiving (and reporting)
sequenced messages but withholds delivery, so that it never delivers a
message the coordinator's flush union might not contain — that separation
is what makes virtual synchrony hold.
"""

from __future__ import annotations

from repro.gcs.messages import OrderRequest, RequestId, Sequenced, SequencedBatch


class HoldbackBuffer:
    """Stores one configuration's sequenced messages and releases them in
    contiguous sequence order.

    ``delivered_upto`` is the count of messages actually handed to the
    application; everything inserted (delivered or not) is reported by
    :meth:`all_received` for the flush round.  ``pruned_below`` is the
    lowest sequence number still retransmittable: anything below it was
    discarded by :meth:`prune` and can never be served to a NACK again.
    """

    def __init__(self) -> None:
        self._all: dict[int, Sequenced] = {}
        self.delivered_upto = 0
        self.pruned_below = 0

    def insert(self, message: Sequenced) -> None:
        """Record a sequenced message (duplicates are ignored)."""
        if message.seq not in self._all:
            self._all[message.seq] = message

    def insert_batch(self, batch: SequencedBatch) -> int:
        """Record every message of a batch; returns how many were new.
        Re-received batches (e.g. a NACK retransmission overlapping a late
        original) are de-duplicated per entry."""
        inserted = 0
        for message in batch.messages:
            if message.seq not in self._all:
                self._all[message.seq] = message
                inserted += 1
        return inserted

    def take_ready(self) -> list[Sequenced]:
        """Pop the messages now deliverable in contiguous order, advancing
        the delivery point.  Call only when delivery is permitted."""
        ready: list[Sequenced] = []
        while self.delivered_upto in self._all:
            ready.append(self._all[self.delivered_upto])
            self.delivered_upto += 1
        return ready

    def all_received(self) -> dict[int, Sequenced]:
        """Every sequenced message seen so far, delivered or held back."""
        return dict(self._all)

    def delivered_count(self) -> int:
        return self.delivered_upto

    def missing_seqs(self, limit: int = 64) -> list[int]:
        """Sequence numbers between the delivery point and the highest
        received that have not arrived — the gaps a lossy link leaves,
        reported to the sequencer in a NACK for retransmission."""
        if not self._all:
            return []
        highest = max(self._all)
        missing = []
        for seq in range(self.delivered_upto, highest):
            if seq not in self._all:
                missing.append(seq)
                if len(missing) >= limit:
                    break
        return missing

    def get(self, seq: int) -> Sequenced | None:
        return self._all.get(seq)

    def prune(self, keep: int = 4096) -> None:
        """Discard delivered messages older than the last ``keep`` ones.

        Old messages are retained only so a sync reply can rebuild peers
        that missed them; anything older than the in-flight window is
        already delivered everywhere, so a generous ``keep`` trades a
        little theoretical coverage for bounded memory on long runs.
        """
        floor = self.delivered_upto - keep
        if floor <= self.pruned_below:
            return
        self.pruned_below = floor
        for seq in [s for s in self._all if s < floor]:
            del self._all[seq]


class DuplicateFilter:
    """Per-origin at-most-once delivery, tolerant of out-of-order
    retransmissions.

    Request counters are monotone per ``(origin, incarnation)``, but
    delivery order is *not* guaranteed FIFO per origin: an order request
    lost in a view change is retransmitted and may be sequenced after the
    origin's newer requests.  A max-counter filter would brand such a late
    retransmission a duplicate and silently lose it; instead we keep, per
    origin, the contiguous-from-zero ``floor`` plus the sparse set of
    delivered counters above it (TCP-SACK style), so a gap-filling late
    delivery is recognized as new.

    ``MAX_SPARSE`` bounds the sparse set for origins with a permanent gap
    (e.g. a client that gave up on a request): beyond it the oldest gap is
    abandoned by advancing the floor.
    """

    MAX_SPARSE = 1024

    def __init__(self) -> None:
        self._floor: dict[tuple, int] = {}
        self._above: dict[tuple, set[int]] = {}

    @staticmethod
    def _key(request_id: RequestId) -> tuple:
        return (str(request_id.origin), request_id.incarnation)

    def is_duplicate(self, request_id: RequestId) -> bool:
        key = self._key(request_id)
        if request_id.counter <= self._floor.get(key, -1):
            return True
        return request_id.counter in self._above.get(key, ())

    def mark_delivered(self, request_id: RequestId) -> None:
        key = self._key(request_id)
        self._mark(key, request_id.counter)

    def _mark(self, key: tuple, counter: int) -> None:
        floor = self._floor.get(key, -1)
        if counter <= floor:
            return
        above = self._above.setdefault(key, set())
        above.add(counter)
        while floor + 1 in above:
            floor += 1
            above.discard(floor)
        if len(above) > self.MAX_SPARSE:
            # a permanent gap: abandon it (the origin stopped retrying)
            floor = min(above)
            for stale in [c for c in above if c <= floor]:
                above.discard(stale)
            while floor + 1 in above:
                floor += 1
                above.discard(floor)
        self._floor[key] = floor
        if not above:
            self._above.pop(key, None)

    def snapshot(self) -> dict[tuple, tuple]:
        return {
            key: (floor, tuple(sorted(self._above.get(key, ()))))
            for key, floor in self._floor.items()
        }

    def merge(self, counters: dict[tuple, tuple]) -> None:
        """Adopt delivery knowledge from a view installation (union)."""
        for key, (floor_in, above_in) in counters.items():
            floor = self._floor.get(key, -1)
            above = set(self._above.get(key, ()))
            if floor_in > floor:
                floor = floor_in
                above = {c for c in above if c > floor}
            for counter in above_in:
                if counter > floor:
                    above.add(counter)
            while floor + 1 in above:
                floor += 1
                above.discard(floor)
            self._floor[key] = floor
            if above:
                self._above[key] = above
            else:
                self._above.pop(key, None)

    @staticmethod
    def merge_snapshots(snapshots: list[dict[tuple, tuple]]) -> dict[tuple, tuple]:
        merged = DuplicateFilter()
        for snapshot in snapshots:
            merged.merge(snapshot)
        return merged.snapshot()


class PendingRequests:
    """A daemon's own submitted-but-not-yet-delivered requests.

    Requests are resubmitted into the next configuration if a view change
    interrupted them; the duplicate filter makes resubmission safe.
    """

    def __init__(self) -> None:
        self._pending: dict[RequestId, OrderRequest] = {}

    def add(self, request: OrderRequest) -> None:
        self._pending[request.request_id] = request

    def resolve(self, request_id: RequestId) -> None:
        self._pending.pop(request_id, None)

    def outstanding(self) -> list[OrderRequest]:
        """Pending requests in submission (counter) order."""
        return [
            self._pending[rid]
            for rid in sorted(self._pending, key=lambda r: r.counter)
        ]

    def clear(self) -> None:
        self._pending.clear()

    def __len__(self) -> int:
        return len(self._pending)


def flush_union(
    sequenced_reports: list[dict[int, Sequenced]],
) -> list[Sequenced]:
    """The definitive sequenced-message tail of a dying configuration: the
    union of everything its surviving members received, in sequence order.

    Every member of the old configuration that moves to the new view
    delivers the suffix of this list beyond its own delivery point; since
    in-configuration delivery is contiguous from sequence 0, each member's
    delivered prefix coincides with a prefix of this union, which yields
    virtual synchrony.

    Requests that were submitted but never sequenced (or whose sequencing
    was seen by no survivor) are NOT given old-configuration sequence
    numbers here: the dead sequencer may have assigned those numbers to
    *other* requests that only it (or a member that did not survive into
    this view) delivered, so reusing the space would bind one ``(config,
    seq)`` to two different requests.  Such orphans are delivered at the
    head of the *new* configuration instead (see :func:`collect_orphans`).
    """
    union: dict[int, Sequenced] = {}
    for report in sequenced_reports:
        union.update(report)
    return [union[seq] for seq in sorted(union)]


def collect_orphans(
    tails: list[list[Sequenced]],
    unsequenced_reports: list[tuple[OrderRequest, ...]],
) -> list[OrderRequest]:
    """Requests reported as unsequenced that no flush tail contains —
    they are delivered, deterministically ordered by request id, at the
    head of the new configuration."""
    seen: set[RequestId] = {
        message.request.request_id for tail in tails for message in tail
    }
    orphans: dict[RequestId, OrderRequest] = {}
    for report in unsequenced_reports:
        for request in report:
            if request.request_id not in seen:
                orphans[request.request_id] = request
    return [orphans[rid] for rid in sorted(orphans, key=lambda r: r._key())]


__all__ = [
    "DuplicateFilter",
    "HoldbackBuffer",
    "PendingRequests",
    "collect_orphans",
    "flush_union",
]
