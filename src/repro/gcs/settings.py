"""Tunable protocol constants for the GCS."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GcsSettings:
    """Timing parameters of the GCS protocol stack.

    The defaults suit the LAN latency preset (sub-millisecond one-way
    delays).  WAN experiments scale them up via :meth:`scaled`.

    Attributes:
        heartbeat_interval: period of the failure detector's heartbeats.
        suspect_timeout: silence after which a peer is suspected; must be a
            few heartbeat intervals to ride out jitter.
        sync_timeout: how long a view-formation coordinator waits for
            synchronization replies before dropping non-responders and
            restarting the attempt.
        install_timeout: how long a participant waits for the INSTALL after
            accepting a proposal before giving up on the coordinator.
        client_ack_timeout: how long a client waits for a contact daemon's
            receipt acknowledgement before rotating to another contact.
        client_max_retries: give up (surface an error to the application)
            after this many contact rotations for one message.
        detect_divergence: reconfigure when a reachable peer persistently
            reports a different installed view (the zombie-view guard;
            see DESIGN.md §6).  Disable only for the ablation study.
        end_to_end_client_acks: acknowledge a client multicast only once
            it is delivered in the total order (not merely received by
            the contact daemon).  Disable only for the ablation study.
        batch_window: how long the sequencer accumulates order requests
            before disseminating them as one ``SequencedBatch`` (amortizes
            the per-member unicast over many multicasts).  ``0.0`` disables
            batching and restores the one-``Sequenced``-per-request wire
            behaviour.
        batch_max: flush a partially filled batch early once it holds this
            many messages (bounds latency *and* message size under bursts).
        piggyback_liveness: treat any received GCS message as liveness
            evidence for its sender and suppress an explicit heartbeat to
            a peer the sender messaged within the last interval.  Cuts the
            steady-state O(world²) heartbeat storm on busy links.
        heartbeat_refresh_factor: even with piggybacking, force a full
            heartbeat to every peer at least once per this many intervals —
            heartbeats are the only carriers of the sender's view id and
            incarnation, which the divergence and restart detectors need.
        holdback_keep: delivered messages the holdback buffer retains for
            NACK retransmission; a peer lagging further than this can no
            longer be repaired in place and is resynced via a view change.
        readmit_evicted: accept liveness evidence (heartbeats, piggybacked
            traffic) from members this daemon has evicted from a past
            configuration.  **Must stay True for correctness** — turning
            it off reproduces the "partition amnesia" bug class: after a
            partition heals, each side keeps discarding the other side's
            heartbeats, the components never re-merge, and both primaries
            persist forever.  Exists only as a chaos-engine plant
            (``ChaosConfig.plant = "partition-amnesia"``).
    """

    heartbeat_interval: float = 0.1
    suspect_timeout: float = 0.35
    sync_timeout: float = 0.6
    install_timeout: float = 1.2
    client_ack_timeout: float = 0.25
    client_max_retries: int = 10
    detect_divergence: bool = True
    end_to_end_client_acks: bool = True
    batch_window: float = 0.002
    batch_max: int = 32
    piggyback_liveness: bool = True
    heartbeat_refresh_factor: int = 4
    holdback_keep: int = 4096
    readmit_evicted: bool = True

    @property
    def batching_enabled(self) -> bool:
        return self.batch_window > 0.0

    @classmethod
    def live_lan(cls) -> "GcsSettings":
        """Tight timings for live loopback/LAN deployments.

        The defaults above are padded for the simulator's adversity
        experiments (partitions, loss, multi-second stalls).  On a real
        loopback cluster with the struct fast-path codec and coalescing
        transports, a heartbeat round-trip costs well under a
        millisecond, so the failure detector and client-ack rotation can
        run an order of magnitude hotter — which is what turns a
        node-kill into a sub-100ms takeover instead of a sub-second one.
        ``suspect_timeout`` stays a few heartbeat intervals to ride out
        scheduler jitter, same rule as the default profile.
        """
        return cls(
            heartbeat_interval=0.008,
            suspect_timeout=0.03,
            sync_timeout=0.12,
            install_timeout=0.25,
            client_ack_timeout=0.04,
            batch_window=0.001,
            batch_max=64,
        )

    def scaled(self, factor: float) -> "GcsSettings":
        """Return a copy with all timeouts multiplied by ``factor``
        (e.g. ``settings.scaled(50)`` for WAN latencies)."""
        return GcsSettings(
            heartbeat_interval=self.heartbeat_interval * factor,
            suspect_timeout=self.suspect_timeout * factor,
            sync_timeout=self.sync_timeout * factor,
            install_timeout=self.install_timeout * factor,
            client_ack_timeout=self.client_ack_timeout * factor,
            client_max_retries=self.client_max_retries,
            detect_divergence=self.detect_divergence,
            end_to_end_client_acks=self.end_to_end_client_acks,
            batch_window=self.batch_window * factor,
            batch_max=self.batch_max,
            piggyback_liveness=self.piggyback_liveness,
            heartbeat_refresh_factor=self.heartbeat_refresh_factor,
            holdback_keep=self.holdback_keep,
            readmit_evicted=self.readmit_evicted,
        )


__all__ = ["GcsSettings"]
