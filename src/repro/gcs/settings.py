"""Tunable protocol constants for the GCS."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GcsSettings:
    """Timing parameters of the GCS protocol stack.

    The defaults suit the LAN latency preset (sub-millisecond one-way
    delays).  WAN experiments scale them up via :meth:`scaled`.

    Attributes:
        heartbeat_interval: period of the failure detector's heartbeats.
        suspect_timeout: silence after which a peer is suspected; must be a
            few heartbeat intervals to ride out jitter.
        sync_timeout: how long a view-formation coordinator waits for
            synchronization replies before dropping non-responders and
            restarting the attempt.
        install_timeout: how long a participant waits for the INSTALL after
            accepting a proposal before giving up on the coordinator.
        client_ack_timeout: how long a client waits for a contact daemon's
            receipt acknowledgement before rotating to another contact.
        client_max_retries: give up (surface an error to the application)
            after this many contact rotations for one message.
        detect_divergence: reconfigure when a reachable peer persistently
            reports a different installed view (the zombie-view guard;
            see DESIGN.md §6).  Disable only for the ablation study.
        end_to_end_client_acks: acknowledge a client multicast only once
            it is delivered in the total order (not merely received by
            the contact daemon).  Disable only for the ablation study.
        batch_window: how long the sequencer accumulates order requests
            before disseminating them as one ``SequencedBatch`` (amortizes
            the per-member unicast over many multicasts).  ``0.0`` disables
            batching and restores the one-``Sequenced``-per-request wire
            behaviour.
        batch_max: flush a partially filled batch early once it holds this
            many messages (bounds latency *and* message size under bursts).
        piggyback_liveness: treat any received GCS message as liveness
            evidence for its sender and suppress an explicit heartbeat to
            a peer the sender messaged within the last interval.  Cuts the
            steady-state O(world²) heartbeat storm on busy links.
        heartbeat_refresh_factor: even with piggybacking, force a full
            heartbeat to every peer at least once per this many intervals —
            heartbeats are the only carriers of the sender's view id and
            incarnation, which the divergence and restart detectors need.
        holdback_keep: delivered messages the holdback buffer retains for
            NACK retransmission; a peer lagging further than this can no
            longer be repaired in place and is resynced via a view change.
        readmit_evicted: accept liveness evidence (heartbeats, piggybacked
            traffic) from members this daemon has evicted from a past
            configuration.  **Must stay True for correctness** — turning
            it off reproduces the "partition amnesia" bug class: after a
            partition heals, each side keeps discarding the other side's
            heartbeats, the components never re-merge, and both primaries
            persist forever.  Exists only as a chaos-engine plant
            (``ChaosConfig.plant = "partition-amnesia"``).
        membership_mode: failure-detection protocol — ``"heartbeat"`` is
            the all-pairs mesh above, ``"gossip"`` the SWIM detector in
            ``gcs/swim.py`` (constant per-node probe work, epidemic
            dissemination; see DESIGN.md §14).  Everything above the
            detector interface is identical in both modes.
        probe_interval: period of one SWIM probe round (gossip mode only).
        probe_timeout: how long a prober waits for a direct ack before
            asking ``swim_fanout`` helpers to probe the target indirectly;
            must be well under ``probe_interval``.
        suspicion_multiplier: a suspected member is evicted after
            ``suspicion_multiplier * probe_interval * log10(n + 1)``
            seconds of unrefuted suspicion — scaling with the member count
            gives the subject's refutation time to spread epidemically.
        swim_fanout: indirect probe helpers per failed direct probe; also
            the gossip retransmission multiplier (each update is forwarded
            ``~swim_fanout * log10(n + 1)`` times per node).
        anti_entropy_interval: period of the push-pull full-digest
            exchange with one random peer (bounds convergence time after
            partitions heal and for updates that missed the piggyback).
        gossip_max_updates: most piggybacked membership updates carried on
            one swim message (bounds probe frame size).
    """

    heartbeat_interval: float = 0.1
    suspect_timeout: float = 0.35
    sync_timeout: float = 0.6
    install_timeout: float = 1.2
    client_ack_timeout: float = 0.25
    client_max_retries: int = 10
    detect_divergence: bool = True
    end_to_end_client_acks: bool = True
    batch_window: float = 0.002
    batch_max: int = 32
    piggyback_liveness: bool = True
    heartbeat_refresh_factor: int = 4
    holdback_keep: int = 4096
    readmit_evicted: bool = True
    membership_mode: str = "heartbeat"
    probe_interval: float = 0.1
    probe_timeout: float = 0.04
    suspicion_multiplier: float = 3.0
    swim_fanout: int = 3
    anti_entropy_interval: float = 1.0
    gossip_max_updates: int = 12

    @property
    def batching_enabled(self) -> bool:
        return self.batch_window > 0.0

    @classmethod
    def live_lan(cls) -> "GcsSettings":
        """Tight timings for live loopback/LAN deployments.

        The defaults above are padded for the simulator's adversity
        experiments (partitions, loss, multi-second stalls).  On a real
        loopback cluster with the struct fast-path codec and coalescing
        transports, a heartbeat round-trip costs well under a
        millisecond, so the failure detector and client-ack rotation can
        run an order of magnitude hotter — which is what turns a
        node-kill into a sub-100ms takeover instead of a sub-second one.
        ``suspect_timeout`` stays a few heartbeat intervals to ride out
        scheduler jitter, same rule as the default profile.

        The SWIM knobs are deliberately *less* aggressive than the mesh
        heartbeat: mesh liveness accepts any heartbeat within the
        suspicion window, but a SWIM probe demands one specific
        ping->ack round trip inside ``probe_timeout`` — on a loaded
        event loop a few milliseconds of scheduling jitter would
        manufacture suspicions (and under churn, view resyncs) that the
        network never caused.
        """
        return cls(
            heartbeat_interval=0.008,
            suspect_timeout=0.03,
            sync_timeout=0.12,
            install_timeout=0.25,
            client_ack_timeout=0.04,
            batch_window=0.001,
            batch_max=64,
            probe_interval=0.04,
            probe_timeout=0.02,
            anti_entropy_interval=0.2,
        )

    def scaled(self, factor: float) -> "GcsSettings":
        """Return a copy with all timeouts multiplied by ``factor``
        (e.g. ``settings.scaled(50)`` for WAN latencies)."""
        return GcsSettings(
            heartbeat_interval=self.heartbeat_interval * factor,
            suspect_timeout=self.suspect_timeout * factor,
            sync_timeout=self.sync_timeout * factor,
            install_timeout=self.install_timeout * factor,
            client_ack_timeout=self.client_ack_timeout * factor,
            client_max_retries=self.client_max_retries,
            detect_divergence=self.detect_divergence,
            end_to_end_client_acks=self.end_to_end_client_acks,
            batch_window=self.batch_window * factor,
            batch_max=self.batch_max,
            piggyback_liveness=self.piggyback_liveness,
            heartbeat_refresh_factor=self.heartbeat_refresh_factor,
            holdback_keep=self.holdback_keep,
            readmit_evicted=self.readmit_evicted,
            membership_mode=self.membership_mode,
            probe_interval=self.probe_interval * factor,
            probe_timeout=self.probe_timeout * factor,
            suspicion_multiplier=self.suspicion_multiplier,
            swim_fanout=self.swim_fanout,
            anti_entropy_interval=self.anti_entropy_interval * factor,
            gossip_max_updates=self.gossip_max_updates,
        )


__all__ = ["GcsSettings"]
