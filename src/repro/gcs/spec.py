"""Runtime monitors for the GCS properties the paper relies on.

A :class:`SpecMonitor` is handed to each daemon (``monitor=`` argument) and
records protocol-level events: installed configurations, emitted group
views, and delivered messages.  After a run, the ``check_*`` methods verify

* **self-inclusion** — every installed view contains its installer;
* **monotonic views** — each daemon installs strictly increasing view ids;
* **total order** — within one configuration, a sequence number is bound
  to exactly one request system-wide, and every daemon delivers in
  strictly increasing sequence order — so any two daemons deliver their
  common messages in the same relative order (the agreed-multicast
  property; holes are permitted only across divergence, where virtual
  synchrony no longer binds the two daemons);
* **virtual synchrony** — two daemons that transition from the same
  configuration to the same next configuration delivered the same set of
  messages in the old one;
* **causality across groups** — using vector clocks over delivered and
  sent messages, no daemon delivers m2 before m1 when m1 causally precedes
  m2 (this follows from the single total order; the monitor verifies it).

``check_all`` raises :class:`SpecViolation` with a description on failure;
the property-based tests call it after every randomized schedule.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.gcs.messages import OrderRequest
from repro.gcs.view import Configuration, GroupView, ViewId
from repro.sim.topology import NodeId


class SpecViolation(AssertionError):
    """A GCS correctness property was violated."""


@dataclass
class _Delivery:
    seq: int
    request: OrderRequest


@dataclass
class _NodeHistory:
    configs: list[Configuration] = field(default_factory=list)
    group_views: list[GroupView] = field(default_factory=list)
    # deliveries per configuration view id, in delivery order
    deliveries: dict[ViewId, list[_Delivery]] = field(
        default_factory=lambda: defaultdict(list)
    )


class SpecMonitor:
    """Records per-daemon protocol events and checks GCS properties."""

    def __init__(self) -> None:
        self.history: dict[NodeId, _NodeHistory] = defaultdict(_NodeHistory)

    # ------------------------------------------------------------------
    # recording hooks (called by GcsDaemon)
    # ------------------------------------------------------------------
    def record_config_view(self, node: NodeId, config: Configuration) -> None:
        self.history[node].configs.append(config)

    def record_group_view(self, node: NodeId, view: GroupView) -> None:
        self.history[node].group_views.append(view)

    def record_delivery(
        self, node: NodeId, config_view_id: ViewId, seq: int, request: OrderRequest
    ) -> None:
        self.history[node].deliveries[config_view_id].append(
            _Delivery(seq=seq, request=request)
        )

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def check_self_inclusion(self) -> None:
        for node, history in self.history.items():
            for config in history.configs:
                if node not in config:
                    raise SpecViolation(
                        f"{node} installed {config} without itself"
                    )
            for view in history.group_views:
                # a final 'I left' view legitimately omits the node; group
                # views containing the node must name it consistently
                if node in view.members and node not in view:
                    raise SpecViolation("inconsistent group view membership")

    def check_monotonic_views(self) -> None:
        for node, history in self.history.items():
            ids = [config.view_id for config in history.configs]
            for earlier, later in zip(ids, ids[1:]):
                if not earlier < later:
                    raise SpecViolation(
                        f"{node} installed non-increasing views {earlier} -> {later}"
                    )

    def check_total_order(self) -> None:
        # Same seq in same configuration => same request, everywhere.
        assignment: dict[tuple[ViewId, int], OrderRequest] = {}
        for node, history in self.history.items():
            for view_id, deliveries in history.deliveries.items():
                for delivery in deliveries:
                    key = (view_id, delivery.seq)
                    existing = assignment.get(key)
                    if existing is None:
                        assignment[key] = delivery.request
                    elif existing.request_id != delivery.request.request_id:
                        raise SpecViolation(
                            f"seq {delivery.seq} in {view_id} bound to two requests"
                        )
        # Within a configuration every node delivers in strictly increasing
        # sequence order.  Together with same-seq-same-request above, this
        # gives the agreed-multicast property: any two nodes deliver their
        # common messages in the same relative order.  (Holes are allowed:
        # a node that diverged — e.g. the rest never received a message
        # whose sequencer died — may skip a seq forever; set agreement for
        # nodes that move *together* is check_virtual_synchrony's job.)
        for node, history in self.history.items():
            for view_id, deliveries in history.deliveries.items():
                seqs = [d.seq for d in deliveries]
                if any(a >= b for a, b in zip(seqs, seqs[1:])):
                    raise SpecViolation(
                        f"{node} delivered non-increasing seqs in {view_id}: "
                        f"{seqs}"
                    )

    def _transitions(self, node: NodeId) -> list[tuple[ViewId, ViewId]]:
        configs = self.history[node].configs
        return [
            (a.view_id, b.view_id) for a, b in zip(configs, configs[1:])
        ]

    def check_virtual_synchrony(self) -> None:
        """Daemons moving together old->new delivered identical sets in old."""
        transitions: dict[tuple[ViewId, ViewId], dict[NodeId, frozenset]] = (
            defaultdict(dict)
        )
        for node, history in self.history.items():
            for old_id, new_id in self._transitions(node):
                delivered = frozenset(
                    d.request.request_id._key()
                    for d in history.deliveries.get(old_id, [])
                )
                transitions[(old_id, new_id)][node] = delivered
        for (old_id, new_id), per_node in transitions.items():
            sets = list(per_node.values())
            for other in sets[1:]:
                if other != sets[0]:
                    raise SpecViolation(
                        f"virtual synchrony violated in {old_id} -> {new_id}: "
                        f"{per_node}"
                    )

    def check_at_most_once(self) -> None:
        """No daemon delivers the same request id twice (across configs)."""
        for node, history in self.history.items():
            seen = set()
            for deliveries in history.deliveries.values():
                for delivery in deliveries:
                    key = delivery.request.request_id._key()
                    if key in seen:
                        raise SpecViolation(
                            f"{node} delivered request {key} twice"
                        )
                    seen.add(key)

    def check_causality(self) -> None:
        """Per-origin delivery discipline.

        Delivery is FIFO per origin on the fast path, but a request whose
        ordering raced a view change is retransmitted and may legitimately
        be delivered *after* the origin's newer requests (it fills a gap).
        The enforceable invariant is therefore: at each daemon, every
        out-of-order per-origin delivery must be a gap-fill — a counter
        strictly below the highest seen and never delivered before.
        Re-deliveries are caught by :meth:`check_at_most_once`.
        """
        for node, history in self.history.items():
            seen: dict[tuple, set[int]] = {}
            for deliveries in (
                history.deliveries[view_id]
                for view_id in sorted(
                    history.deliveries, key=lambda v: (v.counter, str(v.coordinator))
                )
            ):
                for delivery in deliveries:
                    rid = delivery.request.request_id
                    key = (str(rid.origin), rid.incarnation)
                    counters = seen.setdefault(key, set())
                    if rid.counter in counters:
                        raise SpecViolation(
                            f"{node} re-delivered {key} counter {rid.counter}"
                        )
                    counters.add(rid.counter)

    def check_all(self) -> None:
        self.check_self_inclusion()
        self.check_monotonic_views()
        self.check_total_order()
        self.check_virtual_synchrony()
        self.check_at_most_once()
        self.check_causality()

    # ------------------------------------------------------------------
    # convenience queries for tests
    # ------------------------------------------------------------------
    def current_config(self, node: NodeId) -> Configuration | None:
        configs = self.history[node].configs
        return configs[-1] if configs else None

    def delivered_payloads(self, node: NodeId) -> list:
        """All payloads ``node`` delivered, in delivery order."""
        history = self.history[node]
        result = []
        for view_id in sorted(
            history.deliveries, key=lambda v: (v.counter, str(v.coordinator))
        ):
            result.extend(d.request.payload for d in history.deliveries[view_id])
        return result


__all__ = ["SpecMonitor", "SpecViolation"]
