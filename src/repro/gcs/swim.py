"""SWIM-style gossip failure detector (``membership_mode="gossip"``).

Replaces the all-pairs heartbeat mesh with constant per-node probe work:
every ``probe_interval`` a daemon pings ONE pseudo-random peer; if the
direct ack misses ``probe_timeout`` it asks ``swim_fanout`` helpers to
probe the target indirectly, and only when the whole round stays silent
does the target become *suspected*.  A suspected member stays in the
membership estimate until the suspicion survives
``suspicion_multiplier * probe_interval * log10(n + 1)`` seconds — long
enough for the subject to hear its own suspicion through the gossip
stream and refute it — after which it is evicted (``on_change`` fires
and the membership engine reconfigures, exactly as when a mesh
heartbeat times out).

Dissemination is epidemic: every swim message piggybacks up to
``gossip_max_updates`` pending :class:`~repro.gcs.messages.SwimUpdate`
observations, each forwarded a bounded ``~swim_fanout * log10(n + 1)``
times per node.  Observations about one subject are ordered by the pair
``(incarnation, epoch)`` — the subject's process incarnation and its
refutation counter within it — with dead > suspect > alive breaking
ties at an equal point, so merging is monotone and idempotent.  A node
that hears itself suspected (or declared dead, e.g. after a partition
heals) bumps its epoch ONCE per superseding observation and gossips an
``alive`` that overrides it everywhere.  A periodic push-pull
anti-entropy digest exchange plus a low-rate "rejoin" probe of
currently-dead world members bound convergence after partitions heal.

The class presents the same surface as
:class:`~repro.gcs.failure_detector.FailureDetector` (``check``,
``forget``, ``alive_set``, ``incarnation_of``, ``divergent_peers``,
...), so everything above the detector interface — view formation,
merge/reconciliation, divergence and restart detection — is unchanged.

Determinism: all draws come from one ``random.Random`` stream seeded
from the node id alone (SHA-256 derived, like ``sim/rng``), so a
simulation is bit-reproducible and sharded runs match serial ones.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.gcs.messages import (
    Heartbeat,
    SwimAck,
    SwimDigest,
    SwimPing,
    SwimPingReq,
    SwimUpdate,
)
from repro.gcs.settings import GcsSettings
from repro.gcs.view import ViewId
from repro.sim.topology import NodeId

#: SwimUpdate.status values, ordered so that a numerically larger status
#: wins at an equal (incarnation, epoch) point.
SWIM_ALIVE = 0
SWIM_SUSPECT = 1
SWIM_DEAD = 2

#: Probe one currently-dead/unknown world member every this many rounds
#: (boot discovery and partition-heal rediscovery; the cost is bounded at
#: one extra ping per window).
_REJOIN_EVERY = 4

#: Every this many anti-entropy turns, push the digest at a dead/unknown
#: world member instead of an alive peer (a second heal path).
_AE_REJOIN_EVERY = 4

#: Floor on per-update gossip retransmissions regardless of cluster size.
_MIN_GOSSIP_BUDGET = 3

SendFn = Callable[[NodeId, Any, str, int], None]
LocalStateFn = Callable[[], "tuple[int, int, ViewId | None]"]
ScheduleFn = Callable[[float, Callable[[], None]], None]


def _swim_seed(node_id: NodeId) -> int:
    """A per-node 64-bit seed derived from the node id alone (stable
    across processes and runs, mirroring ``sim/rng`` derivation) so that
    sharded chaos runs draw identically to serial ones."""
    digest = hashlib.sha256(f"swim:{node_id}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(slots=True)
class _MemberState:
    status: int
    incarnation: int
    epoch: int
    last_direct: float
    suspect_since: float = 0.0
    config_view_id: ViewId | None = None
    # when the peer last *authored* a swim message we saw (carrying its
    # view id) — divergence detection compares against this, same rule as
    # the mesh detector's last_view_report.
    last_view_report: float = 0.0
    # DEAD via forget() is a *local hint* (a protocol reply timed out),
    # not an epidemic verdict: it must never be exported in digests, and
    # any alive evidence at the current point revives it.  Exporting
    # local forgets as dead-at-current-point verdicts would let a single
    # slow sync reply propagate a bogus eviction cluster-wide.
    local_death: bool = False


@dataclass(slots=True)
class _GossipEntry:
    update: SwimUpdate
    sent: int = 0


@dataclass(slots=True)
class _Probe:
    target: NodeId
    started: float
    indirect_sent: bool = False


class SwimDetector:
    """Drop-in alternative to ``FailureDetector`` speaking the SWIM wire
    vocabulary.

    The owning daemon drives it with :meth:`on_probe_tick` (a periodic
    timer at ``settings.probe_interval``), :meth:`check` (suspicion
    expiry, from the main protocol tick) and :meth:`on_message`
    (dispatch of received swim payloads); ``send`` / ``schedule`` /
    ``local_state`` are thin callbacks back into the daemon so the
    detector never touches the network or simulator directly.
    """

    def __init__(
        self,
        me: NodeId,
        world: list[NodeId],
        settings: GcsSettings,
        now: Callable[[], float],
        on_change: Callable[[], None],
        send: SendFn,
        local_state: LocalStateFn,
        schedule: ScheduleFn,
    ) -> None:
        self.me = me
        self.settings = settings
        self._world: list[NodeId] = sorted(
            (node for node in world if node != me), key=str
        )
        self._now = now
        self._on_change = on_change
        self._send = send
        self._local_state = local_state
        self._schedule = schedule
        self._rng = random.Random(_swim_seed(me))
        self._members: dict[NodeId, _MemberState] = {}
        self._gossip: dict[NodeId, _GossipEntry] = {}
        self._probes: dict[int, _Probe] = {}
        self._probe_seq = 0
        self._probe_ring: list[NodeId] = []
        self._rejoin_ring: list[NodeId] = []
        self._round = 0
        self._ae_turn = 0
        self._next_anti_entropy = self._now() + settings.anti_entropy_interval
        self._next_expiry = math.inf
        self._my_epoch = 0
        self.max_view_counter_seen = 0
        # observability (read by the membership bench and the tests)
        self.suspicions_started = 0
        self.suspicions_refuted = 0
        self.refutations_sent = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # detector interface (mirrors FailureDetector)
    # ------------------------------------------------------------------
    def alive_peers(self) -> frozenset[NodeId]:
        """Peers currently in the estimate (alive or merely suspected —
        suspicion is not eviction; never includes ``me``)."""
        return frozenset(
            peer
            for peer, state in self._members.items()
            if state.status != SWIM_DEAD
        )

    def alive_set(self) -> frozenset[NodeId]:
        """Estimate members plus ``me`` — what the membership engine
        forms views from."""
        return frozenset(self.alive_peers() | {self.me})

    def incarnation_of(self, peer: NodeId) -> int | None:
        state = self._members.get(peer)
        return state.incarnation if state is not None else None

    def check(self) -> None:
        """Evict members whose suspicion outlived the refutation window.
        O(1) while no suspicion deadline has passed."""
        now = self._now()
        if now < self._next_expiry:
            return
        timeout = self._suspicion_timeout()
        expired: list[NodeId] = []
        next_expiry = math.inf
        for peer, state in self._members.items():
            if state.status != SWIM_SUSPECT:
                continue
            deadline = state.suspect_since + timeout
            if now >= deadline:
                expired.append(peer)
            else:
                next_expiry = min(next_expiry, deadline)
        self._next_expiry = next_expiry
        if not expired:
            return
        for peer in expired:
            state = self._members[peer]
            state.status = SWIM_DEAD
            state.local_death = False
            self.evictions += 1
            self._queue_gossip(
                SwimUpdate(peer, SWIM_DEAD, state.incarnation, state.epoch)
            )
        self._on_change()

    def forget(self, peer: NodeId) -> None:
        """Drop a peer immediately (a protocol reply timed out); local
        only, like the mesh detector — gossip will revive it if it is in
        fact alive."""
        state = self._members.get(peer)
        if state is not None and state.status != SWIM_DEAD:
            state.status = SWIM_DEAD
            state.local_death = True
            self._on_change()

    def reset(self) -> None:
        """Forget everything (process recovery).  The RNG stream is NOT
        reseeded: draw counts must stay deterministic across a run."""
        self._members.clear()
        self._gossip.clear()
        self._probes.clear()
        self._probe_ring = []
        self._rejoin_ring = []
        self._next_expiry = math.inf
        self._my_epoch = 0

    def observe_traffic(self, peer: NodeId) -> None:
        """Any delivered protocol message is direct liveness evidence for
        its sender (same piggyback rule as the mesh detector)."""
        state = self._members.get(peer)
        if state is None or peer == self.me:
            return
        state.last_direct = self._now()
        if state.status == SWIM_SUSPECT:
            state.status = SWIM_ALIVE
            self.suspicions_refuted += 1
        elif state.status == SWIM_DEAD:
            state.status = SWIM_ALIVE
            state.local_death = False
            self._on_change()

    def divergent_peers(
        self, my_config_view_id: ViewId, heard_after: float
    ) -> list[NodeId]:
        """Estimate members whose latest authored swim message (newer
        than ``heard_after``) reports a configuration different from
        mine — the zombie-view guard, identical to the mesh rule."""
        divergent: list[NodeId] = []
        for peer in sorted(self._members, key=str):
            state = self._members[peer]
            if state.status == SWIM_DEAD:
                continue
            if state.last_view_report < heard_after:
                continue
            if (
                state.config_view_id is not None
                and state.config_view_id != my_config_view_id
            ):
                divergent.append(peer)
        return divergent

    def on_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Mesh heartbeats are understood as plain direct evidence, so a
        mixed-mode cluster degrades gracefully instead of crashing."""
        self._hear_direct(
            heartbeat.sender,
            heartbeat.incarnation,
            heartbeat.view_counter,
            heartbeat.config_view_id,
        )

    # ------------------------------------------------------------------
    # dispatch (the P201 site for the swim wire vocabulary)
    # ------------------------------------------------------------------
    MESSAGE_TYPES: "tuple[type[Any], ...]" = (
        SwimPing,
        SwimAck,
        SwimPingReq,
        SwimDigest,
    )

    def owns(self, payload: Any) -> bool:
        """True for payloads this detector dispatches (used by the daemon
        to gate the partition-amnesia eviction branch without creating a
        second dispatch site)."""
        return type(payload) in self.MESSAGE_TYPES

    def on_message(self, payload: Any, sender: NodeId) -> bool:
        """Dispatch one received swim payload; returns False for
        anything that is not part of the swim vocabulary."""
        if isinstance(payload, SwimPing):
            self._on_ping(payload)
        elif isinstance(payload, SwimAck):
            self._on_ack(payload)
        elif isinstance(payload, SwimPingReq):
            self._on_ping_req(payload)
        elif isinstance(payload, SwimDigest):
            self._on_digest(payload)
        else:
            return False
        if sender != self.me:
            # relayed messages (indirect acks) arrive from a helper, not
            # their author — the transport-level sender is alive too.
            self.observe_traffic(sender)
        return True

    # ------------------------------------------------------------------
    # probe rounds
    # ------------------------------------------------------------------
    def on_probe_tick(self) -> None:
        """One SWIM round: probe the next ring peer, occasionally probe a
        dead/unknown world member (rejoin path), run anti-entropy."""
        now = self._now()
        self._round += 1
        self._probe_next(now)
        if self._round % _REJOIN_EVERY == 0:
            self._probe_rejoin()
        if now >= self._next_anti_entropy:
            self._next_anti_entropy = now + self.settings.anti_entropy_interval
            self._anti_entropy()

    def announce(self) -> None:
        """Push our view id at a few alive peers immediately (called
        after a resync-to-singleton, where the mesh would force-broadcast
        a heartbeat so peers spot the divergence quickly)."""
        peers = sorted(self.alive_peers(), key=str)
        if not peers:
            return
        fanout = min(self.settings.swim_fanout, len(peers))
        for peer in self._rng.sample(peers, fanout):
            self._send_digest(peer, reply_requested=True)

    def _probe_next(self, now: float) -> None:
        target = self._next_probe_target()
        if target is None:
            return
        seq = self._probe_seq
        self._probe_seq += 1
        self._probes[seq] = _Probe(target, now)
        self._send_ping(target, seq, origin=None)
        self._schedule(
            self.settings.probe_timeout, lambda: self._probe_deadline(seq)
        )

    def _next_probe_target(self) -> NodeId | None:
        """Randomized round-robin over the current estimate: every member
        is probed at least once per ring cycle (SWIM's time-bounded
        first-detection property).  At boot — before anything is known —
        the ring falls back to the whole world."""
        while self._probe_ring:
            candidate = self._probe_ring.pop()
            state = self._members.get(candidate)
            if state is None or state.status != SWIM_DEAD:
                return candidate
        ring = [
            peer
            for peer in self._world
            if peer in self._members
            and self._members[peer].status != SWIM_DEAD
        ]
        if not ring:
            ring = [peer for peer in self._world if peer not in self._members]
        if not ring:
            return None
        self._rng.shuffle(ring)
        self._probe_ring = ring
        return self._probe_ring.pop()

    def _probe_deadline(self, seq: int) -> None:
        """The direct ack window closed: fan the probe out through
        ``swim_fanout`` helpers, then give the round until its end."""
        probe = self._probes.get(seq)
        if probe is None:
            return  # acked in time
        probe.indirect_sent = True
        helpers = [
            peer
            for peer in sorted(self.alive_peers(), key=str)
            if peer != probe.target
        ]
        fanout = min(self.settings.swim_fanout, len(helpers))
        if fanout > 0:
            incarnation, view_counter, config_view_id = self._local_state()
            for helper in self._rng.sample(helpers, fanout):
                request = SwimPingReq(
                    self.me,
                    incarnation,
                    view_counter,
                    config_view_id,
                    probe.target,
                    seq,
                    self._take_gossip(),
                )
                self._send(helper, request, "swim.ping_req", 1)
        remaining = max(
            self.settings.probe_interval - self.settings.probe_timeout,
            self.settings.probe_timeout,
        )
        self._schedule(remaining, lambda: self._probe_expire(seq))

    def _probe_expire(self, seq: int) -> None:
        probe = self._probes.pop(seq, None)
        if probe is None:
            return  # acked (directly or through a helper)
        self._suspect(probe.target)

    def _probe_rejoin(self) -> None:
        """Ping one currently-dead (or never-heard) world member: boot
        discovery and the first cross-partition contact after a heal.
        No probe record — an absent node must not trigger suspicion
        machinery, and an alive one answers with an ack that revives it."""
        while self._rejoin_ring:
            candidate = self._rejoin_ring.pop()
            state = self._members.get(candidate)
            if state is None or state.status == SWIM_DEAD:
                seq = self._probe_seq
                self._probe_seq += 1
                self._send_ping(candidate, seq, origin=None)
                return
        self._rejoin_ring = [
            peer
            for peer in self._world
            if peer not in self._members
            or self._members[peer].status == SWIM_DEAD
        ]
        self._rng.shuffle(self._rejoin_ring)

    def _suspect(self, target: NodeId) -> None:
        state = self._members.get(target)
        if state is None or state.status != SWIM_ALIVE:
            return  # unknown, already suspected, or already dead
        now = self._now()
        state.status = SWIM_SUSPECT
        state.suspect_since = now
        self.suspicions_started += 1
        self._next_expiry = min(
            self._next_expiry, now + self._suspicion_timeout()
        )
        self._queue_gossip(
            SwimUpdate(target, SWIM_SUSPECT, state.incarnation, state.epoch)
        )

    def _suspicion_timeout(self) -> float:
        population = len(self._members) + 1
        spread = max(1.0, math.log10(population + 1))
        return (
            self.settings.suspicion_multiplier
            * self.settings.probe_interval
            * spread
        )

    # ------------------------------------------------------------------
    # message handlers
    # ------------------------------------------------------------------
    def _on_ping(self, ping: SwimPing) -> None:
        self._hear_direct(
            ping.sender, ping.incarnation, ping.view_counter, ping.config_view_id
        )
        self._merge_updates(ping.updates)
        incarnation, view_counter, config_view_id = self._local_state()
        ack = SwimAck(
            self.me,
            incarnation,
            view_counter,
            config_view_id,
            ping.probe_seq,
            ping.origin,
            self._take_gossip(),
        )
        self._send(ping.sender, ack, "swim.ack", 1)

    def _on_ack(self, ack: SwimAck) -> None:
        self._hear_direct(
            ack.sender, ack.incarnation, ack.view_counter, ack.config_view_id
        )
        self._merge_updates(ack.updates)
        if ack.origin is not None and ack.origin != self.me:
            # we were the helper: relay the target's ack to the prober
            # (the frozen payload is forwarded verbatim, never mutated)
            self._send(ack.origin, ack, "swim.ack", 1)
            return
        self._probes.pop(ack.probe_seq, None)

    def _on_ping_req(self, request: SwimPingReq) -> None:
        self._hear_direct(
            request.sender,
            request.incarnation,
            request.view_counter,
            request.config_view_id,
        )
        self._merge_updates(request.updates)
        self._send_ping(request.target, request.probe_seq, origin=request.sender)

    def _on_digest(self, digest: SwimDigest) -> None:
        self._hear_direct(
            digest.sender,
            digest.incarnation,
            digest.view_counter,
            digest.config_view_id,
        )
        self._merge_updates(digest.entries)
        if digest.reply_requested:
            self._send_digest(digest.sender, reply_requested=False)

    def _send_ping(self, target: NodeId, seq: int, origin: NodeId | None) -> None:
        incarnation, view_counter, config_view_id = self._local_state()
        ping = SwimPing(
            self.me,
            incarnation,
            view_counter,
            config_view_id,
            seq,
            origin,
            self._take_gossip(),
        )
        self._send(target, ping, "swim.ping", 1)

    def _send_digest(self, target: NodeId, reply_requested: bool) -> None:
        incarnation, view_counter, config_view_id = self._local_state()
        entries = [SwimUpdate(self.me, SWIM_ALIVE, incarnation, self._my_epoch)]
        for peer in sorted(self._members, key=str):
            state = self._members[peer]
            if state.local_death:
                continue  # a forget() hint is not ours to assert
            entries.append(
                SwimUpdate(peer, state.status, state.incarnation, state.epoch)
            )
        digest = SwimDigest(
            self.me,
            incarnation,
            view_counter,
            config_view_id,
            tuple(entries),
            reply_requested,
        )
        self._send(target, digest, "swim.digest", 1 + len(entries) // 8)

    def _anti_entropy(self) -> None:
        """Push-pull digest exchange with one peer — mostly an alive one,
        every ``_AE_REJOIN_EVERY``-th turn a dead/unknown world member so
        healed partitions re-converge even if rejoin pings were lost."""
        self._ae_turn += 1
        alive = sorted(self.alive_peers(), key=str)
        dead = [
            peer
            for peer in self._world
            if peer not in self._members
            or self._members[peer].status == SWIM_DEAD
        ]
        pool = alive
        if self._ae_turn % _AE_REJOIN_EVERY == 0 and dead:
            pool = dead
        if not pool:
            pool = dead
        if not pool:
            return
        target = pool[self._rng.randrange(len(pool))]
        self._send_digest(target, reply_requested=True)

    # ------------------------------------------------------------------
    # state merging
    # ------------------------------------------------------------------
    def _hear_direct(
        self,
        peer: NodeId,
        incarnation: int,
        view_counter: int,
        config_view_id: ViewId | None,
    ) -> None:
        """A message authored by ``peer`` arrived: the strongest possible
        aliveness evidence, overriding any gossiped suspicion or death
        locally (global refutation still needs the subject's epoch bump)."""
        if peer == self.me:
            return
        self.max_view_counter_seen = max(self.max_view_counter_seen, view_counter)
        now = self._now()
        state = self._members.get(peer)
        if state is None:
            self._members[peer] = _MemberState(
                SWIM_ALIVE,
                incarnation,
                0,
                last_direct=now,
                config_view_id=config_view_id,
                last_view_report=now,
            )
            self._on_change()
            return
        if incarnation < state.incarnation:
            # a stale pre-restart message must not resurrect old aliveness
            return
        changed = False
        if incarnation > state.incarnation:
            # the peer restarted: fresh incarnation, epoch restarts —
            # a membership change whether it was in the estimate or dead
            state.incarnation = incarnation
            state.epoch = 0
            state.status = SWIM_ALIVE
            changed = True
        elif state.status == SWIM_SUSPECT:
            state.status = SWIM_ALIVE
            self.suspicions_refuted += 1
        elif state.status == SWIM_DEAD:
            state.status = SWIM_ALIVE
            changed = True
        state.local_death = False
        state.last_direct = now
        state.config_view_id = config_view_id
        state.last_view_report = now
        if changed:
            self._on_change()

    def _merge_updates(self, updates: tuple[SwimUpdate, ...]) -> None:
        for update in updates:
            self._apply_update(update)

    def _apply_update(self, update: SwimUpdate) -> None:
        if update.subject == self.me:
            self._maybe_refute(update)
            return
        state = self._members.get(update.subject)
        if state is None:
            if update.subject not in set(self._world):
                return  # not part of this service's world
            self._members[update.subject] = _MemberState(
                update.status,
                update.incarnation,
                update.epoch,
                last_direct=self._now(),
            )
            if update.status == SWIM_SUSPECT:
                self._members[update.subject].suspect_since = self._now()
                self._arm_expiry()
            self._queue_gossip(update)
            if update.status != SWIM_DEAD:
                self._on_change()
            return
        point = (update.incarnation, update.epoch)
        current = (state.incarnation, state.epoch)
        if point < current:
            return
        if point == current and update.status <= state.status:
            # ...except that alive-at-current-point does revive a peer we
            # only forgot locally (the hint is weaker than any verdict)
            if not (state.local_death and update.status == SWIM_ALIVE):
                return
        was_member = state.status != SWIM_DEAD
        restarted = update.incarnation > state.incarnation
        state.incarnation = update.incarnation
        state.epoch = update.epoch
        previous_status = state.status
        state.status = update.status
        state.local_death = False
        if update.status == SWIM_SUSPECT and previous_status != SWIM_SUSPECT:
            state.suspect_since = self._now()
            self.suspicions_started += 1
            self._arm_expiry()
        if update.status == SWIM_ALIVE and previous_status == SWIM_SUSPECT:
            self.suspicions_refuted += 1
        self._queue_gossip(update)
        is_member = state.status != SWIM_DEAD
        if was_member != is_member or (restarted and is_member):
            if not is_member:
                self.evictions += 1
            self._on_change()

    def _maybe_refute(self, update: SwimUpdate) -> None:
        """Someone gossips that *we* are suspected or dead: override it
        with a higher epoch — exactly once per superseding observation."""
        if update.status == SWIM_ALIVE:
            return
        incarnation, _view_counter, _config_view_id = self._local_state()
        if update.incarnation < incarnation:
            return  # about a previous life of ours; already superseded
        if update.epoch < self._my_epoch:
            return  # an alive at our current epoch already overrides it
        self._my_epoch = update.epoch + 1
        self.refutations_sent += 1
        self._queue_gossip(
            SwimUpdate(self.me, SWIM_ALIVE, incarnation, self._my_epoch)
        )

    def _arm_expiry(self) -> None:
        self._next_expiry = min(
            self._next_expiry, self._now() + self._suspicion_timeout()
        )

    # ------------------------------------------------------------------
    # gossip buffer
    # ------------------------------------------------------------------
    def _gossip_budget(self) -> int:
        population = len(self._members) + 1
        spread = math.ceil(math.log10(population + 1))
        return max(
            _MIN_GOSSIP_BUDGET, self.settings.swim_fanout * int(spread)
        )

    def _queue_gossip(self, update: SwimUpdate) -> None:
        """Queue (or supersede) the pending observation about a subject;
        the transmission budget restarts with the new observation."""
        self._gossip[update.subject] = _GossipEntry(update)

    def _take_gossip(self) -> tuple[SwimUpdate, ...]:
        """Pending observations for one outgoing message: least-sent
        first (deterministic tie-break), each charged one transmission,
        exhausted entries dropped."""
        if not self._gossip:
            return ()
        entries = sorted(
            self._gossip.values(),
            key=lambda entry: (entry.sent, str(entry.update.subject)),
        )
        picked = entries[: self.settings.gossip_max_updates]
        for entry in picked:
            entry.sent += 1
        budget = self._gossip_budget()
        exhausted = [
            subject
            for subject, entry in self._gossip.items()
            if entry.sent >= budget
        ]
        for subject in exhausted:
            del self._gossip[subject]
        return tuple(entry.update for entry in picked)


__all__ = [
    "SWIM_ALIVE",
    "SWIM_DEAD",
    "SWIM_SUSPECT",
    "SwimDetector",
]
