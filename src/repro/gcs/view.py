"""View and configuration identifiers.

A *configuration* is the daemon-level membership agreed by one partition
component; every configuration has a unique, totally ordered
:class:`ViewId`.  A *group view* is the slice of a configuration visible to
one named group; it changes when the configuration changes or when members
join or leave the group.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterable

from repro.sim.topology import NodeId


@total_ordering
@dataclass(frozen=True)
class ViewId:
    """A totally ordered view identifier: ``(counter, coordinator)``.

    Counters only grow (each new view's counter exceeds every counter known
    to any of its members), so comparing :class:`ViewId` lexicographically
    orders views consistently across the system.
    """

    counter: int
    coordinator: NodeId

    def _key(self) -> tuple:
        return (self.counter, str(self.coordinator))

    def __lt__(self, other: "ViewId") -> bool:
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"v{self.counter}@{self.coordinator}"


@dataclass(frozen=True)
class Configuration:
    """An installed daemon-level membership.

    ``members`` is stored as a sorted tuple so that every holder of the
    configuration iterates it in the same order — several framework
    decisions (sequencer choice, primary selection) rely on this shared
    determinism.
    """

    view_id: ViewId
    members: tuple[NodeId, ...]

    @staticmethod
    def make(view_id: ViewId, members: Iterable[NodeId]) -> "Configuration":
        return Configuration(view_id=view_id, members=tuple(sorted(members, key=str)))

    @property
    def sequencer(self) -> NodeId:
        """The member that assigns the configuration's total order: the
        smallest member id (deterministic and agreed)."""
        return self.members[0]

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        return f"Config({self.view_id}, {list(self.members)})"


@dataclass(frozen=True)
class GroupView:
    """The membership of one named group as seen in one configuration.

    ``change_seq`` is the total-order sequence number of the join/leave
    event (or configuration installation) that produced this view, making
    group views totally ordered per configuration and identical at all
    members — the paper's "consistent reflection across groups".
    """

    group: str
    config_view_id: ViewId
    change_seq: int
    members: tuple[NodeId, ...]

    @staticmethod
    def make(
        group: str, config_view_id: ViewId, change_seq: int, members: Iterable[NodeId]
    ) -> "GroupView":
        return GroupView(
            group=group,
            config_view_id=config_view_id,
            change_seq=change_seq,
            members=tuple(sorted(members, key=str)),
        )

    @property
    def view_key(self) -> tuple:
        """A totally ordered key identifying this group view."""
        return (self.config_view_id, self.change_seq)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:
        return (
            f"GroupView({self.group}, {self.config_view_id}/{self.change_seq}, "
            f"{list(self.members)})"
        )


__all__ = ["Configuration", "GroupView", "ViewId"]
