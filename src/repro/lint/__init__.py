"""``repro lint`` — determinism & protocol-hygiene static analysis.

The reproduction's headline properties (bit-identical chaos replay,
sharded-equals-serial parallel runs, SHA-256 trace digests as determinism
witnesses) all rest on source-level discipline that nothing used to check:
no wall clocks or ambient entropy in protocol code, stable iteration
orders, one dispatch site per wire message, frozen message payloads, and
config knobs that are both declared and read.  This package verifies those
invariants mechanically, at lint time, before a single simulation runs.

Two rule families (see :mod:`repro.lint.registry` for the catalogue):

* **D-rules** (determinism): wall clocks, unseeded RNG, set-iteration
  order escapes, ``id()`` ordering, missing ``__slots__`` on hot classes,
  mutable defaults.
* **P-rules** (protocol hygiene): wire-message dispatch completeness,
  stored-timer cancellation paths, frozen/unmutated message payloads,
  config-knob declaration/read consistency.

Findings can be suppressed per line with ``# repro-lint: allow(RULE)``
(by rule id or slug), on the offending line or the line above it.

Usage::

    python -m repro lint src/                 # lint the tree, exit 0/1
    python -m repro lint src/ --json out.json # machine-readable report
    python -m repro lint --list-rules
"""

from repro.lint.engine import LintContext, ModuleInfo, lint_paths
from repro.lint.registry import Rule, all_rules, get_rule
from repro.lint.report import Finding, Report

__all__ = [
    "Finding",
    "LintContext",
    "ModuleInfo",
    "Report",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
]
