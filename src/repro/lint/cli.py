"""``python -m repro lint`` — command-line front end of the rule engine."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules


def build_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint", description=__doc__
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the machine-readable report to FILE",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids/slugs to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-finding output"
    )
    return parser


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            scope = ",".join(sorted(rule.scope)) if rule.scope else "everywhere"
            kind = "project" if rule.project_check is not None else "file"
            print(f"{rule.rule_id}  {rule.slug:<16} [{kind}; {scope}] {rule.summary}")
        return 0
    select = None
    if args.select:
        select = [token for token in args.select.split(",") if token.strip()]
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, KeyError) as error:
        print(f"repro lint: {error}")
        return 2
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n", encoding="utf-8")
    if not args.quiet:
        for finding in report.findings:
            print(finding.render())
    counts = ", ".join(
        f"{rule_id}:{count}" for rule_id, count in report.counts_by_rule().items()
    )
    status = "clean" if report.ok else f"FAILED ({counts})"
    print(
        f"repro lint: {report.files_scanned} file(s), "
        f"{len(report.findings)} finding(s), {report.suppressed} suppressed "
        f"— {status}"
    )
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
