"""The lint engine: file collection, parsing, pragmas, rule driving.

The engine parses every target file once, annotates the AST with parent
links and an import-alias table (so rules can resolve dotted call targets
like ``np.random.default_rng`` to qualified names), extracts
``# repro-lint: allow(...)`` pragmas, and then runs every applicable rule
— file rules per module, project rules once over the whole set.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.registry import Rule, all_rules
from repro.lint.report import Finding, Report

_PRAGMA = re.compile(r"#\s*repro-lint:\s*allow\(([^)]*)\)")


@dataclass(slots=True)
class ModuleInfo:
    """One parsed source file plus the metadata rules need."""

    path: Path
    display: str  # posix path used in findings
    parts: tuple[str, ...]  # path segments for scope matching
    source: str
    tree: ast.Module
    lines: list[str]
    #: line number -> set of allowed rule tokens (ids or slugs)
    pragmas: dict[int, frozenset[str]]
    #: local name -> qualified dotted origin ("np" -> "numpy",
    #: "perf_counter" -> "time.perf_counter", "datetime" -> "datetime.datetime")
    aliases: dict[str, str] = field(default_factory=dict)

    def endswith(self, *suffixes: str) -> bool:
        return any(self.display.endswith(suffix) for suffix in suffixes)

    def qualified_name(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to a dotted qualified name using
        the module's import aliases; ``None`` if the base is not imported.

        Plain builtins resolve to their own name (``id`` -> ``"id"``)
        unless shadowed by an import.
        """
        chain: list[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        base = self.aliases.get(cursor.id, cursor.id if not chain else None)
        if base is None:
            return None
        return ".".join([base, *reversed(chain)])


class LintContext:
    """Every module of one lint run (what project rules see)."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules

    def modules_matching(self, *suffixes: str) -> list[ModuleInfo]:
        return [m for m in self.modules if m.endswith(*suffixes)]


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _collect_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        tokens = frozenset(
            token.strip() for token in re.split(r"[,\s]+", match.group(1)) if token.strip()
        )
        if tokens:
            pragmas[lineno] = tokens
    return pragmas


def _link_parents(tree: ast.Module) -> None:
    """Attach a ``.lint_parent`` attribute to every node (rules use it to
    ask 'is this expression a direct argument of sorted(...)')."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.lint_parent = node  # type: ignore[attr-defined]


def parse_module(path: Path, display: str | None = None) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    _link_parents(tree)
    lines = source.splitlines()
    shown = display if display is not None else path.as_posix()
    return ModuleInfo(
        path=path,
        display=shown,
        parts=tuple(Path(shown).parts),
        source=source,
        tree=tree,
        lines=lines,
        pragmas=_collect_pragmas(lines),
        aliases=_collect_aliases(tree),
    )


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand the given paths into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in path.rglob("*.py"):
                if "__pycache__" not in child.parts:
                    found.add(child)
        elif path.suffix == ".py" and path.exists():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def _suppressed(finding: Finding, module: ModuleInfo) -> bool:
    """A finding is suppressed by an allow() pragma naming its rule id or
    slug on the finding's line or the line directly above it."""
    for lineno in (finding.line, finding.line - 1):
        tokens = module.pragmas.get(lineno)
        if tokens and (finding.rule in tokens or finding.slug in tokens):
            return True
    return False


def _run_rules(
    context: LintContext, rules: list[Rule]
) -> tuple[list[Finding], int]:
    by_display = {module.display: module for module in context.modules}
    kept: list[Finding] = []
    suppressed = 0
    raw: list[Finding] = []
    for rule in rules:
        if rule.file_check is not None:
            for module in context.modules:
                if rule.applies_to(module.parts):
                    raw.extend(rule.file_check(module))
        elif rule.project_check is not None:
            raw.extend(rule.project_check(context))
    for finding in raw:
        module = by_display.get(finding.path)
        if module is not None and _suppressed(finding, module):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept, suppressed


def lint_paths(
    paths: Iterable[str | Path], select: Iterable[str] | None = None
) -> Report:
    """Lint the given files/directories; returns the full :class:`Report`.

    ``select`` restricts the run to the named rules (ids or slugs).
    """
    rules = all_rules()
    if select is not None:
        wanted = {token.strip() for token in select}
        rules = [r for r in rules if r.rule_id in wanted or r.slug in wanted]
        unknown = wanted - {r.rule_id for r in rules} - {r.slug for r in rules}
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    modules = [parse_module(path) for path in collect_files(paths)]
    context = LintContext(modules)
    findings, suppressed = _run_rules(context, rules)
    return Report(
        findings=findings,
        files_scanned=len(modules),
        suppressed=suppressed,
        rules_run=[r.rule_id for r in rules],
    )


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _iter_scope_children(node: ast.AST) -> Iterator[ast.AST]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested scope: analysed separately
        yield child
        yield from _iter_scope_children(child)


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Yield ``scope`` and its nodes in document order, without descending
    into nested function definitions (each is its own analysis scope)."""
    yield scope
    yield from _iter_scope_children(scope)


__all__ = [
    "LintContext",
    "ModuleInfo",
    "collect_files",
    "iter_function_defs",
    "lint_paths",
    "parse_module",
    "walk_scope",
]
