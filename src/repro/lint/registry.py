"""Rule registry: ids, slugs, scopes, and the registration decorator.

A rule is either a *file* rule (checks one parsed module at a time) or a
*project* rule (sees every scanned module at once — needed for
cross-module invariants like dispatch completeness).  Rules register
themselves via the :func:`rule` decorator at import time; the engine
imports the two rule modules and iterates :func:`all_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.lint.report import Finding

if TYPE_CHECKING:  # circular at runtime: engine imports the rule modules
    from repro.lint.engine import LintContext, ModuleInfo

FileCheck = Callable[["ModuleInfo"], Iterable[Finding]]
ProjectCheck = Callable[["LintContext"], Iterable[Finding]]

#: Path segments that mark a module as *protocol scope* — code whose
#: behaviour feeds simulation state or trace digests, where determinism
#: rules apply at full strength.
PROTOCOL_SCOPE = frozenset({"sim", "gcs", "core", "chaos", "faults"})


@dataclass(frozen=True, slots=True)
class Rule:
    """Metadata + checker for one lint rule."""

    rule_id: str  # "D101"
    slug: str  # "wall-clock"
    summary: str
    scope: frozenset[str] | None  # path segments; None = every module
    file_check: FileCheck | None = None
    project_check: ProjectCheck | None = None

    def applies_to(self, parts: tuple[str, ...]) -> bool:
        if self.scope is None:
            return True
        return bool(self.scope.intersection(parts))


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    if (rule.file_check is None) == (rule.project_check is None):
        raise ValueError(f"{rule.rule_id}: exactly one checker kind required")
    _REGISTRY[rule.rule_id] = rule
    return rule


def rule(
    rule_id: str,
    slug: str,
    summary: str,
    scope: Iterable[str] | None = None,
    project: bool = False,
) -> Callable[[Callable[..., Iterable[Finding]]], Callable[..., Iterable[Finding]]]:
    """Decorator registering ``fn`` as the checker of a new rule."""

    def decorate(
        fn: Callable[..., Iterable[Finding]]
    ) -> Callable[..., Iterable[Finding]]:
        register(
            Rule(
                rule_id=rule_id,
                slug=slug,
                summary=summary,
                scope=frozenset(scope) if scope is not None else None,
                file_check=None if project else fn,
                project_check=fn if project else None,
            )
        )
        return fn

    return decorate


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    _load()
    return [rule for _, rule in sorted(_REGISTRY.items())]


def get_rule(id_or_slug: str) -> Rule:
    _load()
    key = id_or_slug.strip()
    for candidate in _REGISTRY.values():
        if key in (candidate.rule_id, candidate.slug):
            return candidate
    raise KeyError(f"unknown rule {id_or_slug!r}")


def _load() -> None:
    """Import the rule modules (registration happens at import time)."""
    import repro.lint.rules_determinism  # noqa: F401
    import repro.lint.rules_protocol  # noqa: F401


__all__ = [
    "PROTOCOL_SCOPE",
    "FileCheck",
    "ProjectCheck",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rule",
]
