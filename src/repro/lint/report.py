"""Findings and the machine-readable lint report."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  # "D101"
    slug: str  # "wall-clock"
    path: str  # as given on the command line (posix separators)
    line: int  # 1-based
    col: int  # 0-based, as in the ast module
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}({self.slug}) {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "slug": self.slug,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(slots=True)
class Report:
    """Everything one lint run produced."""

    findings: list[Finding]
    files_scanned: int
    suppressed: int  # findings silenced by allow() pragmas
    rules_run: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "rules_run": list(self.rules_run),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


__all__ = ["Finding", "Report"]
