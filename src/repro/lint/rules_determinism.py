"""D-rules: determinism hazards that break bit-identical replay.

Replay (`python -m repro chaos --replay`) and sharded-equals-serial
parallelism both assert *bit-identical* trace digests.  Anything that
injects host state into protocol behaviour — wall clocks, ambient
entropy, hash-randomized iteration orders, object identities — silently
voids that contract in ways the oracles only catch probabilistically.
These rules ban the sources outright at lint time.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.engine import ModuleInfo, iter_function_defs, walk_scope
from repro.lint.registry import PROTOCOL_SCOPE, rule
from repro.lint.report import Finding

#: Modules whose classes sit on the simulator's hottest allocation paths;
#: every class defined here must be ``__slots__``-backed (directly or via
#: ``@dataclass(slots=True)``).
HOT_MODULES = (
    "sim/engine.py",
    "sim/network.py",
    "sim/process.py",
    "gcs/messages.py",
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)
_ENTROPY_PREFIXES = ("secrets.",)
#: The module-level numpy.random functions share unseeded global state;
#: only the explicit-generator constructors are replay-safe.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.BitGenerator",
    }
)
#: Stdlib ``random`` module-level functions use the shared global RNG;
#: ``random.Random(seed)`` instances are fine.
_STDLIB_RANDOM_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})

_MUTABLE_CTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.Counter",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
    }
)

#: Callables whose result does not depend on argument iteration order —
#: iterating a set directly inside them is harmless.
_ORDER_INDEPENDENT_CALLS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "sum", "set", "frozenset"}
)

_MUTATING_EXEMPT_BASES = frozenset(
    {"Exception", "BaseException"}  # documented, not currently used
)


def _finding(
    rule_id: str, slug: str, module: ModuleInfo, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule=rule_id,
        slug=slug,
        path=module.display,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


# ---------------------------------------------------------------------------
# D101 wall-clock
# ---------------------------------------------------------------------------
@rule(
    "D101",
    "wall-clock",
    "host wall-clock call (time.*/datetime.now) — use sim.now, or pragma "
    "host-time measurements explicitly",
)
def check_wall_clock(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.qualified_name(node.func)
        if qualified in _WALL_CLOCK_CALLS:
            yield _finding(
                "D101",
                "wall-clock",
                module,
                node,
                f"{qualified}() reads the host clock; simulation code must "
                "use sim.now (pragma-allow genuine host-time measurement)",
            )


# ---------------------------------------------------------------------------
# D102 ambient-entropy
# ---------------------------------------------------------------------------
@rule(
    "D102",
    "ambient-entropy",
    "unseeded / ambient randomness (os.urandom, uuid4, global random.*, "
    "numpy.random module functions)",
)
def check_ambient_entropy(module: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.qualified_name(node.func)
        if qualified is None:
            continue
        bad = (
            qualified in _ENTROPY_CALLS
            or any(qualified.startswith(p) for p in _ENTROPY_PREFIXES)
            or (
                qualified.startswith("random.")
                and qualified not in _STDLIB_RANDOM_ALLOWED
            )
            or (
                qualified.startswith("numpy.random.")
                and qualified not in _NUMPY_RANDOM_ALLOWED
            )
        )
        if bad:
            yield _finding(
                "D102",
                "ambient-entropy",
                module,
                node,
                f"{qualified}() draws ambient entropy; use a seeded "
                "numpy default_rng stream (see repro.sim.rng)",
            )


# ---------------------------------------------------------------------------
# D103 set-order
# ---------------------------------------------------------------------------
_SET_ANNOTATIONS = ("set", "frozenset", "Set", "FrozenSet")


def _local_set_names(scope: ast.AST) -> set[str]:
    """Names bound to set-typed values within one function/module scope
    (assignments, annotations, and set-annotated parameters; no
    interprocedural inference)."""
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in [*scope.args.posonlyargs, *scope.args.args, *scope.args.kwonlyargs]:
            if arg.annotation is not None:
                annotation = ast.unparse(arg.annotation)
                if annotation.split("[")[0] in _SET_ANNOTATIONS:
                    names.add(arg.arg)
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if annotation.split("[")[0] in _SET_ANNOTATIONS:
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _inside_order_independent_call(node: ast.AST) -> bool:
    parent = getattr(node, "lint_parent", None)
    if (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in _ORDER_INDEPENDENT_CALLS
        and node in parent.args
    ):
        return True
    return False


@rule(
    "D103",
    "set-order",
    "iteration over a set where the order can escape (wrap in sorted())",
    scope=PROTOCOL_SCOPE,
)
def check_set_order(module: ModuleInfo) -> Iterator[Finding]:
    scopes: list[ast.AST] = [module.tree, *iter_function_defs(module.tree)]
    for scope in scopes:
        set_names = _local_set_names(scope)
        for node in walk_scope(scope):
            if isinstance(node, ast.For) and _is_set_expr(node.iter, set_names):
                yield _finding(
                    "D103",
                    "set-order",
                    module,
                    node.iter,
                    "for-loop over a set: iteration order is hash-dependent "
                    "and can leak into protocol state; wrap in sorted(...)",
                )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                first = node.generators[0].iter
                if _is_set_expr(first, set_names) and not _inside_order_independent_call(node):
                    yield _finding(
                        "D103",
                        "set-order",
                        module,
                        first,
                        "comprehension over a set builds an ordered result "
                        "from hash order; wrap the set in sorted(...)",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield _finding(
                    "D103",
                    "set-order",
                    module,
                    node,
                    f"{node.func.id}(set) freezes hash order into a sequence; "
                    "use sorted(...)",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expr(node.args[0], set_names)
            ):
                yield _finding(
                    "D103",
                    "set-order",
                    module,
                    node,
                    "str.join over a set concatenates in hash order; "
                    "use sorted(...)",
                )


# ---------------------------------------------------------------------------
# D104 id-order
# ---------------------------------------------------------------------------
@rule(
    "D104",
    "id-order",
    "builtin id() in protocol scope (object identities vary across runs)",
    scope=PROTOCOL_SCOPE,
)
def check_id_order(module: ModuleInfo) -> Iterator[Finding]:
    if "id" in module.aliases:
        return  # shadowed by an import; not the builtin
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            yield _finding(
                "D104",
                "id-order",
                module,
                node,
                "id() values differ between runs; keying, sorting or "
                "tracing by object identity is nondeterministic",
            )
        elif isinstance(node, ast.Call):
            # the builtin passed by reference, e.g. sorted(xs, key=id)
            referenced = [
                arg
                for arg in [*node.args, *[kw.value for kw in node.keywords]]
                if isinstance(arg, ast.Name) and arg.id == "id"
            ]
            for arg in referenced:
                yield _finding(
                    "D104",
                    "id-order",
                    module,
                    arg,
                    "builtin id passed as a key/callback: ordering or "
                    "grouping by object identity is nondeterministic",
                )


# ---------------------------------------------------------------------------
# D105 slots-required
# ---------------------------------------------------------------------------
def _has_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__" for t in statement.targets
        ):
            return True
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "__slots__"
        ):
            return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots" and isinstance(keyword.value, ast.Constant):
                    if keyword.value.value is True:
                        return True
    return False


def _slots_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
        if name.endswith(("Error", "Exception")) or name in (
            "Enum",
            "IntEnum",
            "Flag",
            "Protocol",
            "ABC",
        ):
            return True
    return False


@rule(
    "D105",
    "slots-required",
    "class in a designated hot module lacks __slots__",
)
def check_slots(module: ModuleInfo) -> Iterator[Finding]:
    if not module.endswith(*HOT_MODULES):
        return
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if _slots_exempt(node) or _has_slots(node):
            continue
        yield _finding(
            "D105",
            "slots-required",
            module,
            node,
            f"class {node.name} lives in a hot module but has no __slots__ "
            "(add __slots__ or @dataclass(slots=True))",
        )


# ---------------------------------------------------------------------------
# D106 mutable-default
# ---------------------------------------------------------------------------
def _is_mutable_value(node: ast.expr, module: ModuleInfo) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        qualified = module.qualified_name(node.func)
        if qualified in _MUTABLE_CTORS:
            return True
    return False


def _is_dataclass(node: ast.ClassDef, module: ModuleInfo) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        qualified = module.qualified_name(target)
        if qualified in ("dataclasses.dataclass", "dataclass"):
            return True
    return False


@rule(
    "D106",
    "mutable-default",
    "mutable default argument or shared mutable class attribute "
    "(replay hazard: state leaks across calls/instances)",
)
def check_mutable_default(module: ModuleInfo) -> Iterable[Finding]:
    findings: list[Finding] = []
    for fn in iter_function_defs(module.tree):
        for default in [*fn.args.defaults, *fn.args.kw_defaults]:
            if default is not None and _is_mutable_value(default, module):
                findings.append(
                    _finding(
                        "D106",
                        "mutable-default",
                        module,
                        default,
                        f"mutable default argument in {fn.name}() is shared "
                        "across calls; default to None or use a factory",
                    )
                )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        dataclass_like = _is_dataclass(node, module)
        for statement in node.body:
            value: ast.expr | None = None
            name = ""
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if isinstance(target, ast.Name):
                    name, value = target.id, statement.value
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                name, value = statement.target.id, statement.value
            if value is None or name.startswith("__"):
                continue
            if _is_mutable_value(value, module):
                kind = (
                    "dataclass field default"
                    if dataclass_like
                    else "class attribute"
                )
                findings.append(
                    _finding(
                        "D106",
                        "mutable-default",
                        module,
                        value,
                        f"mutable {kind} {name!r} is shared by every "
                        "instance; use field(default_factory=...) or set it "
                        "in __init__",
                    )
                )
    return findings


__all__ = ["HOT_MODULES"]
