"""P-rules: protocol hygiene checked across module boundaries.

These are the framework's structural invariants: every wire message has a
home (a dispatch site), stored timers have a cancellation path, message
payloads are frozen and never mutated by handlers (the chaos network may
``duplicate``/``reorder`` the same object!), and every configuration knob
is both declared and read.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext, ModuleInfo, iter_function_defs, walk_scope
from repro.lint.registry import rule
from repro.lint.report import Finding

#: Modules that define the wire vocabulary.  Every *dataclass* defined at
#: top level here is treated as a wire message (id-helper classes like
#: RequestId carry a ``# repro-lint: allow(P201)`` pragma at their def).
MESSAGE_MODULES = ("gcs/messages.py", "core/wire.py")

#: Functions recognised as dispatch sites for wire messages.
DISPATCH_FUNCTIONS = frozenset({"on_message", "on_group_message", "on_ptp"})

#: Modules that register wire dataclasses with the live-runtime codec.
CODEC_MODULES = ("net/codec.py",)

#: Modules that declare configuration knobs as dataclass fields.
KNOB_MODULES = ("core/config.py", "gcs/settings.py")
#: Attribute names under which knob objects travel (``self.policy.x``,
#: ``settings.y``, ``daemon.settings.z`` ...).
KNOB_BASES = frozenset({"policy", "settings"})

_TIMER_FACTORIES = frozenset({"set_timer", "set_periodic_timer"})
_TIMER_CANCELLERS = frozenset({"cancel", "stop"})

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "update",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _finding(
    rule_id: str, slug: str, module: ModuleInfo, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule=rule_id,
        slug=slug,
        path=module.display,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.id if isinstance(target, ast.Name) else getattr(target, "attr", "")
        if name == "dataclass":
            return True
    return False


def _wire_classes(context: LintContext) -> dict[str, tuple[ModuleInfo, ast.ClassDef]]:
    classes: dict[str, tuple[ModuleInfo, ast.ClassDef]] = {}
    for module in context.modules_matching(*MESSAGE_MODULES):
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
                classes[node.name] = (module, node)
    return classes


def _isinstance_class_names(call: ast.Call) -> list[str]:
    """Class names tested by one ``isinstance(x, C)`` / ``isinstance(x,
    (C, D))`` call."""
    if len(call.args) != 2:
        return []
    target = call.args[1]
    candidates = target.elts if isinstance(target, ast.Tuple) else [target]
    names: list[str] = []
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            names.append(candidate.id)
        elif isinstance(candidate, ast.Attribute):
            names.append(candidate.attr)
    return names


# ---------------------------------------------------------------------------
# P201 dispatch completeness
# ---------------------------------------------------------------------------
@rule(
    "P201",
    "dispatch",
    "every wire message class needs >=1 dispatch site overall and <=1 "
    "per endpoint module",
    project=True,
)
def check_dispatch(context: LintContext) -> Iterator[Finding]:
    wire = _wire_classes(context)
    if not wire:
        return
    # name -> list of (module, line) dispatch sites
    sites: dict[str, list[tuple[ModuleInfo, int]]] = {name: [] for name in wire}
    dispatchers_seen = 0
    for module in context.modules:
        for fn in iter_function_defs(module.tree):
            if fn.name not in DISPATCH_FUNCTIONS:
                continue
            dispatchers_seen += 1
            seen_here: set[str] = set()
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                ):
                    for name in _isinstance_class_names(node):
                        if name in sites and name not in seen_here:
                            seen_here.add(name)
                            sites[name].append((module, node.lineno))
    if dispatchers_seen == 0:
        return  # partial scan (no endpoint modules): nothing to cross-check
    for name, (module, node) in sorted(wire.items()):
        hits = sites[name]
        if not hits:
            yield _finding(
                "P201",
                "dispatch",
                module,
                node,
                f"wire message {name} has no dispatch site (no "
                f"isinstance test in any {sorted(DISPATCH_FUNCTIONS)} handler)",
            )
            continue
        by_module: dict[str, int] = {}
        for site_module, _line in hits:
            by_module[site_module.display] = by_module.get(site_module.display, 0) + 1
        for display, count in sorted(by_module.items()):
            if count > 1:
                extra = next(
                    (m, line) for m, line in hits if m.display == display
                )
                yield _finding(
                    "P201",
                    "dispatch",
                    extra[0],
                    ast.Pass(lineno=extra[1], col_offset=0),
                    f"wire message {name} is dispatched {count} times in "
                    f"{display}: ambiguous handling (merge the handlers)",
                )


# ---------------------------------------------------------------------------
# P202 timer-cancel
# ---------------------------------------------------------------------------
@rule(
    "P202",
    "timer-cancel",
    "a timer handle stored on an object needs a reachable cancel()/stop() "
    "in the same module",
    project=True,
)
def check_timer_cancel(context: LintContext) -> Iterator[Finding]:
    for module in context.modules:
        stored: list[tuple[str, ast.AST]] = []
        cancelled: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                func = node.value.func
                if isinstance(func, ast.Attribute) and func.attr in _TIMER_FACTORIES:
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            stored.append((target.attr, node))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TIMER_CANCELLERS
            ):
                owner = node.func.value
                if isinstance(owner, ast.Attribute):
                    cancelled.add(owner.attr)
                elif isinstance(owner, ast.Name):
                    cancelled.add(owner.id)
        for attr, node in stored:
            if attr not in cancelled:
                yield _finding(
                    "P202",
                    "timer-cancel",
                    module,
                    node,
                    f"timer stored as .{attr} is never cancelled/stopped in "
                    "this module — a stale firing can act on dead state "
                    "(cancel it, or pragma process-lifetime timers)",
                )


# ---------------------------------------------------------------------------
# P203 frozen-message / handler mutation
# ---------------------------------------------------------------------------
def _root_name(node: ast.expr) -> str | None:
    cursor = node
    while isinstance(cursor, (ast.Attribute, ast.Subscript)):
        cursor = cursor.value
    return cursor.id if isinstance(cursor, ast.Name) else None


@rule(
    "P203",
    "frozen-message",
    "wire messages must be frozen dataclasses and handlers must not "
    "mutate received message objects",
    project=True,
)
def check_frozen_message(context: LintContext) -> Iterator[Finding]:
    # Part A: every wire message dataclass is frozen=True.
    for name, (module, node) in sorted(_wire_classes(context).items()):
        frozen = False
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        frozen = True
        if not frozen:
            yield _finding(
                "P203",
                "frozen-message",
                module,
                node,
                f"wire message {name} is not @dataclass(frozen=True): the "
                "chaos network may deliver the same object twice, so "
                "payloads must be immutable",
            )
    # Part B: handler functions must not mutate their non-self parameters
    # or local aliases of them (``payload = message.payload``) — a received
    # object aliases every duplicate delivery of itself.
    for module in context.modules:
        for fn in iter_function_defs(module.tree):
            if not (fn.name.startswith("on_") or fn.name.startswith("_on_")):
                continue
            tainted = {
                arg.arg
                for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
                if arg.arg not in ("self", "cls")
            }
            if not tainted:
                continue
            for node in walk_scope(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        # propagate taint through plain aliases; a rebind to
                        # anything else (e.g. a Call result) clears it
                        root = _root_name(node.value)
                        if root in tainted and isinstance(
                            node.value, (ast.Name, ast.Attribute, ast.Subscript)
                        ):
                            tainted.add(target.id)
                        else:
                            tainted.discard(target.id)
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = [
                        t
                        for t in node.targets
                        if isinstance(t, (ast.Attribute, ast.Subscript))
                    ]
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.Delete):
                    targets = list(node.targets)
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in tainted:
                            yield _finding(
                                "P203",
                                "frozen-message",
                                module,
                                node,
                                f"handler {fn.name}() mutates received "
                                f"object {root!r}: deliveries may be "
                                "redelivered (duplicate/reorder aliasing)",
                            )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATOR_METHODS
                ):
                    root = _root_name(node.func.value)
                    if root in tainted:
                        yield _finding(
                            "P203",
                            "frozen-message",
                            module,
                            node,
                            f"handler {fn.name}() calls .{node.func.attr}() "
                            f"on received object {root!r}: deliveries may "
                            "be redelivered (duplicate/reorder aliasing)",
                        )


# ---------------------------------------------------------------------------
# P205 codec-registration
# ---------------------------------------------------------------------------
@rule(
    "P205",
    "codec-registration",
    "every wire message class must be registered with the live-runtime "
    "binary codec",
    project=True,
)
def check_codec_registration(context: LintContext) -> Iterator[Finding]:
    """A wire message that is never ``register()``-ed with the codec can
    travel in simulation but not over real sockets — the live runtime
    would reject the frame at send time.  Mirror of P201: the codec
    module is the second place every new message must be added."""
    wire = _wire_classes(context)
    if not wire:
        return
    codec_modules = list(context.modules_matching(*CODEC_MODULES))
    if not codec_modules:
        return  # partial scan (no codec module): nothing to cross-check
    registered: set[str] = set()
    fast_registered: dict[str, tuple[ModuleInfo, ast.AST]] = {}
    for module in codec_modules:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("register", "register_fast")
                and node.args
            ):
                continue
            target = node.args[0]
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            else:
                continue
            if node.func.id == "register":
                registered.add(name)
            else:
                fast_registered[name] = (module, node)
    for name, (module, node) in sorted(wire.items()):
        if name not in registered:
            yield _finding(
                "P205",
                "codec-registration",
                module,
                node,
                f"wire message {name} is not registered with the live "
                f"codec (add register({name}) to net/codec.py — append at "
                "the end; registration order is the wire contract)",
            )
    # the struct fast path is an optimization over the generic form, so
    # every register_fast() type needs a register() call to fall back to
    for name, (module, node) in sorted(fast_registered.items()):
        if name not in registered:
            yield _finding(
                "P205",
                "codec-registration",
                module,
                node,
                f"fast-path codec for {name} has no generic registration "
                f"(register_fast without register({name}): the fallback "
                "encoding would reject the value)",
            )


# ---------------------------------------------------------------------------
# P204 knob-sync
# ---------------------------------------------------------------------------
def _knob_declarations(
    context: LintContext,
) -> tuple[dict[str, tuple[ModuleInfo, ast.AST]], set[str]]:
    """Returns (checkable declarations: fields+properties, all declared
    names incl. methods)."""
    checkable: dict[str, tuple[ModuleInfo, ast.AST]] = {}
    declared: set[str] = set()
    for module in context.modules_matching(*KNOB_MODULES):
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
                continue
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    name = statement.target.id
                    if not name.startswith("_"):
                        checkable[name] = (module, statement)
                        declared.add(name)
                elif isinstance(statement, ast.FunctionDef):
                    declared.add(statement.name)
                    is_property = any(
                        isinstance(d, ast.Name) and d.id == "property"
                        for d in statement.decorator_list
                    )
                    if is_property and not statement.name.startswith("_"):
                        checkable[statement.name] = (module, statement)
    return checkable, declared


@rule(
    "P204",
    "knob-sync",
    "every declared config knob must be read somewhere, and every "
    "policy/settings attribute read must be a declared knob",
    project=True,
)
def check_knob_sync(context: LintContext) -> Iterator[Finding]:
    checkable, declared = _knob_declarations(context)
    if not checkable:
        return
    knob_modules = set(
        m.display for m in context.modules_matching(*KNOB_MODULES)
    )
    consumers = [m for m in context.modules if m.display not in knob_modules]
    if not consumers:
        return  # partial scan: only the knob modules themselves
    reads: dict[str, int] = {}
    for module in consumers:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            base_name = (
                base.id
                if isinstance(base, ast.Name)
                else base.attr
                if isinstance(base, ast.Attribute)
                else None
            )
            if base_name not in KNOB_BASES:
                continue
            reads[node.attr] = reads.get(node.attr, 0) + 1
            if node.attr not in declared and not node.attr.startswith("_"):
                yield _finding(
                    "P204",
                    "knob-sync",
                    module,
                    node,
                    f"read of undeclared knob .{node.attr} (not a field, "
                    "property or method of AvailabilityPolicy/GcsSettings)",
                )
    for name, (module, node) in sorted(checkable.items()):
        if name not in reads:
            yield _finding(
                "P204",
                "knob-sync",
                module,
                node,
                f"declared knob {name!r} is never read outside its "
                "defining module: dead configuration",
            )


__all__ = ["CODEC_MODULES", "DISPATCH_FUNCTIONS", "KNOB_MODULES", "MESSAGE_MODULES"]
