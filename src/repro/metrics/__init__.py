"""Measurement: client-side session audits, primary-interval analysis,
summary statistics and table rendering for the experiment harness."""

from repro.metrics.collectors import summarize
from repro.metrics.report import Table
from repro.metrics.session_audit import (
    SessionAuditReport,
    audit_session,
    dual_sender_time,
    lost_updates,
    multi_primary_time,
    no_primary_time,
    primary_intervals,
    service_gaps,
)
from repro.metrics.windows import (
    intersect_intervals,
    max_silence_within,
    merge_intervals,
    multi_primary_time_within,
    no_primary_time_within,
    pad_intervals,
    subtract_intervals,
    total_length,
)

__all__ = [
    "SessionAuditReport",
    "Table",
    "audit_session",
    "dual_sender_time",
    "intersect_intervals",
    "lost_updates",
    "max_silence_within",
    "merge_intervals",
    "multi_primary_time",
    "multi_primary_time_within",
    "no_primary_time",
    "no_primary_time_within",
    "pad_intervals",
    "primary_intervals",
    "service_gaps",
    "subtract_intervals",
    "summarize",
    "total_length",
]
