"""Measurement: client-side session audits, primary-interval analysis,
summary statistics and table rendering for the experiment harness."""

from repro.metrics.collectors import summarize
from repro.metrics.report import Table
from repro.metrics.session_audit import (
    SessionAuditReport,
    audit_session,
    lost_updates,
    primary_intervals,
    service_gaps,
)

__all__ = [
    "SessionAuditReport",
    "Table",
    "audit_session",
    "lost_updates",
    "primary_intervals",
    "service_gaps",
    "summarize",
]
