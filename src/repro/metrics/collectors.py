"""Summary statistics helpers."""

from __future__ import annotations

import math


def summarize(values) -> dict[str, float]:
    """Mean / std / min / max / median of a value list (NaNs when empty)."""
    values = sorted(float(v) for v in values)
    if not values:
        nan = math.nan
        return {"n": 0, "mean": nan, "std": nan, "min": nan, "max": nan, "p50": nan}
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    mid = n // 2
    median = values[mid] if n % 2 else (values[mid - 1] + values[mid]) / 2
    return {
        "n": n,
        "mean": mean,
        "std": math.sqrt(variance),
        "min": values[0],
        "max": values[-1],
        "p50": median,
    }


def rate_per_second(count: int, duration: float) -> float:
    """A count normalized to a per-second rate."""
    if duration <= 0:
        return math.nan
    return count / duration


__all__ = ["rate_per_second", "summarize"]
