"""Summary statistics helpers."""

from __future__ import annotations

import math


def summarize(values) -> dict[str, float]:
    """Mean / std / min / max / median of a value list (NaNs when empty)."""
    values = sorted(float(v) for v in values)
    if not values:
        nan = math.nan
        return {"n": 0, "mean": nan, "std": nan, "min": nan, "max": nan, "p50": nan}
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    mid = n // 2
    median = values[mid] if n % 2 else (values[mid - 1] + values[mid]) / 2
    return {
        "n": n,
        "mean": mean,
        "std": math.sqrt(variance),
        "min": values[0],
        "max": values[-1],
        "p50": median,
    }


def rate_per_second(count: int, duration: float) -> float:
    """A count normalized to a per-second rate."""
    if duration <= 0:
        return math.nan
    return count / duration


#: Message kinds that exist purely to establish liveness/membership —
#: mesh heartbeats and the whole SWIM probe/gossip vocabulary.  Everything
#: else (ordering, view formation, application payloads) is data traffic.
_LIVENESS_KINDS = frozenset({"gcs.heartbeat"})
_LIVENESS_PREFIX = "swim."


def is_liveness_kind(kind: str) -> bool:
    """True for message kinds carrying only liveness/membership signal."""
    return kind in _LIVENESS_KINDS or kind.startswith(_LIVENESS_PREFIX)


def split_liveness(per_kind: dict) -> tuple[int, int]:
    """Split a per-kind counter mapping into ``(liveness, data)`` totals.

    Accepts any ``{kind: count}`` mapping (frames or bytes); used by the
    ``--stats-json`` reports and the membership bench to show membership
    overhead separately from useful work.
    """
    liveness = 0
    data = 0
    for kind in sorted(per_kind):
        if is_liveness_kind(kind):
            liveness += per_kind[kind]
        else:
            data += per_kind[kind]
    return liveness, data


__all__ = ["is_liveness_kind", "rate_per_second", "split_liveness", "summarize"]
