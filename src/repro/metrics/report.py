"""Plain-text table rendering for experiment output.

Every experiment prints its result as one (or a few) tables; benchmarks
``tee`` this output into ``bench_output.txt`` and EXPERIMENTS.md quotes
it.  No external dependency — just aligned monospace columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled, aligned text table."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


__all__ = ["Table"]
