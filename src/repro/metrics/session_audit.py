"""Client-side session auditing: the paper's bad events, measured.

Section 2 names the failure modes a migrated session can expose: lost
requests, duplicate responses, unwanted (stale-context) responses, and
loss of service.  This module computes all of them from a
:class:`~repro.core.client.SessionHandle`'s logs plus the cluster trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.client import SessionHandle


@dataclass
class SessionAuditReport:
    """Everything the audit can say about one session."""

    session_id: str
    responses_received: int
    distinct_indices: int
    duplicate_count: int
    missing_count: int
    stale_count: int
    uncertain_resends: int
    max_gap: float
    updates_sent: int

    @property
    def duplicate_fraction(self) -> float:
        if self.responses_received == 0:
            return 0.0
        return self.duplicate_count / self.responses_received


def audit_session(
    handle: SessionHandle,
    stale_grace: float = 1.0,
    until: float | None = None,
) -> SessionAuditReport:
    """Audit a (typically streaming) session.

    * **duplicates** — responses whose application index was seen before;
    * **missing** — indices in ``[0, max_seen]`` never received (for VoD
      this is only meaningful when the client never skipped *forward*;
      experiments that skip use :func:`lost_updates` instead);
    * **stale** — responses generated under a context older than the
      newest update the client had sent at least ``stale_grace`` earlier
      (in-flight updates inside the grace window are not counted);
    * **max_gap** — the longest silence between consecutive responses.
    """
    received = [
        r for r in handle.received if until is None or r.time <= until
    ]
    seen: set[int] = set()
    duplicates = 0
    stale = 0
    uncertain = 0
    max_gap = 0.0
    last_time: float | None = None
    for response in received:
        if response.index in seen:
            duplicates += 1
        seen.add(response.index)
        if response.uncertain:
            uncertain += 1
        expected_counter = 0
        for sent_time, counter, _update in handle.updates_sent:
            if sent_time <= response.time - stale_grace:
                expected_counter = max(expected_counter, counter)
        if response.based_on_update < expected_counter:
            stale += 1
        if last_time is not None:
            max_gap = max(max_gap, response.time - last_time)
        last_time = response.time
    missing = (max(seen) + 1 - len(seen)) if seen else 0
    return SessionAuditReport(
        session_id=handle.session_id,
        responses_received=len(received),
        distinct_indices=len(seen),
        duplicate_count=duplicates,
        missing_count=missing,
        stale_count=stale,
        uncertain_resends=uncertain,
        max_gap=max_gap,
        updates_sent=len(handle.updates_sent),
    )


def _best_reflected_counter(cluster, session_id: str) -> int:
    """Freshest context-update counter any live server still holds for the
    session (primary runtime, backup replica, or unit-DB record); -1 when
    no trace of the session survives anywhere."""
    best = -1
    for server in cluster.servers.values():
        if not server.is_up():
            continue
        runtime = server.primaries.get(session_id)
        if runtime is not None:
            best = max(best, runtime.ctx.update_counter)
        backup = server.backups.get(session_id)
        if backup is not None:
            best = max(best, backup.effective_update_counter)
        for db in server.unit_dbs.values():
            record = db.get(session_id)
            if record is not None:
                best = max(best, record.snapshot.update_counter)
    return best


def lost_updates(cluster, handle: SessionHandle) -> int:
    """Updates the client sent that no live primary's context reflects.

    Call after quiescing (stop sending, let the cluster settle): the gap
    between the client's last counter and the current primary's applied
    counter is exactly the set of permanently lost updates.  If the
    session has no live primary the whole tail is at risk; we report the
    gap against the freshest surviving record (unit DB / backups).
    """
    best = _best_reflected_counter(cluster, handle.session_id)
    if best < 0:
        return handle.update_counter  # everything is gone
    return max(0, handle.update_counter - best)


def lost_acked_updates(cluster, handle: SessionHandle) -> int:
    """Acknowledged updates that no surviving server reflects.

    The strict durability bar for live failover runs: an update whose
    send the GCS layer acknowledged must survive the primary's crash.
    Counters the client itself saw fail (and reported to the caller) are
    excluded — they were never promised.
    """
    best = _best_reflected_counter(cluster, handle.session_id)
    failed = set(handle.failed_update_counters)
    return sum(
        1
        for counter in range(1, handle.update_counter + 1)
        if counter > best and counter not in failed
    )


def propagation_byte_calibration(cluster) -> dict:
    """Estimate-vs-actual byte accounting across the cluster's servers.

    In simulation both counter families advance by ``size_estimate`` and
    the ratio is 1.0; in live mode the ``propagation_bytes_*`` counters
    carry actual encoded frame sizes, so the ratio calibrates the
    abstract cost model against the real codec.
    """
    actual_sent = sum(
        server.counters["propagation_bytes_sent"]
        for server in cluster.servers.values()
    )
    est_sent = sum(
        server.counters["propagation_bytes_est_sent"]
        for server in cluster.servers.values()
    )
    actual_processed = sum(
        server.counters["propagation_bytes_processed"]
        for server in cluster.servers.values()
    )
    est_processed = sum(
        server.counters["propagation_bytes_est_processed"]
        for server in cluster.servers.values()
    )
    actual = actual_sent + actual_processed
    estimated = est_sent + est_processed
    return {
        "actual_bytes_sent": actual_sent,
        "estimated_bytes_sent": est_sent,
        "actual_bytes_processed": actual_processed,
        "estimated_bytes_processed": est_processed,
        "actual_over_estimate": (actual / estimated) if estimated else None,
    }


def service_gaps(
    handle: SessionHandle, threshold: float, until: float | None = None
) -> list[tuple[float, float]]:
    """Intervals longer than ``threshold`` between consecutive responses
    (after the first response).  The client-visible outage windows."""
    times = [
        r.time for r in handle.received if until is None or r.time <= until
    ]
    gaps = []
    for earlier, later in zip(times, times[1:]):
        if later - earlier > threshold:
            gaps.append((earlier, later))
    return gaps


def max_concurrent_senders(handle: SessionHandle, window: float = 1.0) -> int:
    """Largest number of distinct servers from which the client received
    responses within any time window — the *client-visible* form of the
    unique-primary goal (2+ means two servers were serving it at once)."""
    best = 0
    received = handle.received
    for start_index, first in enumerate(received):
        senders = {first.sender}
        for later in received[start_index + 1 :]:
            if later.time - first.time > window:
                break
            senders.add(later.sender)
        best = max(best, len(senders))
    return best


def dual_sender_time(handle: SessionHandle, max_dt: float = 0.3) -> float:
    """Total time covered by *adjacent* responses from different servers
    arriving within ``max_dt`` of each other.

    A clean handover produces at most one cross-sender pair separated by
    the takeover gap (> ``max_dt``), so it contributes ~0; two servers
    concurrently streaming (the WAN non-transitive hazard) interleave
    continuously and accumulate the overlap duration."""
    total = 0.0
    received = handle.received
    for earlier, later in zip(received, received[1:]):
        dt = later.time - earlier.time
        if later.sender != earlier.sender and dt <= max_dt:
            total += dt
    return total


def primary_intervals(cluster, session_id: str) -> dict[str, list[tuple[float, float]]]:
    """Per-server intervals during which it held the primary role,
    reconstructed from the trace (``fw.promote`` / ``fw.demote`` /
    ``process.crash``)."""
    trace = cluster.trace_log()
    open_at: dict[str, float] = {}
    intervals: dict[str, list[tuple[float, float]]] = {}
    for event in trace.events:
        node = event.node
        if event.category == "fw.promote" and event.detail.get("session") == session_id:
            open_at[node] = event.time
        elif (
            event.category == "fw.demote" and event.detail.get("session") == session_id
        ):
            if node in open_at:
                intervals.setdefault(node, []).append((open_at.pop(node), event.time))
        elif event.category == "process.crash":
            if node in open_at:
                intervals.setdefault(node, []).append((open_at.pop(node), event.time))
    now = cluster.sim.now
    for node, started in open_at.items():
        intervals.setdefault(node, []).append((started, now))
    return intervals


def multi_primary_time(cluster, session_id: str) -> float:
    """Total time during which two or more servers simultaneously held the
    primary role for the session (design goal 1 violated)."""
    intervals = primary_intervals(cluster, session_id)
    events: list[tuple[float, int]] = []
    for spans in intervals.values():
        for start, end in spans:
            events.append((start, 1))
            events.append((end, -1))
    events.sort()
    active = 0
    overlap = 0.0
    previous = None
    for time, delta in events:
        if previous is not None and active >= 2:
            overlap += time - previous
        active += delta
        previous = time
    return overlap


def no_primary_time(
    cluster, session_id: str, start: float, end: float
) -> float:
    """Total time in [start, end] during which no live server held the
    primary role (loss of service risk)."""
    intervals = primary_intervals(cluster, session_id)
    events: list[tuple[float, int]] = []
    for spans in intervals.values():
        for s, e in spans:
            s, e = max(s, start), min(e, end)
            if s < e:
                events.append((s, 1))
                events.append((e, -1))
    events.sort()
    active = 0
    covered = 0.0
    previous = start
    for time, delta in events:
        if active > 0:
            covered += time - previous
        previous = time
        active += delta
    if active > 0:
        covered += end - previous
    return max(0.0, (end - start) - covered)


__all__ = [
    "SessionAuditReport",
    "audit_session",
    "lost_acked_updates",
    "lost_updates",
    "propagation_byte_calibration",
    "max_concurrent_senders",
    "multi_primary_time",
    "no_primary_time",
    "primary_intervals",
    "service_gaps",
]
