"""Interval algebra for window-restricted invariant checking.

The paper's guarantees are conditional: unique-primary holds only while
connectivity is good enough for the GCS to agree on membership (an
isolated minority serving into the void is an *accepted* risk, Section 4),
and responsiveness bounds only apply while no fault is actively tearing
the cluster apart.  The chaos oracles therefore evaluate the metrics from
:mod:`repro.metrics.session_audit` **inside clean windows** — the parts of
the run not covered by any disruption (partition, slowdown, ...) plus a
stabilization margin after each one.

Everything here works on lists of ``(start, end)`` float pairs.
"""

from __future__ import annotations

from repro.metrics.session_audit import primary_intervals

Interval = tuple[float, float]


def merge_intervals(spans: list[Interval]) -> list[Interval]:
    """Sort and coalesce overlapping/touching intervals; drops empties."""
    cleaned = sorted((s, e) for s, e in spans if e > s)
    merged: list[Interval] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def clip_intervals(spans: list[Interval], start: float, end: float) -> list[Interval]:
    """Restrict every interval to ``[start, end]``."""
    return merge_intervals(
        [(max(s, start), min(e, end)) for s, e in spans if min(e, end) > max(s, start)]
    )


def intersect_intervals(a: list[Interval], b: list[Interval]) -> list[Interval]:
    """Pairwise intersection of two interval sets."""
    a, b = merge_intervals(a), merge_intervals(b)
    out: list[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract_intervals(base: list[Interval], remove: list[Interval]) -> list[Interval]:
    """Parts of ``base`` not covered by ``remove``."""
    base, remove = merge_intervals(base), merge_intervals(remove)
    out: list[Interval] = []
    for start, end in base:
        cursor = start
        for r_start, r_end in remove:
            if r_end <= cursor or r_start >= end:
                continue
            if r_start > cursor:
                out.append((cursor, r_start))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def pad_intervals(spans: list[Interval], margin: float) -> list[Interval]:
    """Extend each interval by ``margin`` on both sides (then re-merge) —
    used to grow disruption windows by a stabilization allowance."""
    return merge_intervals([(s - margin, e + margin) for s, e in spans])


def total_length(spans: list[Interval]) -> float:
    return sum(e - s for s, e in merge_intervals(spans))


def max_length(spans: list[Interval]) -> float:
    merged = merge_intervals(spans)
    return max((e - s for s, e in merged), default=0.0)


# ----------------------------------------------------------------------
# coverage spans derived from role intervals
# ----------------------------------------------------------------------
def _coverage_spans(
    intervals: dict[str, list[Interval]], threshold: int
) -> list[Interval]:
    """Spans during which at least ``threshold`` intervals are active."""
    events: list[tuple[float, int]] = []
    for spans in intervals.values():
        for start, end in spans:
            if end > start:
                events.append((start, 1))
                events.append((end, -1))
    events.sort()
    active = 0
    out: list[Interval] = []
    opened: float | None = None
    for time, delta in events:
        active += delta
        if active >= threshold and opened is None:
            opened = time
        elif active < threshold and opened is not None:
            out.append((opened, time))
            opened = None
    if opened is not None and events:
        out.append((opened, events[-1][0]))
    return merge_intervals(out)


def multi_primary_spans(cluster, session_id: str) -> list[Interval]:
    """Spans during which >= 2 servers held the primary role."""
    return _coverage_spans(primary_intervals(cluster, session_id), threshold=2)


def multi_primary_time_within(
    cluster, session_id: str, windows: list[Interval]
) -> float:
    """Role-overlap time restricted to the given (clean) windows."""
    return total_length(
        intersect_intervals(multi_primary_spans(cluster, session_id), windows)
    )


def no_primary_spans(
    cluster, session_id: str, start: float, end: float
) -> list[Interval]:
    """Spans of ``[start, end]`` with no live primary for the session."""
    covered = _coverage_spans(primary_intervals(cluster, session_id), threshold=1)
    return subtract_intervals([(start, end)], covered)


def no_primary_time_within(
    cluster, session_id: str, windows: list[Interval]
) -> float:
    """Primary-less time restricted to the given (clean) windows."""
    if not windows:
        return 0.0
    hull_start = min(s for s, _ in windows)
    hull_end = max(e for _, e in windows)
    return total_length(
        intersect_intervals(
            no_primary_spans(cluster, session_id, hull_start, hull_end), windows
        )
    )


def silence_spans(times: list[float], start: float, end: float) -> list[Interval]:
    """Gaps of ``[start, end]`` containing none of the event ``times`` —
    for response timestamps these are the client-visible silences.

    Deliberately NOT merged: consecutive spans share an endpoint (the
    event between them), and coalescing them would erase the events."""
    inside = sorted(t for t in times if start <= t <= end)
    edges = [start] + inside + [end]
    return [(a, b) for a, b in zip(edges, edges[1:]) if b > a]


def max_silence_within(
    times: list[float], windows: list[Interval]
) -> float:
    """Longest contiguous response silence measured inside the clean
    windows.  A silence spanning a disruption is chopped at the window
    edges — the disrupted part is excused, only the clean residue counts."""
    if not windows:
        return 0.0
    hull_start = min(s for s, _ in windows)
    hull_end = max(e for _, e in windows)
    best = 0.0
    # intersect span-by-span: adjacent silences must not merge across the
    # response that separates them
    for span in silence_spans(times, hull_start, hull_end):
        pieces = intersect_intervals([span], windows)
        best = max(best, max_length(pieces))
    return best


__all__ = [
    "Interval",
    "clip_intervals",
    "intersect_intervals",
    "max_length",
    "max_silence_within",
    "merge_intervals",
    "multi_primary_spans",
    "multi_primary_time_within",
    "no_primary_spans",
    "no_primary_time_within",
    "pad_intervals",
    "silence_spans",
    "subtract_intervals",
    "total_length",
]
