"""Live runtime: the framework's protocol stack over real asyncio sockets.

The simulator and the live runtime share every protocol module byte for
byte — ``repro.net`` only supplies what a real deployment needs below
them:

* :mod:`repro.net.codec` — a self-describing binary codec for every
  frozen wire dataclass (length-prefixed framing, version byte, strict
  rejection of unknown types and truncated frames);
* :mod:`repro.net.transport` — a TCP mesh between daemons plus a UDP
  loopback mode, with per-peer bounded queues, capped-backoff reconnect
  and oldest-drop backpressure counters;
* :mod:`repro.net.runtime` — a :class:`~repro.sim.network.Network`
  subclass that routes remote traffic through a transport and a pacer
  that runs the deterministic simulator against the wall clock, so
  ``send``/``multicast``/``set_timer`` keep their exact sim semantics;
* :mod:`repro.net.cluster` — the in-process live cluster the
  ``python -m repro cluster`` CLI drives (scripted VoD workload,
  kill/restart mid-run, session-audit report);
* :mod:`repro.net.faults` — a fault-injecting transport wrapper
  (sever/delay/duplicate/reorder real links, WAN latency profiles, a
  JSON-lines runtime control channel) that gives live clusters the same
  fault vocabulary as the simulated topology;
* :mod:`repro.net.replay` — the ingress frame log and null transport
  that make a recorded live run bit-reproducible in pure simulation.
"""

from repro.net.codec import (
    CodecError,
    FrameDecoder,
    TruncatedFrameError,
    UnknownTypeError,
    WireEnvelope,
    decode_frame,
    encode_frame,
    frame_size,
    registered_types,
)
from repro.net.faults import (
    WAN_PROFILES,
    FaultControlServer,
    FaultPlane,
    FaultyTransport,
    WanProfile,
    wan_profile,
)
from repro.net.replay import IngressLog, IngressRecord, ReplayTransport
from repro.net.runtime import LiveNetwork, LiveRuntime

__all__ = [
    "CodecError",
    "FaultControlServer",
    "FaultPlane",
    "FaultyTransport",
    "FrameDecoder",
    "IngressLog",
    "IngressRecord",
    "LiveNetwork",
    "LiveRuntime",
    "ReplayTransport",
    "WAN_PROFILES",
    "WanProfile",
    "wan_profile",
    "TruncatedFrameError",
    "UnknownTypeError",
    "WireEnvelope",
    "decode_frame",
    "encode_frame",
    "frame_size",
    "registered_types",
]
