"""In-process live clusters and the scripted VoD workload.

``python -m repro cluster`` builds one :class:`LiveCluster`: every server
(and the client) owns its own socket and its own
:class:`~repro.net.runtime.LiveNetwork`, all paced by one shared
simulator running in lock-step with the wall clock — so every message
between nodes crosses a real socket through the binary codec, while the
protocol modules execute unchanged.

The workload is scripted as simulator events (deterministic given the
socket timings): connect, start a VoD session, stream a batch of context
updates, optionally kill the current primary mid-run and restart it
later, then quiesce and audit.  The audit report is the same
:mod:`repro.metrics.session_audit` machinery the experiments use, plus
the live-only extras: actual-vs-estimated byte calibration and transport
counters.

``python -m repro serve`` runs one server node over the TCP mesh for
multi-OS-process deployments; peers are named on the command line.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.core.client import ServiceClient, SessionHandle
from repro.core.config import AvailabilityPolicy
from repro.core.server import FrameworkServer
from repro.core.wire import content_group
from repro.gcs.settings import GcsSettings
from repro.gcs.spec import SpecMonitor
from repro.metrics.collectors import split_liveness
from repro.metrics.session_audit import (
    audit_session,
    lost_acked_updates,
    lost_updates,
    multi_primary_time,
    propagation_byte_calibration,
)
from repro.net.faults import FaultControlServer, FaultPlane, FaultyTransport
from repro.net.runtime import LiveNetwork, LiveRuntime
from repro.net.transport import MeshTransport, create_transport
from repro.services.content import build_movie
from repro.services.vod import VodApplication
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


@dataclass(slots=True)
class LiveClusterOptions:
    """Shape of one scripted live run.

    ``transport`` names a registered backend (see
    :func:`repro.net.transport.create_transport`); when ``None`` the
    legacy ``loopback`` flag picks ``"udp"``/``"tcp"``.  ``profile``
    picks the :class:`GcsSettings` preset — live loopback runs default
    to the tight :meth:`GcsSettings.live_lan` timings the fast wire path
    affords.
    """

    nodes: int = 3
    loopback: bool = True
    requests: int = 200
    kill_primary: bool = False
    restart: bool = True
    update_interval: float = 0.02
    unit: str = "demo"
    warmup: float = 1.8
    settle: float = 2.0
    max_tick: float = 0.05
    num_backups: int = 1
    transport: str | None = None
    profile: str = "live_lan"
    stats_json: str | None = None


def resolve_profile(name: str) -> GcsSettings:
    """Map a profile name to its :class:`GcsSettings` preset.  The
    ``*_gossip`` variants run the same timings with the SWIM gossip
    detector instead of the heartbeat mesh."""
    if name == "default":
        return GcsSettings()
    if name == "live_lan":
        return GcsSettings.live_lan()
    if name == "gossip":
        return replace(GcsSettings(), membership_mode="gossip")
    if name == "live_lan_gossip":
        return replace(GcsSettings.live_lan(), membership_mode="gossip")
    raise ValueError(
        f"unknown settings profile {name!r}"
        " (default, live_lan, gossip, live_lan_gossip)"
    )


@dataclass(slots=True)
class WorkloadPlan:
    """What the script decided and observed (filled in as events fire)."""

    duration: float = 0.0
    updates_from: float = 0.0
    handle: SessionHandle | None = None
    killed: str | None = None
    kill_time: float | None = None
    restart_time: float | None = None


class LiveCluster:
    """A live deployment: real sockets below, unchanged protocol above.

    Mirrors the :class:`~repro.core.service.ServiceCluster` query surface
    (``servers``, ``sim``, ``trace_log()``, ``primaries_of()``) so the
    session-audit metrics run on it verbatim.
    """

    def __init__(
        self,
        sim: Simulator,
        runtime: LiveRuntime,
        trace: TraceLog,
        monitor: SpecMonitor,
        transports: dict[str, MeshTransport],
        networks: dict[str, LiveNetwork],
        servers: dict[str, FrameworkServer],
        client: ServiceClient,
    ) -> None:
        self.sim = sim
        self.runtime = runtime
        self.trace = trace
        self.monitor = monitor
        self.transports = transports
        self.networks = networks
        self.servers = servers
        self.client = client

    def trace_log(self) -> TraceLog:
        return self.trace

    def primaries_of(self, session_id: str) -> list[str]:
        return [
            server_id
            for server_id, server in self.servers.items()
            if server.is_up() and session_id in server.primary_sessions()
        ]

    async def close(self) -> None:
        for transport in self.transports.values():
            await transport.close()


async def build_live_cluster(options: LiveClusterOptions) -> LiveCluster:
    """Bind one socket per node, wire the full-mesh address book, and
    start the servers and client (protocol timers arm at sim t=0; nothing
    runs until the pacer does)."""
    if options.nodes < 1:
        raise ValueError("a cluster needs at least one node")
    sim = Simulator()
    trace = TraceLog(enabled=True)
    monitor = SpecMonitor()
    runtime = LiveRuntime(sim, max_tick=options.max_tick)

    server_ids = [f"s{i}" for i in range(options.nodes)]
    client_id = "c0"
    transports: dict[str, MeshTransport] = {}
    networks: dict[str, LiveNetwork] = {}
    transport_name = options.transport or ("udp" if options.loopback else "tcp")
    for node in [*server_ids, client_id]:
        transport = create_transport(transport_name, node)
        await transport.start("127.0.0.1", 0)
        transports[node] = transport
        networks[node] = LiveNetwork(sim, transport, trace=trace, wake=runtime.wake)
    for node, transport in transports.items():
        for peer, peer_transport in transports.items():
            if peer != node:
                host, port = peer_transport.address
                transport.set_peer(peer, host, port)

    # a movie long enough that the stream cannot finish mid-run
    run_seconds = (
        options.warmup + 0.7 + options.requests * options.update_interval
        + options.settle + 10.0
    )
    movie = build_movie(
        options.unit, duration_seconds=int(run_seconds * 2) + 60, frame_rate=24
    )
    application = VodApplication({options.unit: movie})
    catalog = {options.unit: content_group(options.unit)}
    policy = AvailabilityPolicy(num_backups=options.num_backups)
    settings = resolve_profile(options.profile)

    servers: dict[str, FrameworkServer] = {}
    for server_id in server_ids:
        servers[server_id] = FrameworkServer(
            server_id=server_id,
            network=networks[server_id],
            world=server_ids,
            hosted_units=[options.unit],
            applications={options.unit: application},
            catalog=catalog,
            policy=policy,
            settings=settings,
            monitor=monitor,
        )
    client = ServiceClient(
        client_id,
        networks[client_id],
        contact_servers=server_ids,
        settings=settings,
    )
    for server in servers.values():
        server.start()
    client.start()
    return LiveCluster(
        sim=sim,
        runtime=runtime,
        trace=trace,
        monitor=monitor,
        transports=transports,
        networks=networks,
        servers=servers,
        client=client,
    )


def schedule_workload(cluster: LiveCluster, options: LiveClusterOptions) -> WorkloadPlan:
    """Script the whole run as simulator events before the pacer starts."""
    sim = cluster.sim
    client = cluster.client
    plan = WorkloadPlan()

    def do_connect() -> None:
        client.connect()

    def do_start() -> None:
        plan.handle = client.start_session(options.unit)

    sim.schedule_at(min(1.0, options.warmup / 2), do_connect, label="wl:connect")
    sim.schedule_at(options.warmup, do_start, label="wl:start-session")

    updates_from = options.warmup + 0.7
    plan.updates_from = updates_from
    interval = options.update_interval

    def send_update(index: int) -> None:
        if plan.handle is None or not plan.handle.started:
            # the session confirmation has not landed yet; skip rather
            # than queue updates the audit would call lost
            return
        client.send_update(
            plan.handle, {"op": "rate", "value": 24.0 + float(index % 2)}
        )

    for i in range(options.requests):
        sim.schedule_at(
            updates_from + i * interval,
            (lambda index=i: send_update(index)),
            label="wl:update",
        )

    updates_until = updates_from + options.requests * interval
    end = updates_until + options.settle

    if options.kill_primary:
        kill_at = updates_from + 0.45 * options.requests * interval

        def do_kill() -> None:
            if plan.handle is None:
                return
            primaries = cluster.primaries_of(plan.handle.session_id)
            if not primaries:
                return
            plan.killed = primaries[0]
            plan.kill_time = sim.now
            cluster.servers[primaries[0]].crash()

        sim.schedule_at(kill_at, do_kill, label="wl:kill-primary")
        restart_at = kill_at + max(1.5, 0.3 * options.requests * interval)
        if options.restart:

            def do_restart() -> None:
                if plan.killed is not None:
                    plan.restart_time = sim.now
                    cluster.servers[plan.killed].recover()

            sim.schedule_at(restart_at, do_restart, label="wl:restart")
            end = max(end, restart_at + 1.5)
        end = max(end, kill_at + 3.0)

    plan.duration = end + 0.5
    return plan


def build_report(cluster: LiveCluster, plan: WorkloadPlan) -> dict[str, Any]:
    """Audit the finished run; ``clean`` summarizes the CI gate."""
    handle = plan.handle
    reasons: list[str] = []
    report: dict[str, Any] = {
        "mode": "live",
        "sim_seconds": round(cluster.sim.now, 3),
        "servers": sorted(cluster.servers),
        "killed": plan.killed,
        "kill_time": plan.kill_time,
        "restart_time": plan.restart_time,
    }
    if handle is None:
        report["clean"] = False
        report["reasons"] = ["workload never started a session"]
        return report

    audit = audit_session(handle)
    lost = lost_updates(cluster, handle)
    lost_acked = lost_acked_updates(cluster, handle)
    report["session"] = {
        "session_id": audit.session_id,
        "started": handle.started,
        "denied_reason": handle.denied_reason,
        "updates_sent": audit.updates_sent,
        "responses_received": audit.responses_received,
        "distinct_indices": audit.distinct_indices,
        "duplicate_count": audit.duplicate_count,
        "stale_count": audit.stale_count,
        "uncertain_resends": audit.uncertain_resends,
        "max_gap": round(audit.max_gap, 3),
        "failed_sends": handle.failed_sends,
        "unacked_sends": cluster.client.gcs.unacked_count,
        "lost_updates": lost,
        "lost_acked_updates": lost_acked,
    }
    report["multi_primary_time"] = round(
        multi_primary_time(cluster, handle.session_id), 4
    )
    report["bytes"] = propagation_byte_calibration(cluster)
    report["transport"] = {
        node: {
            "frames_sent": transport.stats.frames_sent,
            "frames_received": transport.stats.frames_received,
            "bytes_sent": transport.stats.bytes_sent,
            "bytes_received": transport.stats.bytes_received,
            "writes": transport.stats.writes,
            "dropped_oldest": transport.stats.dropped_oldest,
            "dropped_oversize": transport.stats.dropped_oversize,
            "oversize_frames": transport.stats.oversize_frames,
            "reconnects": transport.stats.reconnects,
        }
        for node, transport in sorted(cluster.transports.items())
    }
    report["frames_rejected"] = sum(
        network.frames_rejected for network in cluster.networks.values()
    )
    if plan.killed is not None and plan.kill_time is not None:
        takeover: float | None = None
        for response in handle.received:
            if response.time > plan.kill_time and response.sender != plan.killed:
                takeover = response.time - plan.kill_time
                break
        report["takeover_seconds"] = (
            round(takeover, 3) if takeover is not None else None
        )
        if takeover is None:
            reasons.append("no post-failover responses")

    if not handle.started:
        reasons.append("session never started")
    if handle.denied_reason is not None:
        reasons.append(f"session denied: {handle.denied_reason}")
    if audit.responses_received == 0:
        reasons.append("no responses received")
    if handle.failed_sends > 0:
        reasons.append(f"{handle.failed_sends} client sends failed")
    if cluster.client.gcs.unacked_count > 0:
        reasons.append(f"{cluster.client.gcs.unacked_count} sends never acked")
    if lost_acked > 0:
        reasons.append(f"{lost_acked} acknowledged updates lost")
    if report["multi_primary_time"] > 0:
        reasons.append("overlapping primaries observed")
    if report["frames_rejected"] > 0:
        reasons.append(f"{report['frames_rejected']} frames rejected by the codec")
    calibration = report["bytes"]
    ratio = calibration.get("actual_over_estimate", 0.0)
    if calibration.get("estimated_bytes_sent", 0) > 0 and not 0.8 <= ratio <= 1.25:
        # the abstract size estimators must track the real codec closely
        # enough that simulation byte budgets transfer to live runs
        reasons.append(f"byte calibration off: actual/estimate = {ratio}")
    report["clean"] = not reasons
    report["reasons"] = reasons
    return report


def _dump_stats(
    path: str | None,
    transports: dict[str, MeshTransport],
    networks: dict[str, LiveNetwork] | None = None,
) -> None:
    """Write every transport's full per-peer snapshot as one JSON file.

    When the owning networks are supplied, each node also reports its
    outgoing traffic split into liveness (heartbeats / SWIM probes) and
    data, in real encoded bytes and frames — the number an operator
    watches to judge membership overhead at a given cluster size."""
    if path is None:
        return
    payload: dict[str, Any] = {
        str(node): transport.stats_snapshot()
        for node, transport in sorted(transports.items(), key=lambda kv: str(kv[0]))
    }
    for node, network in sorted((networks or {}).items(), key=lambda kv: str(kv[0])):
        frames = {
            kind: sent for kind, (sent, _bytes) in network.sent_kind_stats(node).items()
        }
        liveness_frames, data_frames = split_liveness(frames)
        liveness_bytes, data_bytes = split_liveness(network.actual_bytes_sent)
        payload.setdefault(str(node), {})["traffic_split"] = {
            "liveness_frames_sent": liveness_frames,
            "liveness_bytes_sent": liveness_bytes,
            "data_frames_sent": data_frames,
            "data_bytes_sent": data_bytes,
        }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


async def _run_cluster(options: LiveClusterOptions) -> dict[str, Any]:
    cluster = await build_live_cluster(options)
    try:
        plan = schedule_workload(cluster, options)
        await cluster.runtime.run(plan.duration)
        report = build_report(cluster, plan)
        _dump_stats(options.stats_json, cluster.transports, cluster.networks)
        return report
    finally:
        await cluster.close()


def run_live_cluster(options: LiveClusterOptions) -> dict[str, Any]:
    """Blocking entry point used by ``python -m repro cluster`` and tests."""
    return asyncio.run(_run_cluster(options))


# ---------------------------------------------------------------------------
# single-node daemon (`python -m repro serve`)
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class ServeOptions:
    """One server node of a multi-process TCP deployment.

    ``control`` opens a JSON-lines fault control channel on the given
    ``(host, port)``: the node's transport is wrapped in a
    :class:`~repro.net.faults.FaultyTransport` and an external harness
    can sever/delay/perturb its links at runtime (``repro.net.faults``
    documents the command vocabulary).
    """

    node_id: str
    listen: tuple[str, int]
    peers: dict[str, tuple[str, int]] = field(default_factory=dict)
    unit: str = "demo"
    duration: float = 10.0
    expect_members: int | None = None
    max_tick: float = 0.05
    transport: str = "tcp"
    profile: str = "default"
    stats_json: str | None = None
    control: tuple[str, int] | None = None


async def _serve(options: ServeOptions) -> dict[str, Any]:
    sim = Simulator()
    trace = TraceLog(enabled=False)
    runtime = LiveRuntime(sim, max_tick=options.max_tick)
    transport = create_transport(options.transport, options.node_id)
    control_server: FaultControlServer | None = None
    if options.control is not None:
        if not isinstance(transport, FaultyTransport):
            transport = FaultyTransport(transport)
        plane = FaultPlane()
        plane.adopt(options.node_id, transport)
        control_server = FaultControlServer(plane)
        await control_server.start(*options.control)
    await transport.start(*options.listen)
    network = LiveNetwork(sim, transport, trace=trace, wake=runtime.wake)
    for peer, (host, port) in options.peers.items():
        transport.set_peer(peer, host, port)
    world = sorted([options.node_id, *options.peers])
    movie = build_movie(
        options.unit, duration_seconds=int(options.duration * 2) + 60, frame_rate=24
    )
    server = FrameworkServer(
        server_id=options.node_id,
        network=network,
        world=world,
        hosted_units=[options.unit],
        applications={options.unit: VodApplication({options.unit: movie})},
        catalog={options.unit: content_group(options.unit)},
        policy=AvailabilityPolicy(num_backups=1),
        settings=resolve_profile(options.profile),
        monitor=None,
    )
    server.start()
    try:
        await runtime.run(options.duration)
        _dump_stats(
            options.stats_json,
            {options.node_id: transport},
            {options.node_id: network},
        )
    finally:
        await transport.close()
        if control_server is not None:
            await control_server.close()
    members = sorted(str(member) for member in server.daemon.config.members)
    report: dict[str, Any] = {
        "node": options.node_id,
        "members": members,
        "view": str(server.daemon.config.view_id),
        "frames_sent": transport.stats.frames_sent,
        "frames_received": transport.stats.frames_received,
    }
    if control_server is not None and control_server.address is not None:
        host, port = control_server.address
        report["control"] = f"{host}:{port}"
    return report


def run_single_node(options: ServeOptions) -> dict[str, Any]:
    """Blocking entry point used by ``python -m repro serve``."""
    return asyncio.run(_serve(options))


__all__ = [
    "LiveCluster",
    "LiveClusterOptions",
    "ServeOptions",
    "WorkloadPlan",
    "build_live_cluster",
    "build_report",
    "resolve_profile",
    "run_live_cluster",
    "run_single_node",
    "schedule_workload",
]
