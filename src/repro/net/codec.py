"""Self-describing binary codec for the live runtime, with a struct fast path.

Frame layout::

    +----------------+----------+------------------------+
    | length (u32 BE)| version  | encoded value          |
    +----------------+----------+------------------------+

``length`` counts everything after the prefix (version byte included),
so a TCP byte stream splits into frames without decoding anything.  The
version byte guards against mixed deployments: a frame whose version
differs from :data:`WIRE_VERSION` is rejected whole.

Values are tagged recursively: primitives, containers, and *registered
dataclasses*.  A dataclass crossing the wire must be registered with
:func:`register`; its type id is its position in the registration
sequence at the bottom of this module, which makes the id assignment
deterministic in every process — the registration order IS the wire
contract (append only, never reorder).  The lint rule P205 fails the
build when a wire message class in ``gcs/messages.py`` / ``core/wire.py``
has no ``register(...)`` call here, so a new message cannot silently
break live mode.

**The fast path.**  The hottest frame types (heartbeats, client acks,
sequenced batches, and the envelope itself) additionally have
*specialized* encodings registered with :func:`register_fast`: their
scalar fields are packed raw (length-prefixed UTF-8, fixed-width
unsigned ints) under a dedicated value tag, skipping the per-field
type-id/tag machinery of the generic dataclass form.  The two tiers
share one decoder — :func:`decode_frame` understands both byte forms and
produces identical objects — and every fast encoder *falls back* to the
generic self-describing form whenever a field does not fit its packed
layout (wrong type, out-of-range int, oversized string).  The wire
contract is therefore: for any registered value there may be two valid
byte encodings, and both decode to the same value.  P205 cross-checks
that every ``register_fast(...)`` type also has a plain ``register(...)``
call, so the fallback can never hit an unregistered class.

Everything rejects loudly: unknown type ids and unregistered classes
raise :class:`UnknownTypeError`, short or oversized frames raise
:class:`TruncatedFrameError`, and trailing garbage inside a frame is a
:class:`CodecError`.  The decoder never guesses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable

#: Version 2 added the struct fast-path tags (14..22); version 3 the SWIM
#: gossip vocabulary and its fast tags (23..27).  A peer on an older
#: version would reject those frames as unknown tags, so the version byte
#: makes the incompatibility explicit instead.
WIRE_VERSION = 3

#: Upper bound on one frame's body (a propagation snapshot of a pathological
#: session state should still fit; anything larger is a protocol bug).
MAX_FRAME = 8 * 1024 * 1024

_LEN = struct.Struct(">I")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1
_U32_MAX = 2**32 - 1


class CodecError(ValueError):
    """Malformed or un-encodable wire data."""


class UnknownTypeError(CodecError):
    """An unregistered dataclass (encode) or unknown type id (decode)."""


class TruncatedFrameError(CodecError):
    """A frame shorter (or longer) than its length prefix promises."""


class _Fallback(Exception):
    """A fast encoder cannot pack this value; use the generic form."""


# ---------------------------------------------------------------------------
# value tags
# ---------------------------------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10
_T_SET = 11
_T_FROZENSET = 12
_T_DATACLASS = 13
# -- fast-path tags (wire version 2): struct-packed specializations ---------
_T_ENVELOPE = 14
_T_HEARTBEAT = 15
_T_CLIENT_ACK = 16
_T_REQUEST_ID = 17
_T_VIEW_ID = 18
_T_ORDER_REQUEST = 19
_T_SEQUENCED = 20
_T_SEQUENCED_BATCH = 21
_T_CLIENT_MCAST = 22
# -- fast-path tags (wire version 3): SWIM gossip membership ----------------
_T_SWIM_UPDATE = 23
_T_SWIM_PING = 24
_T_SWIM_ACK = 25
_T_SWIM_PING_REQ = 26
_T_SWIM_DIGEST = 27


# ---------------------------------------------------------------------------
# dataclass registry
# ---------------------------------------------------------------------------
_TYPE_IDS: dict[type, int] = {}
_TYPES: list[type] = []

_FastEncoder = Callable[[Any, bytearray], None]
_FastDecoder = Callable[["memoryview", int], "tuple[Any, int]"]

_FAST_ENCODERS: dict[type, _FastEncoder] = {}
_FAST_DECODERS: dict[int, _FastDecoder] = {}


def register(cls: type) -> type:
    """Assign ``cls`` the next wire type id.

    Ids are positional, so every process that imports this module agrees
    on them for free — provided the registration sequence below is only
    ever appended to.
    """
    if not is_dataclass(cls):
        raise CodecError(f"{cls.__name__} is not a dataclass")
    if cls in _TYPE_IDS:
        raise CodecError(f"{cls.__name__} is registered twice")
    _TYPE_IDS[cls] = len(_TYPES)
    _TYPES.append(cls)
    return cls


def register_fast(
    cls: type, tag: int, encoder: _FastEncoder, decoder: _FastDecoder
) -> None:
    """Attach a struct-packed specialized encoding to ``cls``.

    ``cls`` must already be :func:`register`-ed — the fast path is an
    *optimization over* the generic form, never a replacement: the
    encoder is expected to raise :class:`_Fallback` for any instance its
    packed layout cannot represent, and the generic form takes over.
    """
    if cls not in _TYPE_IDS:
        raise CodecError(
            f"{cls.__name__} needs a register(...) call before register_fast"
        )
    if cls in _FAST_ENCODERS:
        raise CodecError(f"{cls.__name__} has two fast encoders")
    if tag in _FAST_DECODERS:
        raise CodecError(f"fast tag {tag} is used twice")
    _FAST_ENCODERS[cls] = encoder
    _FAST_DECODERS[tag] = decoder


def registered_types() -> tuple[type, ...]:
    """Every registered dataclass, in wire-id order."""
    return tuple(_TYPES)


def fast_path_types() -> tuple[type, ...]:
    """Every dataclass with a specialized (struct-packed) encoding."""
    return tuple(_FAST_ENCODERS)


# ---------------------------------------------------------------------------
# the envelope the live network ships (also just a registered dataclass)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WireEnvelope:
    """One transported message: addressing metadata plus the payload."""

    sender: Any
    receiver: Any
    kind: str
    size: int
    payload: Any


# ---------------------------------------------------------------------------
# fast-path packing helpers
# ---------------------------------------------------------------------------
def _pack_str8(value: Any, out: bytearray) -> None:
    """A u8-length-prefixed UTF-8 string (node ids, kinds, group names)."""
    if type(value) is not str:
        raise _Fallback
    raw = value.encode("utf-8")
    if len(raw) > 255:
        raise _Fallback
    out.append(len(raw))
    out += raw


def _pack_u32(value: Any, out: bytearray) -> None:
    if type(value) is not int or not 0 <= value <= _U32_MAX:
        raise _Fallback
    out += _U32.pack(value)


def _read_str8(view: memoryview, offset: int) -> tuple[str, int]:
    _need(view, offset, 1)
    length = view[offset]
    offset += 1
    _need(view, offset, length)
    return str(view[offset : offset + length], "utf-8"), offset + length


def _read_u32(view: memoryview, offset: int) -> tuple[int, int]:
    _need(view, offset, 4)
    return _U32.unpack_from(view, offset)[0], offset + 4


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def _encode(value: Any, out: bytearray, fast: bool) -> None:
    if fast:
        fast_encoder = _FAST_ENCODERS.get(type(value))
        if fast_encoder is not None:
            mark = len(out)
            try:
                fast_encoder(value, out)
                return
            except _Fallback:
                del out[mark:]  # repack with the generic form below
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out += _LEN.pack(len(raw))
            out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _LEN.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _LEN.pack(len(value))
        out += value
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += _LEN.pack(len(value))
        for item in value:
            _encode(item, out, fast)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += _LEN.pack(len(value))
        for item in value:
            _encode(item, out, fast)
    elif isinstance(value, dict):
        # insertion order is preserved: protocol dicts are built
        # deterministically, so both ends see the same byte sequence
        out.append(_T_DICT)
        out += _LEN.pack(len(value))
        for key, item in value.items():
            _encode(key, out, fast)
            _encode(item, out, fast)
    elif isinstance(value, (set, frozenset)):
        # canonical form: members sorted by their own encoding, so two
        # equal sets encode identically regardless of iteration order
        out.append(_T_SET if isinstance(value, set) else _T_FROZENSET)
        out += _LEN.pack(len(value))
        encoded: list[bytes] = []
        for item in value:
            buf = bytearray()
            _encode(item, buf, fast)
            encoded.append(bytes(buf))
        for raw in sorted(encoded):
            out += raw
    elif is_dataclass(value) and not isinstance(value, type):
        type_id = _TYPE_IDS.get(type(value))
        if type_id is None:
            raise UnknownTypeError(
                f"{type(value).__name__} is not registered with the codec "
                "(add a register(...) call in repro/net/codec.py)"
            )
        spec = fields(value)
        out.append(_T_DATACLASS)
        out += _U16.pack(type_id)
        out.append(len(spec))
        for f in spec:
            _encode(getattr(value, f.name), out, fast)
    else:
        raise UnknownTypeError(
            f"cannot encode {type(value).__name__!r} (not a wire type)"
        )


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def _need(view: memoryview, offset: int, count: int) -> None:
    if offset + count > len(view):
        raise TruncatedFrameError(
            f"frame ends at byte {len(view)} but value needs {offset + count}"
        )


def _decode(view: memoryview, offset: int) -> tuple[Any, int]:
    _need(view, offset, 1)
    tag = view[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        _need(view, offset, 8)
        return _I64.unpack_from(view, offset)[0], offset + 8
    if tag == _T_BIGINT:
        _need(view, offset, 4)
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        _need(view, offset, length)
        raw = bytes(view[offset : offset + length])
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _T_FLOAT:
        _need(view, offset, 8)
        return _F64.unpack_from(view, offset)[0], offset + 8
    if tag == _T_STR:
        _need(view, offset, 4)
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        _need(view, offset, length)
        return str(view[offset : offset + length], "utf-8"), offset + length
    if tag == _T_BYTES:
        _need(view, offset, 4)
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        _need(view, offset, length)
        return bytes(view[offset : offset + length]), offset + length
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        _need(view, offset, 4)
        (count,) = _LEN.unpack_from(view, offset)
        offset += 4
        items: list[Any] = []
        for _ in range(count):
            item, offset = _decode(view, offset)
            items.append(item)
        if tag == _T_LIST:
            return items, offset
        if tag == _T_TUPLE:
            return tuple(items), offset
        if tag == _T_SET:
            return set(items), offset
        return frozenset(items), offset
    if tag == _T_DICT:
        _need(view, offset, 4)
        (count,) = _LEN.unpack_from(view, offset)
        offset += 4
        mapping: dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode(view, offset)
            item, offset = _decode(view, offset)
            mapping[key] = item
        return mapping, offset
    if tag == _T_DATACLASS:
        _need(view, offset, 3)
        (type_id,) = _U16.unpack_from(view, offset)
        offset += 2
        n_fields = view[offset]
        offset += 1
        if type_id >= len(_TYPES):
            raise UnknownTypeError(f"unknown wire type id {type_id}")
        cls = _TYPES[type_id]
        spec = fields(cls)
        if n_fields != len(spec):
            raise CodecError(
                f"{cls.__name__} arrived with {n_fields} fields, "
                f"expected {len(spec)} (incompatible peer build)"
            )
        values: list[Any] = []
        for _ in range(n_fields):
            value, offset = _decode(view, offset)
            values.append(value)
        return cls(*values), offset
    fast_decoder = _FAST_DECODERS.get(tag)
    if fast_decoder is not None:
        return fast_decoder(view, offset)
    raise CodecError(f"unknown value tag {tag}")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def encode_frame(value: Any, *, fast: bool = True) -> bytes:
    """One complete frame (length prefix + version byte + value).

    ``fast=False`` forces the generic self-describing form even for types
    with a specialized encoding (tests use it to pin the two-path wire
    contract; production callers never need it).
    """
    body = bytearray()
    body.append(WIRE_VERSION)
    _encode(value, body, fast)
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + bytes(body)


def encode_payload(value: Any, *, fast: bool = True) -> bytes:
    """The bare value encoding (no length prefix, no version byte).

    The splice unit for :func:`encode_envelope_frame`: a rebroadcast
    payload is encoded once and wrapped in one envelope per receiver.
    """
    body = bytearray()
    _encode(value, body, fast)
    return bytes(body)


def encode_envelope_frame(
    sender: Any, receiver: Any, kind: str, size: int, payload_bytes: bytes
) -> bytes:
    """One complete envelope frame around a pre-encoded payload.

    Byte-identical to ``encode_frame(WireEnvelope(...))`` for the same
    field values — the fast envelope shell when the addressing fields fit
    its packed layout, the generic dataclass shell otherwise — without
    re-encoding the payload.
    """
    body = bytearray([WIRE_VERSION])
    mark = len(body)
    try:
        body.append(_T_ENVELOPE)
        _pack_str8(sender, body)
        _pack_str8(receiver, body)
        _pack_str8(kind, body)
        _pack_u32(size, body)
    except _Fallback:
        del body[mark:]
        body.append(_T_DATACLASS)
        body += _U16.pack(_TYPE_IDS[WireEnvelope])
        body.append(len(fields(WireEnvelope)))
        _encode(sender, body, True)
        _encode(receiver, body, True)
        _encode(kind, body, True)
        _encode(size, body, True)
    body += payload_bytes
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + bytes(body)


def frame_size(value: Any) -> int:
    """Actual wire cost of ``value`` in bytes (the live byte accounting)."""
    return len(encode_frame(value))


def decode_frame(frame: bytes) -> Any:
    """Decode exactly one frame; rejects truncation, padding, version skew.

    One decoder for both tiers: generic self-describing values and the
    struct fast-path forms land here and produce identical objects.
    """
    if len(frame) < 5:
        raise TruncatedFrameError(f"frame of {len(frame)} bytes has no header")
    (length,) = _LEN.unpack_from(frame, 0)
    if length > MAX_FRAME:
        raise CodecError(f"frame length {length} exceeds {MAX_FRAME}")
    if len(frame) != 4 + length:
        raise TruncatedFrameError(
            f"frame promises {length} body bytes but carries {len(frame) - 4}"
        )
    if frame[4] != WIRE_VERSION:
        raise CodecError(
            f"wire version {frame[4]} != {WIRE_VERSION} (incompatible peer)"
        )
    value, end = _decode(memoryview(frame), 5)
    if end != len(frame):
        raise CodecError(f"{len(frame) - end} trailing bytes inside frame")
    return value


def split_frames(buffer: bytearray) -> list[bytes]:
    """Split complete frames off the front of a TCP reassembly buffer.

    ``buffer`` is consumed in place; a trailing partial frame stays for
    the next read.  Raises :class:`CodecError` on an insane length prefix
    (the caller should drop the connection — the stream is unframeable).
    """
    frames: list[bytes] = []
    while len(buffer) >= 4:
        (length,) = _LEN.unpack_from(buffer, 0)
        if length > MAX_FRAME:
            raise CodecError(f"frame length {length} exceeds {MAX_FRAME}")
        if len(buffer) < 4 + length:
            break
        frames.append(bytes(buffer[: 4 + length]))
        del buffer[: 4 + length]
    return frames


class FrameDecoder:
    """Incremental decoder: feed stream chunks, get decoded values."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        self._buffer.extend(data)
        return [decode_frame(frame) for frame in split_frames(self._buffer)]

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ---------------------------------------------------------------------------
# wire type registration — the order below IS the wire contract.
# Append only; never reorder or remove.  P205 cross-checks this block
# against the wire vocabulary in gcs/messages.py and core/wire.py.
# ---------------------------------------------------------------------------
from repro.core.application import ResponseBody  # noqa: E402
from repro.core.context import ContextDelta, ContextSnapshot  # noqa: E402
from repro.core.unit_db import SessionRecord  # noqa: E402
from repro.core.wire import (  # noqa: E402
    ContextUpdate,
    EndSession,
    Handoff,
    ListUnitsRequest,
    Propagate,
    RebalanceRequest,
    ResponseMsg,
    SessionDenied,
    SessionEnded,
    SessionStarted,
    StartSession,
    StateExchange,
    UnitList,
)
from repro.gcs.messages import (  # noqa: E402
    AttemptId,
    ClientAck,
    ClientMcast,
    Heartbeat,
    Install,
    NackSeqs,
    OrderRequest,
    Propose,
    ProposeNack,
    PtpData,
    RequestId,
    ResyncRequired,
    Sequenced,
    SequencedBatch,
    SwimAck,
    SwimDigest,
    SwimPing,
    SwimPingReq,
    SwimUpdate,
    SyncReply,
)
from repro.gcs.view import ViewId  # noqa: E402
from repro.services.education import EducationSessionState  # noqa: E402
from repro.services.search import SearchSessionState  # noqa: E402
from repro.services.vod import VodSessionState  # noqa: E402

register(WireEnvelope)
# GCS vocabulary (gcs/messages.py + the view id they stamp)
register(ViewId)
register(RequestId)
register(AttemptId)
register(Heartbeat)
register(OrderRequest)
register(Sequenced)
register(SequencedBatch)
register(NackSeqs)
register(ResyncRequired)
register(Propose)
register(ProposeNack)
register(SyncReply)
register(Install)
register(ClientMcast)
register(ClientAck)
register(PtpData)
# framework vocabulary (core/wire.py + the context/record types it carries)
register(ContextSnapshot)
register(ContextDelta)
register(SessionRecord)
register(ResponseBody)
register(ListUnitsRequest)
register(UnitList)
register(StartSession)
register(SessionStarted)
register(SessionDenied)
register(ContextUpdate)
register(EndSession)
register(Propagate)
register(SessionEnded)
register(RebalanceRequest)
register(StateExchange)
register(Handoff)
register(ResponseMsg)
# application session states (propagated inside snapshots and deltas)
register(VodSessionState)
register(EducationSessionState)
register(SearchSessionState)
# SWIM gossip membership vocabulary (gcs/messages.py, wire version 3)
register(SwimUpdate)
register(SwimPing)
register(SwimAck)
register(SwimPingReq)
register(SwimDigest)


# ---------------------------------------------------------------------------
# fast-path codecs — specialized byte forms for the hottest frame types.
# Each encoder packs scalar fields raw and embeds nested values as tagged
# encodings (which may themselves take a fast form); any field its layout
# cannot represent raises _Fallback, and the generic form above is used.
# Every type here MUST also appear in the register(...) block (P205
# checks this) — the fast path is an optimization, not the contract.
# ---------------------------------------------------------------------------
def _enc_envelope(value: Any, out: bytearray) -> None:
    out.append(_T_ENVELOPE)
    _pack_str8(value.sender, out)
    _pack_str8(value.receiver, out)
    _pack_str8(value.kind, out)
    _pack_u32(value.size, out)
    _encode(value.payload, out, True)


def _dec_envelope(view: memoryview, offset: int) -> tuple[Any, int]:
    sender, offset = _read_str8(view, offset)
    receiver, offset = _read_str8(view, offset)
    kind, offset = _read_str8(view, offset)
    size, offset = _read_u32(view, offset)
    payload, offset = _decode(view, offset)
    return WireEnvelope(sender, receiver, kind, size, payload), offset


def _enc_heartbeat(value: Any, out: bytearray) -> None:
    out.append(_T_HEARTBEAT)
    _pack_str8(value.sender, out)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.view_counter, out)
    _encode(value.config_view_id, out, True)


def _dec_heartbeat(view: memoryview, offset: int) -> tuple[Any, int]:
    sender, offset = _read_str8(view, offset)
    incarnation, offset = _read_u32(view, offset)
    view_counter, offset = _read_u32(view, offset)
    config_view_id, offset = _decode(view, offset)
    return Heartbeat(sender, incarnation, view_counter, config_view_id), offset


def _enc_request_id(value: Any, out: bytearray) -> None:
    out.append(_T_REQUEST_ID)
    _pack_str8(value.origin, out)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.counter, out)


def _dec_request_id(view: memoryview, offset: int) -> tuple[Any, int]:
    origin, offset = _read_str8(view, offset)
    incarnation, offset = _read_u32(view, offset)
    counter, offset = _read_u32(view, offset)
    return RequestId(origin, incarnation, counter), offset


def _enc_view_id(value: Any, out: bytearray) -> None:
    out.append(_T_VIEW_ID)
    _pack_u32(value.counter, out)
    _pack_str8(value.coordinator, out)


def _dec_view_id(view: memoryview, offset: int) -> tuple[Any, int]:
    counter, offset = _read_u32(view, offset)
    coordinator, offset = _read_str8(view, offset)
    return ViewId(counter, coordinator), offset


def _enc_client_ack(value: Any, out: bytearray) -> None:
    out.append(_T_CLIENT_ACK)
    _encode(value.request_id, out, True)


def _dec_client_ack(view: memoryview, offset: int) -> tuple[Any, int]:
    request_id, offset = _decode(view, offset)
    return ClientAck(request_id), offset


def _enc_order_request(value: Any, out: bytearray) -> None:
    out.append(_T_ORDER_REQUEST)
    _pack_str8(value.group, out)
    _pack_u32(value.size_estimate, out)
    _encode(value.request_id, out, True)
    _encode(value.payload, out, True)


def _dec_order_request(view: memoryview, offset: int) -> tuple[Any, int]:
    group, offset = _read_str8(view, offset)
    size_estimate, offset = _read_u32(view, offset)
    request_id, offset = _decode(view, offset)
    payload, offset = _decode(view, offset)
    return OrderRequest(request_id, group, payload, size_estimate), offset


def _enc_client_mcast(value: Any, out: bytearray) -> None:
    out.append(_T_CLIENT_MCAST)
    _pack_str8(value.group, out)
    _pack_u32(value.size_estimate, out)
    _encode(value.request_id, out, True)
    _encode(value.payload, out, True)


def _dec_client_mcast(view: memoryview, offset: int) -> tuple[Any, int]:
    group, offset = _read_str8(view, offset)
    size_estimate, offset = _read_u32(view, offset)
    request_id, offset = _decode(view, offset)
    payload, offset = _decode(view, offset)
    return ClientMcast(request_id, group, payload, size_estimate), offset


def _enc_sequenced(value: Any, out: bytearray) -> None:
    out.append(_T_SEQUENCED)
    _pack_u32(value.seq, out)
    _encode(value.config_view_id, out, True)
    _encode(value.request, out, True)


def _dec_sequenced(view: memoryview, offset: int) -> tuple[Any, int]:
    seq, offset = _read_u32(view, offset)
    config_view_id, offset = _decode(view, offset)
    request, offset = _decode(view, offset)
    return Sequenced(config_view_id, seq, request), offset


def _enc_sequenced_batch(value: Any, out: bytearray) -> None:
    messages = value.messages
    if type(messages) is not tuple or len(messages) > 0xFFFF:
        raise _Fallback
    out.append(_T_SEQUENCED_BATCH)
    out += _U16.pack(len(messages))
    _encode(value.config_view_id, out, True)
    for message in messages:
        _encode(message, out, True)


def _dec_sequenced_batch(view: memoryview, offset: int) -> tuple[Any, int]:
    _need(view, offset, 2)
    (count,) = _U16.unpack_from(view, offset)
    offset += 2
    config_view_id, offset = _decode(view, offset)
    messages: list[Any] = []
    for _ in range(count):
        message, offset = _decode(view, offset)
        messages.append(message)
    return SequencedBatch(config_view_id, tuple(messages)), offset


def _pack_swim_updates(updates: Any, out: bytearray) -> None:
    if type(updates) is not tuple or len(updates) > 0xFFFF:
        raise _Fallback
    out += _U16.pack(len(updates))
    for update in updates:
        _encode(update, out, True)


def _read_swim_updates(view: memoryview, offset: int) -> tuple[tuple, int]:
    _need(view, offset, 2)
    (count,) = _U16.unpack_from(view, offset)
    offset += 2
    updates: list[Any] = []
    for _ in range(count):
        update, offset = _decode(view, offset)
        updates.append(update)
    return tuple(updates), offset


def _enc_swim_update(value: Any, out: bytearray) -> None:
    status = value.status
    if type(status) is not int or not 0 <= status <= 255:
        raise _Fallback
    out.append(_T_SWIM_UPDATE)
    _pack_str8(value.subject, out)
    out.append(status)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.epoch, out)


def _dec_swim_update(view: memoryview, offset: int) -> tuple[Any, int]:
    subject, offset = _read_str8(view, offset)
    _need(view, offset, 1)
    status = view[offset]
    offset += 1
    incarnation, offset = _read_u32(view, offset)
    epoch, offset = _read_u32(view, offset)
    return SwimUpdate(subject, status, incarnation, epoch), offset


def _enc_swim_ping(value: Any, out: bytearray) -> None:
    out.append(_T_SWIM_PING)
    _pack_str8(value.sender, out)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.view_counter, out)
    _encode(value.config_view_id, out, True)
    _pack_u32(value.probe_seq, out)
    _encode(value.origin, out, True)
    _pack_swim_updates(value.updates, out)


def _dec_swim_ping(view: memoryview, offset: int) -> tuple[Any, int]:
    sender, offset = _read_str8(view, offset)
    incarnation, offset = _read_u32(view, offset)
    view_counter, offset = _read_u32(view, offset)
    config_view_id, offset = _decode(view, offset)
    probe_seq, offset = _read_u32(view, offset)
    origin, offset = _decode(view, offset)
    updates, offset = _read_swim_updates(view, offset)
    return (
        SwimPing(
            sender, incarnation, view_counter, config_view_id,
            probe_seq, origin, updates,
        ),
        offset,
    )


def _enc_swim_ack(value: Any, out: bytearray) -> None:
    out.append(_T_SWIM_ACK)
    _pack_str8(value.sender, out)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.view_counter, out)
    _encode(value.config_view_id, out, True)
    _pack_u32(value.probe_seq, out)
    _encode(value.origin, out, True)
    _pack_swim_updates(value.updates, out)


def _dec_swim_ack(view: memoryview, offset: int) -> tuple[Any, int]:
    sender, offset = _read_str8(view, offset)
    incarnation, offset = _read_u32(view, offset)
    view_counter, offset = _read_u32(view, offset)
    config_view_id, offset = _decode(view, offset)
    probe_seq, offset = _read_u32(view, offset)
    origin, offset = _decode(view, offset)
    updates, offset = _read_swim_updates(view, offset)
    return (
        SwimAck(
            sender, incarnation, view_counter, config_view_id,
            probe_seq, origin, updates,
        ),
        offset,
    )


def _enc_swim_ping_req(value: Any, out: bytearray) -> None:
    out.append(_T_SWIM_PING_REQ)
    _pack_str8(value.sender, out)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.view_counter, out)
    _encode(value.config_view_id, out, True)
    _pack_str8(value.target, out)
    _pack_u32(value.probe_seq, out)
    _pack_swim_updates(value.updates, out)


def _dec_swim_ping_req(view: memoryview, offset: int) -> tuple[Any, int]:
    sender, offset = _read_str8(view, offset)
    incarnation, offset = _read_u32(view, offset)
    view_counter, offset = _read_u32(view, offset)
    config_view_id, offset = _decode(view, offset)
    target, offset = _read_str8(view, offset)
    probe_seq, offset = _read_u32(view, offset)
    updates, offset = _read_swim_updates(view, offset)
    return (
        SwimPingReq(
            sender, incarnation, view_counter, config_view_id,
            target, probe_seq, updates,
        ),
        offset,
    )


def _enc_swim_digest(value: Any, out: bytearray) -> None:
    if type(value.reply_requested) is not bool:
        raise _Fallback
    out.append(_T_SWIM_DIGEST)
    _pack_str8(value.sender, out)
    _pack_u32(value.incarnation, out)
    _pack_u32(value.view_counter, out)
    _encode(value.config_view_id, out, True)
    _pack_swim_updates(value.entries, out)
    out.append(1 if value.reply_requested else 0)


def _dec_swim_digest(view: memoryview, offset: int) -> tuple[Any, int]:
    sender, offset = _read_str8(view, offset)
    incarnation, offset = _read_u32(view, offset)
    view_counter, offset = _read_u32(view, offset)
    config_view_id, offset = _decode(view, offset)
    entries, offset = _read_swim_updates(view, offset)
    _need(view, offset, 1)
    reply_requested = view[offset] != 0
    offset += 1
    return (
        SwimDigest(
            sender, incarnation, view_counter, config_view_id,
            entries, reply_requested,
        ),
        offset,
    )


register_fast(WireEnvelope, _T_ENVELOPE, _enc_envelope, _dec_envelope)
register_fast(Heartbeat, _T_HEARTBEAT, _enc_heartbeat, _dec_heartbeat)
register_fast(RequestId, _T_REQUEST_ID, _enc_request_id, _dec_request_id)
register_fast(ViewId, _T_VIEW_ID, _enc_view_id, _dec_view_id)
register_fast(ClientAck, _T_CLIENT_ACK, _enc_client_ack, _dec_client_ack)
register_fast(OrderRequest, _T_ORDER_REQUEST, _enc_order_request, _dec_order_request)
register_fast(ClientMcast, _T_CLIENT_MCAST, _enc_client_mcast, _dec_client_mcast)
register_fast(Sequenced, _T_SEQUENCED, _enc_sequenced, _dec_sequenced)
register_fast(
    SequencedBatch, _T_SEQUENCED_BATCH, _enc_sequenced_batch, _dec_sequenced_batch
)
register_fast(SwimUpdate, _T_SWIM_UPDATE, _enc_swim_update, _dec_swim_update)
register_fast(SwimPing, _T_SWIM_PING, _enc_swim_ping, _dec_swim_ping)
register_fast(SwimAck, _T_SWIM_ACK, _enc_swim_ack, _dec_swim_ack)
register_fast(SwimPingReq, _T_SWIM_PING_REQ, _enc_swim_ping_req, _dec_swim_ping_req)
register_fast(SwimDigest, _T_SWIM_DIGEST, _enc_swim_digest, _dec_swim_digest)


__all__ = [
    "MAX_FRAME",
    "WIRE_VERSION",
    "CodecError",
    "FrameDecoder",
    "TruncatedFrameError",
    "UnknownTypeError",
    "WireEnvelope",
    "decode_frame",
    "encode_envelope_frame",
    "encode_frame",
    "encode_payload",
    "fast_path_types",
    "frame_size",
    "register",
    "register_fast",
    "registered_types",
    "split_frames",
]
