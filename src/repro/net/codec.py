"""Self-describing binary codec for the live runtime.

Frame layout::

    +----------------+----------+------------------------+
    | length (u32 BE)| version  | encoded value          |
    +----------------+----------+------------------------+

``length`` counts everything after the prefix (version byte included),
so a TCP byte stream splits into frames without decoding anything.  The
version byte guards against mixed deployments: a frame whose version
differs from :data:`WIRE_VERSION` is rejected whole.

Values are tagged recursively: primitives, containers, and *registered
dataclasses*.  A dataclass crossing the wire must be registered with
:func:`register`; its type id is its position in the registration
sequence at the bottom of this module, which makes the id assignment
deterministic in every process — the registration order IS the wire
contract (append only, never reorder).  The lint rule P205 fails the
build when a wire message class in ``gcs/messages.py`` / ``core/wire.py``
has no ``register(...)`` call here, so a new message cannot silently
break live mode.

Everything rejects loudly: unknown type ids and unregistered classes
raise :class:`UnknownTypeError`, short or oversized frames raise
:class:`TruncatedFrameError`, and trailing garbage inside a frame is a
:class:`CodecError`.  The decoder never guesses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields, is_dataclass
from typing import Any

WIRE_VERSION = 1

#: Upper bound on one frame's body (a propagation snapshot of a pathological
#: session state should still fit; anything larger is a protocol bug).
MAX_FRAME = 8 * 1024 * 1024

_LEN = struct.Struct(">I")
_U16 = struct.Struct(">H")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class CodecError(ValueError):
    """Malformed or un-encodable wire data."""


class UnknownTypeError(CodecError):
    """An unregistered dataclass (encode) or unknown type id (decode)."""


class TruncatedFrameError(CodecError):
    """A frame shorter (or longer) than its length prefix promises."""


# ---------------------------------------------------------------------------
# value tags
# ---------------------------------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10
_T_SET = 11
_T_FROZENSET = 12
_T_DATACLASS = 13


# ---------------------------------------------------------------------------
# dataclass registry
# ---------------------------------------------------------------------------
_TYPE_IDS: dict[type, int] = {}
_TYPES: list[type] = []


def register(cls: type) -> type:
    """Assign ``cls`` the next wire type id.

    Ids are positional, so every process that imports this module agrees
    on them for free — provided the registration sequence below is only
    ever appended to.
    """
    if not is_dataclass(cls):
        raise CodecError(f"{cls.__name__} is not a dataclass")
    if cls in _TYPE_IDS:
        raise CodecError(f"{cls.__name__} is registered twice")
    _TYPE_IDS[cls] = len(_TYPES)
    _TYPES.append(cls)
    return cls


def registered_types() -> tuple[type, ...]:
    """Every registered dataclass, in wire-id order."""
    return tuple(_TYPES)


# ---------------------------------------------------------------------------
# the envelope the live network ships (also just a registered dataclass)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WireEnvelope:
    """One transported message: addressing metadata plus the payload."""

    sender: Any
    receiver: Any
    kind: str
    size: int
    payload: Any


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(_T_INT)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out += _LEN.pack(len(raw))
            out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _LEN.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _LEN.pack(len(value))
        out += value
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += _LEN.pack(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += _LEN.pack(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        # insertion order is preserved: protocol dicts are built
        # deterministically, so both ends see the same byte sequence
        out.append(_T_DICT)
        out += _LEN.pack(len(value))
        for key, item in value.items():
            _encode(key, out)
            _encode(item, out)
    elif isinstance(value, (set, frozenset)):
        # canonical form: members sorted by their own encoding, so two
        # equal sets encode identically regardless of iteration order
        out.append(_T_SET if isinstance(value, set) else _T_FROZENSET)
        out += _LEN.pack(len(value))
        encoded: list[bytes] = []
        for item in value:
            buf = bytearray()
            _encode(item, buf)
            encoded.append(bytes(buf))
        for raw in sorted(encoded):
            out += raw
    elif is_dataclass(value) and not isinstance(value, type):
        type_id = _TYPE_IDS.get(type(value))
        if type_id is None:
            raise UnknownTypeError(
                f"{type(value).__name__} is not registered with the codec "
                "(add a register(...) call in repro/net/codec.py)"
            )
        spec = fields(value)
        out.append(_T_DATACLASS)
        out += _U16.pack(type_id)
        out.append(len(spec))
        for f in spec:
            _encode(getattr(value, f.name), out)
    else:
        raise UnknownTypeError(
            f"cannot encode {type(value).__name__!r} (not a wire type)"
        )


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def _need(view: memoryview, offset: int, count: int) -> None:
    if offset + count > len(view):
        raise TruncatedFrameError(
            f"frame ends at byte {len(view)} but value needs {offset + count}"
        )


def _decode(view: memoryview, offset: int) -> tuple[Any, int]:
    _need(view, offset, 1)
    tag = view[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        _need(view, offset, 8)
        return _I64.unpack_from(view, offset)[0], offset + 8
    if tag == _T_BIGINT:
        _need(view, offset, 4)
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        _need(view, offset, length)
        raw = bytes(view[offset : offset + length])
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _T_FLOAT:
        _need(view, offset, 8)
        return _F64.unpack_from(view, offset)[0], offset + 8
    if tag == _T_STR:
        _need(view, offset, 4)
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        _need(view, offset, length)
        return str(view[offset : offset + length], "utf-8"), offset + length
    if tag == _T_BYTES:
        _need(view, offset, 4)
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        _need(view, offset, length)
        return bytes(view[offset : offset + length]), offset + length
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        _need(view, offset, 4)
        (count,) = _LEN.unpack_from(view, offset)
        offset += 4
        items: list[Any] = []
        for _ in range(count):
            item, offset = _decode(view, offset)
            items.append(item)
        if tag == _T_LIST:
            return items, offset
        if tag == _T_TUPLE:
            return tuple(items), offset
        if tag == _T_SET:
            return set(items), offset
        return frozenset(items), offset
    if tag == _T_DICT:
        _need(view, offset, 4)
        (count,) = _LEN.unpack_from(view, offset)
        offset += 4
        mapping: dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode(view, offset)
            item, offset = _decode(view, offset)
            mapping[key] = item
        return mapping, offset
    if tag == _T_DATACLASS:
        _need(view, offset, 3)
        (type_id,) = _U16.unpack_from(view, offset)
        offset += 2
        n_fields = view[offset]
        offset += 1
        if type_id >= len(_TYPES):
            raise UnknownTypeError(f"unknown wire type id {type_id}")
        cls = _TYPES[type_id]
        spec = fields(cls)
        if n_fields != len(spec):
            raise CodecError(
                f"{cls.__name__} arrived with {n_fields} fields, "
                f"expected {len(spec)} (incompatible peer build)"
            )
        values: list[Any] = []
        for _ in range(n_fields):
            value, offset = _decode(view, offset)
            values.append(value)
        return cls(*values), offset
    raise CodecError(f"unknown value tag {tag}")


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def encode_frame(value: Any) -> bytes:
    """One complete frame (length prefix + version byte + value)."""
    body = bytearray()
    body.append(WIRE_VERSION)
    _encode(value, body)
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + bytes(body)


def frame_size(value: Any) -> int:
    """Actual wire cost of ``value`` in bytes (the live byte accounting)."""
    return len(encode_frame(value))


def decode_frame(frame: bytes) -> Any:
    """Decode exactly one frame; rejects truncation, padding, version skew."""
    if len(frame) < 5:
        raise TruncatedFrameError(f"frame of {len(frame)} bytes has no header")
    (length,) = _LEN.unpack_from(frame, 0)
    if length > MAX_FRAME:
        raise CodecError(f"frame length {length} exceeds {MAX_FRAME}")
    if len(frame) != 4 + length:
        raise TruncatedFrameError(
            f"frame promises {length} body bytes but carries {len(frame) - 4}"
        )
    if frame[4] != WIRE_VERSION:
        raise CodecError(
            f"wire version {frame[4]} != {WIRE_VERSION} (incompatible peer)"
        )
    value, end = _decode(memoryview(frame), 5)
    if end != len(frame):
        raise CodecError(f"{len(frame) - end} trailing bytes inside frame")
    return value


def split_frames(buffer: bytearray) -> list[bytes]:
    """Split complete frames off the front of a TCP reassembly buffer.

    ``buffer`` is consumed in place; a trailing partial frame stays for
    the next read.  Raises :class:`CodecError` on an insane length prefix
    (the caller should drop the connection — the stream is unframeable).
    """
    frames: list[bytes] = []
    while len(buffer) >= 4:
        (length,) = _LEN.unpack_from(buffer, 0)
        if length > MAX_FRAME:
            raise CodecError(f"frame length {length} exceeds {MAX_FRAME}")
        if len(buffer) < 4 + length:
            break
        frames.append(bytes(buffer[: 4 + length]))
        del buffer[: 4 + length]
    return frames


class FrameDecoder:
    """Incremental decoder: feed stream chunks, get decoded values."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        self._buffer.extend(data)
        return [decode_frame(frame) for frame in split_frames(self._buffer)]

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ---------------------------------------------------------------------------
# wire type registration — the order below IS the wire contract.
# Append only; never reorder or remove.  P205 cross-checks this block
# against the wire vocabulary in gcs/messages.py and core/wire.py.
# ---------------------------------------------------------------------------
from repro.core.application import ResponseBody  # noqa: E402
from repro.core.context import ContextDelta, ContextSnapshot  # noqa: E402
from repro.core.unit_db import SessionRecord  # noqa: E402
from repro.core.wire import (  # noqa: E402
    ContextUpdate,
    EndSession,
    Handoff,
    ListUnitsRequest,
    Propagate,
    RebalanceRequest,
    ResponseMsg,
    SessionDenied,
    SessionEnded,
    SessionStarted,
    StartSession,
    StateExchange,
    UnitList,
)
from repro.gcs.messages import (  # noqa: E402
    AttemptId,
    ClientAck,
    ClientMcast,
    Heartbeat,
    Install,
    NackSeqs,
    OrderRequest,
    Propose,
    ProposeNack,
    PtpData,
    RequestId,
    ResyncRequired,
    Sequenced,
    SequencedBatch,
    SyncReply,
)
from repro.gcs.view import ViewId  # noqa: E402
from repro.services.education import EducationSessionState  # noqa: E402
from repro.services.search import SearchSessionState  # noqa: E402
from repro.services.vod import VodSessionState  # noqa: E402

register(WireEnvelope)
# GCS vocabulary (gcs/messages.py + the view id they stamp)
register(ViewId)
register(RequestId)
register(AttemptId)
register(Heartbeat)
register(OrderRequest)
register(Sequenced)
register(SequencedBatch)
register(NackSeqs)
register(ResyncRequired)
register(Propose)
register(ProposeNack)
register(SyncReply)
register(Install)
register(ClientMcast)
register(ClientAck)
register(PtpData)
# framework vocabulary (core/wire.py + the context/record types it carries)
register(ContextSnapshot)
register(ContextDelta)
register(SessionRecord)
register(ResponseBody)
register(ListUnitsRequest)
register(UnitList)
register(StartSession)
register(SessionStarted)
register(SessionDenied)
register(ContextUpdate)
register(EndSession)
register(Propagate)
register(SessionEnded)
register(RebalanceRequest)
register(StateExchange)
register(Handoff)
register(ResponseMsg)
# application session states (propagated inside snapshots and deltas)
register(VodSessionState)
register(EducationSessionState)
register(SearchSessionState)


__all__ = [
    "MAX_FRAME",
    "WIRE_VERSION",
    "CodecError",
    "FrameDecoder",
    "TruncatedFrameError",
    "UnknownTypeError",
    "WireEnvelope",
    "decode_frame",
    "encode_frame",
    "frame_size",
    "register",
    "registered_types",
    "split_frames",
]
