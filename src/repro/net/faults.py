"""Fault injection for live transports.

:class:`FaultyTransport` wraps any :class:`~repro.net.transport.MeshTransport`
and perturbs its *outbound* traffic: links can be severed (symmetric,
asymmetric, or non-transitive — each wrapper only controls its own
outbound direction, so cutting a→b while leaving b→a intact is just a
matter of which wrapper you tell), delayed with per-link base latency
plus jitter (WAN-shaped profiles in :data:`WAN_PROFILES`), and frames
can be dropped, duplicated, or held back (reordered) under a seeded
chaos RNG.

Determinism contract: every injection decision on a directed link is
drawn from ``numpy.random.default_rng([seed, h(src), h(dst)])`` where
``h`` is a stable digest of the node id — so two runs with the same
seed, the same node names, and the same per-link frame sequence make
identical drop/duplicate/hold/jitter decisions.  (Wall-clock delivery
of a *delayed* frame still lands wherever the event loop puts it; the
bit-reproducible replay story lives one layer up, in the ingress frame
log — see :mod:`repro.net.replay`.)

:class:`FaultPlane` coordinates the wrappers of a whole cluster and
speaks the chaos engine's fault vocabulary (``partition`` / ``heal`` /
``cut_link`` / ``delay_link`` / ``duplicate`` / ``reorder`` …), with
the same semantics as the simulator's topology: partition components
are maintained separately from individual link cuts, ``heal_partition``
does not restore cut links, and nodes unmentioned by a partition form
one implicit extra component.  :class:`FaultControlServer` exposes the
plane over a JSON-lines TCP socket so an external process (or
``repro chaos --live`` in another orchestration mode) can drive faults
against a running ``repro serve`` node.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.net.transport import (
    FrameHandler,
    MeshTransport,
    TcpMeshTransport,
    TransportStats,
    UdpLoopbackTransport,
    register_transport,
)
from repro.sim.topology import NodeId


def _stable_hash(node: NodeId) -> int:
    """A platform-stable 31-bit integer for seeding per-link RNG streams
    (``hash()`` is salted per process, which would break determinism)."""
    digest = hashlib.sha256(str(node).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass(slots=True)
class FaultStats:
    """Counters for injected faults (separate from transport traffic
    stats, so oracles can distinguish injected loss from real loss)."""

    severed_drops: int = 0
    in_flight_killed: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    delayed: int = 0

    def as_dict(self) -> dict[str, object]:
        return dict(asdict(self))


class _LinkState:
    """Outbound fault state for one directed link (this node → peer)."""

    __slots__ = (
        "severed_by",
        "base_delay",
        "jitter",
        "extra_delay",
        "drop_p",
        "rng",
    )

    def __init__(self, rng: np.random.Generator) -> None:
        # Tags mirror the simulator topology's two independent layers:
        # "partition" entries come and go with partition/heal_partition,
        # "cut" entries only with cut_link/restore_link.
        self.severed_by: set[str] = set()
        self.base_delay = 0.0
        self.jitter = 0.0
        self.extra_delay = 0.0
        self.drop_p = 0.0
        self.rng = rng

    @property
    def severed(self) -> bool:
        return bool(self.severed_by)


class FaultyTransport:
    """A :class:`MeshTransport` wrapper that injects link faults.

    Wraps transparently: ``stats`` is the inner transport's stats object
    and ``on_frame`` forwards to the inner transport, so the runtime
    cannot tell it is talking to a wrapped transport.  With no faults
    configured (the ``faulty-tcp`` / ``faulty-udp`` registry entries),
    every frame passes straight through with zero added latency.
    """

    def __init__(self, inner: MeshTransport, seed: int = 0) -> None:
        self.inner = inner
        self.seed = seed
        self.node_id: NodeId = getattr(inner, "node_id", "?")
        self.stats: TransportStats = inner.stats
        self.faults = FaultStats()
        self.dup_p = 0.0
        self.reorder_p = 0.0
        self.reorder_window = 0.05
        self._links: dict[NodeId, _LinkState] = {}
        self._timers: set[asyncio.TimerHandle] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # MeshTransport surface (delegation)
    # ------------------------------------------------------------------
    @property
    def on_frame(self) -> FrameHandler | None:
        return self.inner.on_frame

    @on_frame.setter
    def on_frame(self, handler: FrameHandler | None) -> None:
        self.inner.on_frame = handler

    @property
    def address(self) -> tuple[str, int]:
        return self.inner.address

    def set_peer(self, peer: NodeId, host: str, port: int) -> None:
        self.inner.set_peer(peer, host, port)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        return await self.inner.start(host, port)

    async def close(self) -> None:
        self._closed = True
        for handle in list(self._timers):
            handle.cancel()
        self._timers.clear()
        await self.inner.close()

    def stats_snapshot(self) -> dict[str, object]:
        snapshot = self.inner.stats_snapshot()
        snapshot["faults"] = self.faults.as_dict()
        snapshot["severed_links"] = sorted(
            str(peer) for peer, link in self._links.items() if link.severed
        )
        return snapshot

    # ------------------------------------------------------------------
    # fault configuration (the FaultPlane calls these)
    # ------------------------------------------------------------------
    def _link(self, peer: NodeId) -> _LinkState:
        link = self._links.get(peer)
        if link is None:
            rng = np.random.default_rng(
                [self.seed, _stable_hash(self.node_id), _stable_hash(peer)]
            )
            link = _LinkState(rng)
            self._links[peer] = link
        return link

    def sever(self, peer: NodeId, tag: str = "cut") -> None:
        """Cut this node's outbound link to ``peer`` (inbound unaffected —
        sever both wrappers for a symmetric cut)."""
        self._link(peer).severed_by.add(tag)

    def restore(self, peer: NodeId, tag: str = "cut") -> None:
        self._link(peer).severed_by.discard(tag)

    def clear_tag(self, tag: str) -> None:
        """Remove ``tag`` from every link (e.g. heal all partitions)."""
        for link in self._links.values():
            link.severed_by.discard(tag)

    def set_base_delay(self, peer: NodeId, base: float, jitter: float = 0.0) -> None:
        link = self._link(peer)
        link.base_delay = base
        link.jitter = jitter

    def set_extra_delay(self, peer: NodeId, extra: float) -> None:
        self._link(peer).extra_delay = extra

    def clear_extra_delay(self, peer: NodeId) -> None:
        self._link(peer).extra_delay = 0.0

    def set_drop(self, peer: NodeId, probability: float) -> None:
        self._link(peer).drop_p = probability

    def set_duplication(self, probability: float) -> None:
        self.dup_p = probability

    def set_reordering(self, probability: float, window: float = 0.05) -> None:
        self.reorder_p = probability
        self.reorder_window = window

    def clear_faults(self) -> None:
        """Drop all fault state: heal every link, zero every knob."""
        self.dup_p = 0.0
        self.reorder_p = 0.0
        for link in self._links.values():
            link.severed_by.clear()
            link.base_delay = 0.0
            link.jitter = 0.0
            link.extra_delay = 0.0
            link.drop_p = 0.0

    # ------------------------------------------------------------------
    # sending (the injection point)
    # ------------------------------------------------------------------
    def send(self, peer: NodeId, frame: bytes) -> None:
        if self._closed:
            return
        link = self._links.get(peer)
        if link is None:
            self.inner.send(peer, frame)
            return
        if link.severed:
            self.faults.severed_drops += 1
            return
        # Always burn four draws per frame so the decision stream stays
        # aligned with the frame index no matter which faults are active
        # — that is what makes same-seed runs take identical decisions.
        draws = link.rng.random(4)
        if link.drop_p > 0.0 and draws[0] < link.drop_p:
            self.faults.dropped += 1
            return
        duplicate = self.dup_p > 0.0 and draws[1] < self.dup_p
        delay = link.base_delay + link.extra_delay
        if link.jitter > 0.0:
            delay += float(draws[3]) * link.jitter
        if self.reorder_p > 0.0 and draws[2] < self.reorder_p:
            # Holding one frame back while its successors go out on time
            # is exactly a bounded FIFO violation.
            delay += self.reorder_window
            self.faults.reordered += 1
        if duplicate:
            self.faults.duplicated += 1
        if delay <= 0.0:
            self.inner.send(peer, frame)
            if duplicate:
                self.inner.send(peer, frame)
            return
        self.faults.delayed += 1
        copies = 2 if duplicate else 1
        loop = asyncio.get_running_loop()
        handle: asyncio.TimerHandle | None = None

        def fire() -> None:
            if handle is not None:
                self._timers.discard(handle)
            if self._closed:
                return
            current = self._links.get(peer)
            if current is not None and current.severed:
                # the link was cut while the frame was in flight
                self.faults.in_flight_killed += 1
                return
            for _ in range(copies):
                self.inner.send(peer, frame)

        handle = loop.call_later(delay, fire)
        self._timers.add(handle)


# ---------------------------------------------------------------------------
# cluster-wide coordination
# ---------------------------------------------------------------------------
class FaultPlane:
    """Drives the :class:`FaultyTransport` wrappers of a whole cluster.

    Mirrors the simulator topology's semantics so chaos schedules mean
    the same thing live as they do simulated: partitions and individual
    link cuts are independent layers (healing one leaves the other),
    and nodes unmentioned by :meth:`partition` form one implicit extra
    component.
    """

    def __init__(self) -> None:
        self._transports: dict[NodeId, FaultyTransport] = {}

    def adopt(self, node: NodeId, transport: FaultyTransport) -> None:
        self._transports[node] = transport

    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(sorted(self._transports, key=str))

    # -- partition layer ------------------------------------------------
    def partition(self, *components: list[NodeId]) -> None:
        component_of: dict[NodeId, int] = {}
        for index, component in enumerate(components):
            for node in component:
                component_of[node] = index
        for src, transport in self._transports.items():
            src_comp = component_of.get(src, -1)
            for dst in self._transports:
                if dst == src:
                    continue
                if component_of.get(dst, -1) == src_comp:
                    transport.restore(dst, tag="partition")
                else:
                    transport.sever(dst, tag="partition")

    def heal_partition(self) -> None:
        for transport in self._transports.values():
            transport.clear_tag("partition")

    # -- link-cut layer -------------------------------------------------
    def cut_link(self, a: NodeId, b: NodeId, symmetric: bool = True) -> None:
        if a in self._transports:
            self._transports[a].sever(b, tag="cut")
        if symmetric and b in self._transports:
            self._transports[b].sever(a, tag="cut")

    def restore_link(self, a: NodeId, b: NodeId, symmetric: bool = True) -> None:
        if a in self._transports:
            self._transports[a].restore(b, tag="cut")
        if symmetric and b in self._transports:
            self._transports[b].restore(a, tag="cut")

    # -- latency layer --------------------------------------------------
    def set_link_delay(
        self, a: NodeId, b: NodeId, extra: float, symmetric: bool = True
    ) -> None:
        if a in self._transports:
            self._transports[a].set_extra_delay(b, extra)
        if symmetric and b in self._transports:
            self._transports[b].set_extra_delay(a, extra)

    def clear_link_delay(self, a: NodeId, b: NodeId, symmetric: bool = True) -> None:
        if a in self._transports:
            self._transports[a].clear_extra_delay(b)
        if symmetric and b in self._transports:
            self._transports[b].clear_extra_delay(a)

    # -- message adversity ---------------------------------------------
    def set_duplication(self, probability: float) -> None:
        for transport in self._transports.values():
            transport.set_duplication(probability)

    def set_reordering(self, probability: float, window: float = 0.05) -> None:
        for transport in self._transports.values():
            transport.set_reordering(probability, window)

    def set_loss(self, a: NodeId, b: NodeId, probability: float) -> None:
        if a in self._transports:
            self._transports[a].set_drop(b, probability)

    def clear_all(self) -> None:
        for transport in self._transports.values():
            transport.clear_faults()

    # -- control-channel surface ---------------------------------------
    def apply(self, command: dict[str, object]) -> None:
        """Apply one JSON command (the control-channel wire surface).

        Raises ``ValueError`` for unknown or malformed commands; the
        control server turns that into an error reply.
        """
        op = command.get("op")
        if op == "partition":
            raw = command.get("components")
            if not isinstance(raw, list):
                raise ValueError("partition needs components: list of node lists")
            self.partition(*[list(c) for c in raw])
        elif op == "heal_partition":
            self.heal_partition()
        elif op in ("cut_link", "restore_link", "set_link_delay", "clear_link_delay"):
            a, b = command.get("src"), command.get("dst")
            if not isinstance(a, str) or not isinstance(b, str):
                raise ValueError(f"{op} needs string src and dst")
            symmetric = bool(command.get("symmetric", True))
            if op == "cut_link":
                self.cut_link(a, b, symmetric=symmetric)
            elif op == "restore_link":
                self.restore_link(a, b, symmetric=symmetric)
            elif op == "set_link_delay":
                self.set_link_delay(
                    a, b, float(_number(command, "extra")), symmetric=symmetric
                )
            else:
                self.clear_link_delay(a, b, symmetric=symmetric)
        elif op == "set_loss":
            a, b = command.get("src"), command.get("dst")
            if not isinstance(a, str) or not isinstance(b, str):
                raise ValueError("set_loss needs string src and dst")
            self.set_loss(a, b, float(_number(command, "probability")))
        elif op == "set_duplication":
            self.set_duplication(float(_number(command, "probability")))
        elif op == "set_reordering":
            self.set_reordering(
                float(_number(command, "probability")),
                window=float(_number(command, "window", 0.05)),
            )
        elif op == "clear_all":
            self.clear_all()
        else:
            raise ValueError(f"unknown fault op {op!r}")


def _number(command: dict[str, object], key: str, default: float | None = None) -> float:
    value = command.get(key, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{key} must be a number")
    return float(value)


class FaultControlServer:
    """JSON-lines TCP control channel for a :class:`FaultPlane`.

    One command object per line; each gets a one-line JSON reply:
    ``{"ok": true}`` on success, ``{"ok": false, "error": "..."}``
    otherwise.  Meant for loopback/lab use — there is no auth.
    """

    def __init__(self, plane: FaultPlane) -> None:
        self.plane = plane
        self._server: asyncio.Server | None = None
        self.address: tuple[str, int] | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._serve, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        return self.address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    command = json.loads(line)
                    if not isinstance(command, dict):
                        raise ValueError("command must be a JSON object")
                    self.plane.apply(command)
                    reply: dict[str, object] = {"ok": True}
                except (ValueError, TypeError) as exc:
                    reply = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()


# ---------------------------------------------------------------------------
# WAN latency profiles
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WanProfile:
    """A latency matrix shaped like a real multi-region deployment.

    Nodes are assigned to ``regions`` round-robin in sorted-name order
    (deterministic, no configuration needed).  ``intra`` is the
    ``(base, jitter)`` one-way delay within a region; ``inter`` maps a
    sorted ``"regionA-regionB"`` pair to its ``(base, jitter)``.
    ``settings_factor`` is how much the GCS timing constants must be
    scaled for the protocol to stay plausible at these latencies (a
    45 ms link cannot run an 8 ms heartbeat / 30 ms suspect timeout).
    """

    name: str
    regions: tuple[str, ...]
    intra: tuple[float, float]
    inter: dict[str, tuple[float, float]]
    settings_factor: float = 1.0

    def assign_regions(self, nodes: list[NodeId]) -> dict[NodeId, str]:
        ordered = sorted(nodes, key=str)
        return {
            node: self.regions[i % len(self.regions)]
            for i, node in enumerate(ordered)
        }

    def link_delay(self, region_a: str, region_b: str) -> tuple[float, float]:
        if region_a == region_b:
            return self.intra
        key = "-".join(sorted((region_a, region_b)))
        pair = self.inter.get(key)
        if pair is None:
            raise ValueError(f"profile {self.name!r} has no latency for {key!r}")
        return pair

    def install(self, plane: FaultPlane) -> dict[NodeId, str]:
        """Set every adopted transport's per-link base delay and jitter
        from this matrix; returns the node → region assignment."""
        assignment = self.assign_regions(list(plane.nodes()))
        for src in plane.nodes():
            transport = plane._transports[src]
            for dst in plane.nodes():
                if dst == src:
                    continue
                base, jitter = self.link_delay(assignment[src], assignment[dst])
                transport.set_base_delay(dst, base, jitter)
        return assignment


WAN_PROFILES: dict[str, WanProfile] = {
    # Two-region transatlantic: the paper's motivating WAN scenario.
    "us-eu": WanProfile(
        name="us-eu",
        regions=("us", "eu"),
        intra=(0.002, 0.0005),
        inter={"eu-us": (0.045, 0.004)},
        settings_factor=8.0,
    ),
    # Three regions, asymmetric distances — exercises non-uniform
    # suspicion timing (ap sees everyone late, us/eu see each other
    # sooner than either sees ap).
    "global": WanProfile(
        name="global",
        regions=("us", "eu", "ap"),
        intra=(0.002, 0.0005),
        inter={
            "eu-us": (0.045, 0.004),
            "ap-us": (0.075, 0.008),
            "ap-eu": (0.110, 0.010),
        },
        settings_factor=16.0,
    ),
}


def wan_profile(name: str) -> WanProfile:
    profile = WAN_PROFILES.get(name)
    if profile is None:
        raise ValueError(
            f"unknown WAN profile {name!r} (available: {', '.join(sorted(WAN_PROFILES))})"
        )
    return profile


# Pass-through registrations: a FaultyTransport with no faults configured
# behaves identically to its inner transport, so these are safe drop-in
# choices that make every link controllable at runtime (repro serve
# --control wires the control channel to them).
register_transport("faulty-tcp", lambda node_id: FaultyTransport(TcpMeshTransport(node_id)))
register_transport("faulty-udp", lambda node_id: FaultyTransport(UdpLoopbackTransport(node_id)))


__all__ = [
    "WAN_PROFILES",
    "FaultControlServer",
    "FaultPlane",
    "FaultStats",
    "FaultyTransport",
    "WanProfile",
    "wan_profile",
]
