"""Ingress frame logs: the determinism capture for live runs.

A live cluster's evolution is a deterministic function of its
construction and its *ingress delivery schedule*: the pacer always
advances the clock to the exact target time, every internal event's
timestamp derives from scheduled workload times and fixed protocol
delays, and the only place wall-clock timing leaks into the event loop
is when an inbound socket frame is scheduled (``LiveNetwork._ingress``).
So recording, for every ingress frame, the ``(time, seq)`` heap
coordinates its event was assigned plus the raw bytes is *sufficient*
to replay the entire run: rebuild the identical cluster on null
transports, fence the recorded seqs off the simulator's counter
(:meth:`~repro.sim.engine.Simulator.reserve_seqs`), re-inject each frame
at its recorded coordinates (:meth:`~repro.sim.engine.Simulator.inject_at`),
and run — the heap pops in the identical order, so every handler, timer,
and trace record reproduces bit-for-bit (equal trace digests).

The serialized blob packs records with :mod:`struct` (binary64 floats
round-trip exactly — no repr/parse wobble), compresses with zlib
(heartbeat-heavy logs shrink ~10x), and armors with base64 so the blob
embeds in JSON artifacts.
"""

from __future__ import annotations

import base64
import struct
import zlib
from dataclasses import dataclass

from repro.net.transport import FrameHandler, TransportStats
from repro.sim.topology import NodeId

_HEADER = struct.Struct("!BdQI")


@dataclass(frozen=True, slots=True)
class IngressRecord:
    """One ingress frame: which node received it, the ``(time, seq)``
    its delivery event was scheduled at, and the raw bytes."""

    node: str
    time: float
    seq: int
    frame: bytes


class IngressLog:
    """Accumulates :class:`IngressRecord` entries across a whole cluster
    (all nodes share one log — the seq space is per-simulator)."""

    def __init__(self) -> None:
        self.records: list[IngressRecord] = []

    def record(self, node: NodeId, time: float, seq: int, frame: bytes) -> None:
        """The :data:`~repro.net.runtime.IngressRecorder` hook."""
        self.records.append(IngressRecord(str(node), time, seq, frame))

    def __len__(self) -> int:
        return len(self.records)

    def seqs(self) -> list[int]:
        return [record.seq for record in self.records]

    def to_blob(self) -> str:
        """Serialize to a compressed, JSON-embeddable string."""
        parts: list[bytes] = []
        for record in self.records:
            node = record.node.encode("utf-8")
            if len(node) > 255:
                raise ValueError(f"node id too long to log: {record.node!r}")
            parts.append(
                _HEADER.pack(len(node), record.time, record.seq, len(record.frame))
            )
            parts.append(node)
            parts.append(record.frame)
        raw = zlib.compress(b"".join(parts), level=6)
        return base64.b64encode(raw).decode("ascii")

    @classmethod
    def from_blob(cls, blob: str) -> "IngressLog":
        """Inverse of :meth:`to_blob`; validates framing aggressively
        (artifact blobs are untrusted input)."""
        try:
            raw = zlib.decompress(base64.b64decode(blob.encode("ascii")))
        except (ValueError, zlib.error) as exc:
            raise ValueError(f"undecodable ingress log: {exc}") from exc
        log = cls()
        offset = 0
        total = len(raw)
        while offset < total:
            if offset + _HEADER.size > total:
                raise ValueError("truncated ingress log header")
            node_len, time, seq, frame_len = _HEADER.unpack_from(raw, offset)
            offset += _HEADER.size
            end = offset + node_len + frame_len
            if end > total:
                raise ValueError("truncated ingress log record")
            node = raw[offset : offset + node_len].decode("utf-8")
            frame = raw[offset + node_len : end]
            offset = end
            log.records.append(IngressRecord(node, time, seq, frame))
        return log


class ReplayTransport:
    """A null :class:`~repro.net.transport.MeshTransport`: replay runs
    re-feed recorded ingress frames directly, so outbound traffic goes
    nowhere (its effects are already baked into the recorded inbound
    frames of the other nodes) and nothing touches a socket."""

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self.stats = TransportStats()
        self.on_frame: FrameHandler | None = None

    @property
    def address(self) -> tuple[str, int]:
        return ("replay", 0)

    def set_peer(self, peer: NodeId, host: str, port: int) -> None:
        pass

    def send(self, peer: NodeId, frame: bytes) -> None:
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        return self.address

    async def close(self) -> None:
        pass

    def stats_snapshot(self) -> dict[str, object]:
        return {
            "transport": "replay",
            "node": str(self.node_id),
            "stats": self.stats.as_dict(),
            "peers": {},
        }


__all__ = ["IngressLog", "IngressRecord", "ReplayTransport"]
