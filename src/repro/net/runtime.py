"""The runtime adapter: unchanged protocol code over real sockets.

Two pieces make the simulator's process model run live:

* :class:`LiveNetwork` subclasses :class:`repro.sim.network.Network`.
  Locally attached nodes (normally just the one this network belongs to)
  are delivered through the parent's scheduling path; every other
  receiver is wrapped in a :class:`~repro.net.codec.WireEnvelope`,
  encoded, and handed to a :class:`~repro.net.transport.MeshTransport`.
  Inbound frames are decoded and re-enter through the parent's
  ``_deliver`` — so daemons, servers and clients run byte-for-byte the
  same code as in simulation, including ``send``/``multicast``/
  ``set_timer`` semantics and all accounting.
* :class:`LiveRuntime` paces a real :class:`~repro.sim.engine.Simulator`
  against the asyncio wall clock: ``run_until(elapsed)`` executes every
  due timer and delivery, then the pacer sleeps until the next protocol
  deadline (or an inbound frame wakes it).  Simulation time therefore
  *is* wall time, one second per second — protocol timeouts mean what
  they say, while every handler still executes inside the deterministic
  event loop with a consistent ``sim.now``.

Adversity on the live wire comes from :mod:`repro.net.faults`: wrapping
the transport in a :class:`~repro.net.faults.FaultyTransport` lets the
chaos engine partition, delay, drop, duplicate, and reorder real socket
traffic (DESIGN.md §13 — this retired the old §11 caveat that loopback
could not partition).

Ingress is two-phase for replayability: the socket callback only
*schedules* the frame (capturing its ``(time, seq)`` heap coordinates,
optionally into an :class:`~repro.net.replay.IngressLog`) and all
decoding happens inside the event.  Since the arrival schedule is the
single wall-clock input to an otherwise deterministic event loop, a
recorded log replayed through ``Simulator.inject_at`` reproduces the
run bit-for-bit (see DESIGN.md §13).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.net.codec import (
    CodecError,
    WireEnvelope,
    decode_frame,
    encode_envelope_frame,
    encode_frame,
    encode_payload,
)
from repro.net.transport import MeshTransport
from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency
from repro.sim.network import Message, Network
from repro.sim.topology import NodeId, Topology
from repro.sim.trace import TraceLog

#: Callback invoked for every ingress frame with its scheduled heap
#: coordinates: ``(node, event_time, event_seq, raw_frame)``.  The live
#: chaos runner installs :meth:`repro.net.replay.IngressLog.record` here.
IngressRecorder = Callable[[NodeId, float, int, bytes], None]


class LiveNetwork(Network):
    """A per-node :class:`Network` whose remote links are real sockets.

    Every node of a live deployment owns one ``LiveNetwork`` (all of them
    may share one :class:`Simulator` when colocated in a process): sends
    to locally attached nodes use the inherited simulated path with zero
    latency, sends to anyone else cross the transport as encoded frames.
    """

    def __init__(
        self,
        sim: Simulator,
        transport: MeshTransport,
        trace: TraceLog | None = None,
        wake: Callable[[], None] | None = None,
        node_id: NodeId = "?",
        recorder: "IngressRecorder | None" = None,
    ) -> None:
        super().__init__(
            sim, Topology(), FixedLatency(0.0), trace=trace
        )
        self.transport = transport
        transport.on_frame = self._ingress
        self._wake = wake if wake is not None else lambda: None
        self.node_id = node_id
        self.recorder = recorder
        self.frames_rejected = 0
        #: actual encoded bytes per message kind, both directions — the
        #: calibration source for the abstract ``size`` estimates
        self.actual_bytes_sent: dict[str, int] = {}
        self.actual_bytes_received: dict[str, int] = {}
        # identity-keyed cache of recent payload encodings: a broadcast
        # constructs ONE message object and sends it to every peer, so the
        # payload is encoded once and only the envelope shell differs per
        # receiver.  Safe because wire messages are frozen and never
        # mutated after sending (the protocol convention the codec's
        # round-trip contract already relies on).
        self._encode_cache: list[tuple[Any, bytes]] = []
        self.encode_cache_hits = 0

    def set_wake(self, wake: Callable[[], None]) -> None:
        """Install the pacer's wake callback (set once the runtime exists)."""
        self._wake = wake

    # ------------------------------------------------------------------
    # outbound
    # ------------------------------------------------------------------
    def send(
        self,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        kind: str = "msg",
        size: int = 1,
    ) -> Message:
        if receiver in self._handlers:
            return super().send(sender, receiver, payload, kind=kind, size=size)
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            kind=kind,
            size=size,
            send_time=self.sim.now,
            msg_id=next(self._msg_ids),
        )
        # mirror the parent's sender-side accounting so higher layers
        # (heartbeat piggybacking, E2 load metrics) see one coherent view
        self.total_sent += 1
        self._last_send[(sender, receiver)] = self.sim.now
        sent_stats = self._stats_sent[sender][kind]
        sent_stats.sent += 1
        sent_stats.bytes_sent += size
        frame = encode_envelope_frame(
            sender, receiver, kind, size, self._payload_bytes(payload)
        )
        self.actual_bytes_sent[kind] = self.actual_bytes_sent.get(kind, 0) + len(frame)
        self.transport.send(receiver, frame)
        return message

    def _payload_bytes(self, payload: Any) -> bytes:
        """Encode ``payload`` once per object: rebroadcasts hit the cache."""
        for cached, raw in self._encode_cache:
            if cached is payload:
                self.encode_cache_hits += 1
                return raw
        raw = encode_payload(payload)
        self._encode_cache.append((payload, raw))
        if len(self._encode_cache) > 8:
            self._encode_cache.pop(0)
        return raw

    def measure_frame(self, payload: Any) -> int:
        """Actual encoded byte size of ``payload`` on this wire.

        The framework's byte accounting calls this (when present) instead
        of trusting ``size_estimate``."""
        return len(encode_frame(payload))

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def _ingress(self, data: bytes) -> None:
        """One raw frame off the socket: schedule it, wake the pacer.

        This callback is the only place wall-clock timing enters the
        event loop, so it does the *minimum*: capture the frame's heap
        coordinates (recording them when a recorder is installed) and
        defer everything else — decoding, accounting, delivery — into
        the scheduled event, where replay can reproduce it exactly.
        """
        event = self.sim.schedule(
            0.0, lambda: self._ingest(data), label="live:frame"
        )
        if self.recorder is not None:
            self.recorder(self.node_id, event.time, event.seq, data)
        self._wake()

    def _ingest(self, data: bytes) -> None:
        """Decode and deliver one raw frame (runs inside the event loop,
        so handlers always see a consistent ``sim.now``; the unknown
        remote sender is "connected" by the topology's default-component
        rule)."""
        try:
            envelope = decode_frame(data)
        except CodecError:
            self.frames_rejected += 1
            self.trace.record(self.sim.now, "net", "live.frame_rejected", bytes=len(data))
            return
        if not isinstance(envelope, WireEnvelope):
            self.frames_rejected += 1
            self.trace.record(
                self.sim.now,
                "net",
                "live.frame_rejected",
                type=type(envelope).__name__,
            )
            return
        kind = envelope.kind
        self.actual_bytes_received[kind] = self.actual_bytes_received.get(
            kind, 0
        ) + len(data)
        message = Message(
            sender=envelope.sender,
            receiver=envelope.receiver,
            payload=envelope.payload,
            kind=kind,
            size=envelope.size,
            send_time=self.sim.now,
            msg_id=next(self._msg_ids),
        )
        self._deliver(message)


class LiveRuntime:
    """Paces one :class:`Simulator` against the asyncio wall clock.

    ``io_slice`` bounds how much sim time one synchronous ``run_until``
    may replay before yielding to the event loop.  Without the bound, a
    stall (GC pause, scheduler hiccup) is replayed in one blocking call:
    failure-detector timers inside the stalled window fire while the
    peers' heartbeats from that same window still sit unread in kernel
    socket buffers — every node suspects every peer at once and the
    cluster fragments into singleton views for no reason.  Slicing the
    catch-up lets inbound frames land between slices, so liveness
    evidence is ingested before the suspicion deadlines it refutes.
    """

    def __init__(
        self, sim: Simulator, max_tick: float = 0.05, io_slice: float = 0.01
    ) -> None:
        self.sim = sim
        self.max_tick = max_tick
        self.io_slice = io_slice
        self._wake = asyncio.Event()
        self._stopped = False

    def wake(self) -> None:
        """Interrupt the pacer's sleep (an inbound frame was scheduled)."""
        self._wake.set()

    def stop(self) -> None:
        self._stopped = True
        self._wake.set()

    async def run(self, duration: float) -> None:
        """Advance the simulator in lock-step with the wall clock for
        ``duration`` seconds (of both)."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        origin = self.sim.now
        end = origin + duration
        while not self._stopped:
            target = min(origin + (loop.time() - started), end)
            while target > self.sim.now and not self._stopped:
                self.sim.run_until(min(self.sim.now + self.io_slice, target))
                if self.sim.now >= target:
                    break
                # catching up a long gap: drain inbound frames between
                # slices so heartbeats refute suspicions in time order
                await asyncio.sleep(0)
                target = min(origin + (loop.time() - started), end)
            if self.sim.now >= end:
                break
            upcoming = self.sim.next_event_time()
            behind = origin + (loop.time() - started)
            if upcoming is None:
                delay = self.max_tick
            else:
                delay = min(max(upcoming - behind, 0.0), self.max_tick)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=delay)
            except (TimeoutError, asyncio.TimeoutError):
                pass


__all__ = ["IngressRecorder", "LiveNetwork", "LiveRuntime"]
