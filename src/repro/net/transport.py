"""Asyncio transports for the live runtime.

Two interchangeable transports move opaque frames (produced by
:mod:`repro.net.codec`) between named nodes:

* :class:`TcpMeshTransport` — one listening socket per node and one
  outbound connection per peer, created lazily and re-created after
  failures with capped exponential backoff.  Outbound frames wait in a
  per-peer bounded queue; when the queue is full the *oldest* frame is
  dropped and counted (protocol retransmission recovers, exactly as it
  does from loss in the simulator).  Backoff is deterministic — no
  jitter — so live runs stay as reproducible as the sockets allow.
* :class:`UdpLoopbackTransport` — one datagram socket per node on
  127.0.0.1; a frame is a datagram.  Oversized frames are dropped and
  counted (a real UDP path would have fragmented or dropped them too).

Both deliver inbound frames by calling ``on_frame(data)`` with one
complete raw frame; decoding stays the caller's business so the byte
accounting can see actual frame sizes.  Everything runs on the calling
asyncio loop — no threads, no locks.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.net.codec import CodecError, split_frames
from repro.sim.topology import NodeId

FrameHandler = Callable[[bytes], None]

#: Largest frame a UDP datagram can carry safely on loopback.
UDP_MAX_FRAME = 60_000


@dataclass(slots=True)
class TransportStats:
    """Counters both transports maintain (read by tests and the audit)."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    dropped_oldest: int = 0
    dropped_oversize: int = 0
    dropped_unroutable: int = 0
    reconnects: int = 0
    connect_failures: int = 0
    dropped_by_peer: dict[str, int] = field(default_factory=dict)

    def note_oldest_drop(self, peer: NodeId) -> None:
        self.dropped_oldest += 1
        key = str(peer)
        self.dropped_by_peer[key] = self.dropped_by_peer.get(key, 0) + 1


class MeshTransport(Protocol):
    """What the live network needs from a transport."""

    stats: TransportStats
    on_frame: FrameHandler | None

    @property
    def address(self) -> tuple[str, int]: ...

    def set_peer(self, peer: NodeId, host: str, port: int) -> None: ...

    def send(self, peer: NodeId, frame: bytes) -> None: ...

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]: ...

    async def close(self) -> None: ...


# ---------------------------------------------------------------------------
# TCP mesh
# ---------------------------------------------------------------------------
class _PeerChannel:
    """Outbound state for one peer: queue, writer task, backoff."""

    __slots__ = ("addr", "queue", "task", "ready")

    def __init__(self, addr: tuple[str, int]) -> None:
        self.addr = addr
        self.queue: deque[bytes] = deque()
        self.task: asyncio.Task[None] | None = None
        self.ready = asyncio.Event()


class TcpMeshTransport:
    """A full mesh of TCP connections between named nodes.

    Frames carry the sender inside (the codec envelope), so inbound
    connections are read-only: any peer may connect and push frames, and
    this node pushes through its own outbound connections.
    """

    def __init__(
        self,
        node_id: NodeId,
        queue_limit: int = 1024,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.node_id = node_id
        self.queue_limit = queue_limit
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stats = TransportStats()
        self.on_frame: FrameHandler | None = None
        self._peers: dict[NodeId, _PeerChannel] = {}
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._readers: set[asyncio.Task[None]] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._accept, host, port)
        sockname = self._server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("transport not started")
        return self._address

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for channel in self._peers.values():
            if channel.task is not None:
                channel.task.cancel()
        for task in list(self._readers):
            task.cancel()
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def set_peer(self, peer: NodeId, host: str, port: int) -> None:
        self._peers[peer] = _PeerChannel((host, port))

    def send(self, peer: NodeId, frame: bytes) -> None:
        """Queue ``frame`` for ``peer`` (bounded; oldest dropped when full)."""
        if self._closed:
            return
        channel = self._peers.get(peer)
        if channel is None:
            self.stats.dropped_unroutable += 1
            return
        if len(channel.queue) >= self.queue_limit:
            channel.queue.popleft()
            self.stats.note_oldest_drop(peer)
        channel.queue.append(frame)
        channel.ready.set()
        if channel.task is None or channel.task.done():
            channel.task = asyncio.get_running_loop().create_task(
                self._pump(peer, channel)
            )

    async def _pump(self, peer: NodeId, channel: _PeerChannel) -> None:
        """Writer loop for one peer: connect (with capped deterministic
        backoff), then drain the queue for as long as the link holds."""
        attempt = 0
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(*channel.addr)
            except OSError:
                self.stats.connect_failures += 1
                delay = min(self.backoff_base * (2**attempt), self.backoff_cap)
                attempt += 1
                await asyncio.sleep(delay)
                continue
            if attempt > 0:
                self.stats.reconnects += 1
            attempt = 0
            try:
                while not self._closed:
                    while channel.queue:
                        frame = channel.queue.popleft()
                        writer.write(frame)
                        self.stats.frames_sent += 1
                        self.stats.bytes_sent += len(frame)
                    await writer.drain()
                    if not channel.queue:
                        channel.ready.clear()
                        await channel.ready.wait()
            except (OSError, ConnectionError):
                continue  # reconnect with fresh backoff
            finally:
                writer.close()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._readers.add(task)
        buffer = bytearray()
        try:
            while not self._closed:
                data = await reader.read(65536)
                if not data:
                    break
                buffer.extend(data)
                try:
                    frames = split_frames(buffer)
                except CodecError:
                    break  # unframeable stream: drop the connection
                for frame in frames:
                    self.stats.frames_received += 1
                    self.stats.bytes_received += len(frame)
                    if self.on_frame is not None:
                        self.on_frame(frame)
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._readers.discard(task)
            writer.close()


# ---------------------------------------------------------------------------
# UDP loopback
# ---------------------------------------------------------------------------
class _UdpBridge(asyncio.DatagramProtocol):
    def __init__(self, owner: "UdpLoopbackTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._owner.handle_datagram(data)


class UdpLoopbackTransport:
    """Single-datagram-per-frame transport for in-process clusters.

    Loopback UDP gives real sockets and real serialization without
    connection management; frames above :data:`UDP_MAX_FRAME` are dropped
    with a counter, as they would not survive a real datagram path.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self.stats = TransportStats()
        self.on_frame: FrameHandler | None = None
        self._peers: dict[NodeId, tuple[str, int]] = {}
        self._transport: asyncio.DatagramTransport | None = None
        self._address: tuple[str, int] | None = None
        self._closed = False

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        loop = asyncio.get_running_loop()
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _UdpBridge(self), local_addr=(host, port)
        )
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("transport not started")
        return self._address

    def set_peer(self, peer: NodeId, host: str, port: int) -> None:
        self._peers[peer] = (host, port)

    def send(self, peer: NodeId, frame: bytes) -> None:
        if self._closed or self._transport is None:
            return
        addr = self._peers.get(peer)
        if addr is None:
            self.stats.dropped_unroutable += 1
            return
        if len(frame) > UDP_MAX_FRAME:
            self.stats.dropped_oversize += 1
            return
        self._transport.sendto(frame, addr)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)

    def handle_datagram(self, data: bytes) -> None:
        if self._closed:
            return
        self.stats.frames_received += 1
        self.stats.bytes_received += len(data)
        if self.on_frame is not None:
            self.on_frame(data)

    async def close(self) -> None:
        self._closed = True
        if self._transport is not None:
            self._transport.close()
        await asyncio.sleep(0)


__all__ = [
    "UDP_MAX_FRAME",
    "FrameHandler",
    "MeshTransport",
    "TcpMeshTransport",
    "TransportStats",
    "UdpLoopbackTransport",
]
