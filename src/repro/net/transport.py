"""Asyncio transports for the live runtime.

Two interchangeable transports move opaque frames (produced by
:mod:`repro.net.codec`) between named nodes:

* :class:`TcpMeshTransport` — one listening socket per node and one
  outbound connection per peer, created lazily and re-created after
  failures with capped exponential backoff.  Outbound frames wait in a
  per-peer bounded queue; when the queue is full the *oldest* frame is
  dropped and counted (protocol retransmission recovers, exactly as it
  does from loss in the simulator).  Backoff is deterministic — no
  jitter — so live runs stay as reproducible as the sockets allow.
* :class:`UdpLoopbackTransport` — one datagram socket per node on
  127.0.0.1.  A single frame larger than the coalescing bound is sent
  *standalone* in its own datagram (never spliced into a packed batch)
  and counted in ``oversize_frames``; loopback's 64kB MTU usually
  carries it, and if the kernel refuses the send the drop is counted
  via ``error_received``.

Both transports *coalesce*: the TCP writer drains its whole queue into
one writev-style payload per wakeup (one ``write``, one ``drain``), and
the UDP sender packs frames queued within one event-loop turn into a
single datagram up to :data:`UDP_MAX_FRAME`.  The length-prefixed frame
format makes the receive side split coalesced payloads back into frames
without decoding anything.  ``frames_sent``/``frames_received`` count
*logical* frames so throughput metrics stay comparable across
transports; the ``writes`` counter records actual socket operations.

Frames are counted as sent only once the socket accepted them (after a
successful ``drain`` on TCP); a batch in flight when the connection
drops is re-queued ahead of newer frames, so a reconnect re-sends it
instead of silently losing it.

Both deliver inbound frames by calling ``on_frame(data)`` with one
complete raw frame; decoding stays the caller's business so the byte
accounting can see actual frame sizes.  Everything runs on the calling
asyncio loop — no threads, no locks.

Transports register themselves by name (:func:`register_transport`), so
alternative backends can be benchmarked by name without touching the
runtime: ``create_transport("tcp", node_id)``.
"""

from __future__ import annotations

import asyncio
import errno
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Protocol

from repro.net.codec import CodecError, split_frames
from repro.sim.topology import NodeId

FrameHandler = Callable[[bytes], None]

#: Largest datagram payload the UDP transport will send on loopback;
#: also the coalescing bound (frames are packed up to this size).
UDP_MAX_FRAME = 60_000


@dataclass(slots=True)
class TransportStats:
    """Counters both transports maintain (read by tests and the audit).

    ``frames_sent`` counts logical frames accepted by the socket layer;
    ``writes`` counts actual socket operations (writev-style batches on
    TCP, datagrams on UDP), so ``frames_sent / writes`` is the achieved
    coalescing factor.
    """

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    writes: int = 0
    dropped_oldest: int = 0
    dropped_oversize: int = 0
    dropped_unroutable: int = 0
    oversize_frames: int = 0
    reconnects: int = 0
    connect_failures: int = 0
    requeued_batches: int = 0
    requeued_frames: int = 0
    dropped_by_peer: dict[str, int] = field(default_factory=dict)

    def note_oldest_drop(self, peer: NodeId) -> None:
        self.dropped_oldest += 1
        key = str(peer)
        self.dropped_by_peer[key] = self.dropped_by_peer.get(key, 0) + 1

    def as_dict(self) -> dict[str, object]:
        """JSON-ready copy of every counter (for ``--stats-json``)."""
        return dict(asdict(self))


class MeshTransport(Protocol):
    """What the live network needs from a transport."""

    stats: TransportStats
    on_frame: FrameHandler | None

    @property
    def address(self) -> tuple[str, int]: ...

    def set_peer(self, peer: NodeId, host: str, port: int) -> None: ...

    def send(self, peer: NodeId, frame: bytes) -> None: ...

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]: ...

    async def close(self) -> None: ...

    def stats_snapshot(self) -> dict[str, object]: ...


# ---------------------------------------------------------------------------
# transport registry
# ---------------------------------------------------------------------------
TransportFactory = Callable[[NodeId], "MeshTransport"]

_TRANSPORT_REGISTRY: dict[str, TransportFactory] = {}


def register_transport(name: str, factory: TransportFactory) -> None:
    """Make ``factory`` constructible by name via :func:`create_transport`."""
    if name in _TRANSPORT_REGISTRY:
        raise ValueError(f"transport {name!r} is registered twice")
    _TRANSPORT_REGISTRY[name] = factory


def create_transport(name: str, node_id: NodeId) -> MeshTransport:
    """Build the transport registered under ``name`` for ``node_id``."""
    factory = _TRANSPORT_REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown transport {name!r} "
            f"(available: {', '.join(available_transports())})"
        )
    return factory(node_id)


def available_transports() -> tuple[str, ...]:
    return tuple(sorted(_TRANSPORT_REGISTRY))


# ---------------------------------------------------------------------------
# TCP mesh
# ---------------------------------------------------------------------------
class _PeerChannel:
    """Outbound state for one peer: queue, writer task, backoff.

    Carries its own counters so :meth:`TcpMeshTransport.stats_snapshot`
    can attribute reconnect churn and requeues to the peer that caused
    them (the global :class:`TransportStats` only sees totals).
    """

    __slots__ = (
        "addr",
        "queue",
        "task",
        "ready",
        "reconnects",
        "connect_failures",
        "requeued_batches",
        "requeued_frames",
    )

    def __init__(self, addr: tuple[str, int]) -> None:
        self.addr = addr
        self.queue: deque[bytes] = deque()
        self.task: asyncio.Task[None] | None = None
        self.ready = asyncio.Event()
        self.reconnects = 0
        self.connect_failures = 0
        self.requeued_batches = 0
        self.requeued_frames = 0


class TcpMeshTransport:
    """A full mesh of TCP connections between named nodes.

    Frames carry the sender inside (the codec envelope), so inbound
    connections are read-only: any peer may connect and push frames, and
    this node pushes through its own outbound connections.
    """

    def __init__(
        self,
        node_id: NodeId,
        queue_limit: int = 1024,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.node_id = node_id
        self.queue_limit = queue_limit
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stats = TransportStats()
        self.on_frame: FrameHandler | None = None
        self._peers: dict[NodeId, _PeerChannel] = {}
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._readers: set[asyncio.Task[None]] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the listening socket; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._accept, host, port)
        sockname = self._server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("transport not started")
        return self._address

    async def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for channel in self._peers.values():
            if channel.task is not None:
                channel.task.cancel()
        for task in list(self._readers):
            task.cancel()
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def set_peer(self, peer: NodeId, host: str, port: int) -> None:
        self._peers[peer] = _PeerChannel((host, port))

    def send(self, peer: NodeId, frame: bytes) -> None:
        """Queue ``frame`` for ``peer`` (bounded; oldest dropped when full)."""
        if self._closed:
            return
        channel = self._peers.get(peer)
        if channel is None:
            self.stats.dropped_unroutable += 1
            return
        if len(channel.queue) >= self.queue_limit:
            channel.queue.popleft()
            self.stats.note_oldest_drop(peer)
        channel.queue.append(frame)
        channel.ready.set()
        if channel.task is None or channel.task.done():
            channel.task = asyncio.get_running_loop().create_task(
                self._pump(peer, channel)
            )

    async def _pump(self, peer: NodeId, channel: _PeerChannel) -> None:
        """Writer loop for one peer: connect (with capped deterministic
        backoff), then drain the queue for as long as the link holds.

        Each wakeup coalesces the whole queue into one write and one
        drain.  The batch is only counted as sent after the drain
        succeeds; if the connection dies first, the batch is re-queued
        ahead of newer frames so the reconnect re-sends it in order.
        """
        attempt = 0
        while not self._closed:
            try:
                reader, writer = await asyncio.open_connection(*channel.addr)
            except OSError:
                self.stats.connect_failures += 1
                channel.connect_failures += 1
                delay = min(self.backoff_base * (2**attempt), self.backoff_cap)
                attempt += 1
                await asyncio.sleep(delay)
                continue
            if attempt > 0:
                self.stats.reconnects += 1
                channel.reconnects += 1
            attempt = 0
            batch: list[bytes] = []
            try:
                while not self._closed:
                    if not channel.queue:
                        channel.ready.clear()
                        await channel.ready.wait()
                        continue
                    batch = []
                    while channel.queue:
                        batch.append(channel.queue.popleft())
                    writer.write(b"".join(batch))
                    self.stats.writes += 1
                    await writer.drain()
                    self.stats.frames_sent += len(batch)
                    self.stats.bytes_sent += sum(len(f) for f in batch)
                    batch = []
            except (OSError, ConnectionError):
                # the in-flight batch was never counted as sent; put it
                # back ahead of newer frames and reconnect
                if batch:
                    channel.queue.extendleft(reversed(batch))
                    self.stats.requeued_batches += 1
                    self.stats.requeued_frames += len(batch)
                    channel.requeued_batches += 1
                    channel.requeued_frames += len(batch)
                continue
            finally:
                writer.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict[str, object]:
        """Global counters plus per-peer channel state (``--stats-json``)."""
        peers: dict[str, object] = {}
        for peer in sorted(self._peers, key=str):
            channel = self._peers[peer]
            peers[str(peer)] = {
                "queue_depth": len(channel.queue),
                "dropped_oldest": self.stats.dropped_by_peer.get(str(peer), 0),
                "reconnects": channel.reconnects,
                "connect_failures": channel.connect_failures,
                "requeued_batches": channel.requeued_batches,
                "requeued_frames": channel.requeued_frames,
            }
        return {
            "transport": "tcp",
            "node": str(self.node_id),
            "stats": self.stats.as_dict(),
            "peers": peers,
        }

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._readers.add(task)
        buffer = bytearray()
        try:
            while not self._closed:
                data = await reader.read(65536)
                if not data:
                    break
                buffer.extend(data)
                try:
                    frames = split_frames(buffer)
                except CodecError:
                    break  # unframeable stream: drop the connection
                for frame in frames:
                    self.stats.frames_received += 1
                    self.stats.bytes_received += len(frame)
                    if self.on_frame is not None:
                        self.on_frame(frame)
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._readers.discard(task)
            writer.close()


# ---------------------------------------------------------------------------
# UDP loopback
# ---------------------------------------------------------------------------
class _UdpBridge(asyncio.DatagramProtocol):
    def __init__(self, owner: "UdpLoopbackTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._owner.handle_datagram(data)

    def error_received(self, exc: Exception) -> None:
        # asyncio swallows per-send OSErrors (e.g. EMSGSIZE for a
        # standalone oversize frame the kernel refuses) and reports
        # them here instead of raising from sendto().
        self._owner.handle_send_error(exc)


class UdpLoopbackTransport:
    """Datagram transport for in-process clusters.

    Loopback UDP gives real sockets and real serialization without
    connection management.  Frames queued for the same peer within one
    event-loop turn are packed into a single datagram (flushed via
    ``call_soon``, so coalescing never delays a frame past the current
    turn); the receive side splits packed datagrams on the length
    prefixes.  A frame above :data:`UDP_MAX_FRAME` — the *coalescing*
    bound, not the loopback MTU — is flushed around and sent standalone
    in its own datagram, counted in ``oversize_frames``; loopback's
    64kB MTU carries payloads up to ~65507 bytes, and anything the
    kernel still refuses surfaces through ``error_received`` and is
    counted as ``dropped_oversize``.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self.stats = TransportStats()
        self.on_frame: FrameHandler | None = None
        self._peers: dict[NodeId, tuple[str, int]] = {}
        self._pending: dict[NodeId, list[bytes]] = {}
        self._pending_size: dict[NodeId, int] = {}
        self._transport: asyncio.DatagramTransport | None = None
        self._address: tuple[str, int] | None = None
        self._closed = False

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        loop = asyncio.get_running_loop()
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _UdpBridge(self), local_addr=(host, port)
        )
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self._address = (str(sockname[0]), int(sockname[1]))
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("transport not started")
        return self._address

    def set_peer(self, peer: NodeId, host: str, port: int) -> None:
        self._peers[peer] = (host, port)

    def send(self, peer: NodeId, frame: bytes) -> None:
        if self._closed or self._transport is None:
            return
        addr = self._peers.get(peer)
        if addr is None:
            self.stats.dropped_unroutable += 1
            return
        if len(frame) > UDP_MAX_FRAME:
            # Too big to coalesce: flush whatever is already pending for
            # this peer first (preserving send order), then ship the
            # frame standalone in its own datagram.
            if peer in self._pending:
                self._flush(peer)
            self._transport.sendto(frame, addr)
            self.stats.oversize_frames += 1
            self.stats.writes += 1
            self.stats.frames_sent += 1
            self.stats.bytes_sent += len(frame)
            return
        pending = self._pending.get(peer)
        if pending is not None and self._pending_size[peer] + len(frame) > UDP_MAX_FRAME:
            self._flush(peer)  # keep the datagram under the size bound
            pending = None
        if pending is None:
            self._pending[peer] = [frame]
            self._pending_size[peer] = len(frame)
            asyncio.get_running_loop().call_soon(self._flush, peer)
        else:
            pending.append(frame)
            self._pending_size[peer] += len(frame)

    def _flush(self, peer: NodeId) -> None:
        """Send the pending frames for ``peer`` as one packed datagram."""
        frames = self._pending.pop(peer, None)
        self._pending_size.pop(peer, None)
        if not frames or self._closed or self._transport is None:
            return
        addr = self._peers.get(peer)
        if addr is None:
            self.stats.dropped_unroutable += len(frames)
            return
        payload = frames[0] if len(frames) == 1 else b"".join(frames)
        self._transport.sendto(payload, addr)
        self.stats.writes += 1
        self.stats.frames_sent += len(frames)
        self.stats.bytes_sent += len(payload)

    def handle_datagram(self, data: bytes) -> None:
        if self._closed:
            return
        self.stats.bytes_received += len(data)
        buffer = bytearray(data)
        try:
            frames = split_frames(buffer)
        except CodecError:
            frames = []
        if buffer or not frames:
            # unframeable datagram: hand it up whole, the decoder
            # rejects it and the runtime counts the rejection
            self.stats.frames_received += 1
            if self.on_frame is not None:
                self.on_frame(data)
            return
        for frame in frames:
            self.stats.frames_received += 1
            if self.on_frame is not None:
                self.on_frame(frame)

    def handle_send_error(self, exc: Exception) -> None:
        """A queued datagram the kernel refused (via ``error_received``)."""
        if isinstance(exc, OSError) and exc.errno == errno.EMSGSIZE:
            self.stats.dropped_oversize += 1

    def stats_snapshot(self) -> dict[str, object]:
        """Global counters plus per-peer pending state (``--stats-json``)."""
        peers: dict[str, object] = {}
        for peer in sorted(self._peers, key=str):
            peers[str(peer)] = {
                "pending_frames": len(self._pending.get(peer, ())),
                "pending_bytes": self._pending_size.get(peer, 0),
            }
        return {
            "transport": "udp",
            "node": str(self.node_id),
            "stats": self.stats.as_dict(),
            "peers": peers,
        }

    async def close(self) -> None:
        for peer in list(self._pending):
            self._flush(peer)  # don't strand frames queued this turn
        self._closed = True
        if self._transport is not None:
            self._transport.close()
        await asyncio.sleep(0)


register_transport("tcp", TcpMeshTransport)
register_transport("udp", UdpLoopbackTransport)


__all__ = [
    "UDP_MAX_FRAME",
    "FrameHandler",
    "MeshTransport",
    "TcpMeshTransport",
    "TransportFactory",
    "TransportStats",
    "UdpLoopbackTransport",
    "available_transports",
    "create_transport",
    "register_transport",
]
