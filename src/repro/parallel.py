"""Deterministic parallel seed sharding.

Both the experiment suite and the chaos explorer are embarrassingly
parallel across *seeds*: every task is a pure function of its inputs (the
simulator is deterministic and each task builds its own world), so runs
can be sharded across worker processes without changing any result.

The one rule this module enforces is **merge order**: results come back
ordered by task index, never by completion time, so a parallel sweep is
byte-identical to the serial one — the acceptance test for the whole
fast path is ``--workers 1`` and ``--workers 4`` producing the same
``trace_digest`` sequence.

Implementation notes:

* ``multiprocessing.Pool.map`` with ``chunksize=1`` — it pickles each
  task, so worker functions must be module-level and task payloads plain
  data (all our configs/schedules/results are simple dataclasses).
* ``workers <= 1`` (or a single task) short-circuits to an in-process
  loop: exactly the code path a serial run takes, no pool overhead, and
  the base case the determinism tests compare against.
* Worker processes inherit the parent's interpreter via the default
  start method (``fork`` on Linux, ``spawn`` elsewhere); both work
  because tasks carry everything they need.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, Sequence


def effective_workers(requested: int | None) -> int:
    """Clamp a ``--workers`` request to something sane for this host.

    ``None`` or ``0`` means "pick for me": one worker per available core.
    Explicit requests are honoured as given (oversubscription is allowed —
    useful for testing the sharded code path on small machines)."""
    if requested is None or requested <= 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return requested


def map_sharded(
    worker: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int = 1,
) -> list[Any]:
    """Run ``worker`` over ``tasks``, sharded across processes.

    Results are returned **in task order** (index ``i`` of the result
    list is ``worker(tasks[i])``), regardless of which worker finished
    first — deterministic merge by construction.

    ``worker`` must be picklable (module-level function) when
    ``workers > 1``; with ``workers <= 1`` any callable works and
    everything runs in-process.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    n = min(workers, len(tasks))
    with multiprocessing.Pool(processes=n) as pool:
        # chunksize=1: tasks are coarse (whole simulated worlds), so
        # load-balance task-by-task rather than in contiguous blocks
        return pool.map(worker, tasks, chunksize=1)


def starmap_sharded(
    worker: Callable[..., Any],
    tasks: Iterable[tuple],
    workers: int = 1,
) -> list[Any]:
    """:func:`map_sharded` for workers taking positional arguments."""
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return [worker(*task) for task in tasks]
    n = min(workers, len(tasks))
    with multiprocessing.Pool(processes=n) as pool:
        return pool.starmap(worker, tasks, chunksize=1)


__all__ = ["effective_workers", "map_sharded", "starmap_sharded"]
