"""The paper's three motivating services (Section 2), as framework plug-ins.

* :mod:`repro.services.vod` — video-on-demand: a session streams frames of
  one movie; the context is the playback position, rate and pause state.
* :mod:`repro.services.education` — distance education: a session studies
  one topic; the context is the current learning object, quiz grades, and
  the adaptive detail level.
* :mod:`repro.services.search` — refinement search: the context is the
  list of previous result sets, which later queries narrow or combine.

:mod:`repro.services.content` provides synthetic content-unit generators
(movies with I/P/B frame structure, topics with learning objects, document
corpora); :mod:`repro.services.workload` drives client behaviour.
"""

from repro.services.content import (
    Corpus,
    LearningObject,
    Movie,
    Topic,
    build_corpus,
    build_movie,
    build_topic,
)
from repro.services.education import EducationApplication
from repro.services.search import SearchApplication
from repro.services.vod import VodApplication, VodSessionState

__all__ = [
    "Corpus",
    "EducationApplication",
    "LearningObject",
    "Movie",
    "SearchApplication",
    "Topic",
    "VodApplication",
    "VodSessionState",
    "build_corpus",
    "build_movie",
    "build_topic",
]
