"""Synthetic content units.

The paper's content is static during sessions (changes happen outside the
framework), so content units are plain immutable data:

* a :class:`Movie` is a numbered frame sequence with an MPEG-like GOP
  pattern assigning each frame a class (I/P/B) — only the class matters to
  the uncertainty policies;
* a :class:`Topic` is a set of learning objects (notes, animations,
  quizzes) with difficulty levels;
* a :class:`Corpus` is a set of documents with terms and years, queried by
  the search service.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_GOP = "IBBPBBPBBPBB"


@dataclass(frozen=True)
class Movie:
    """One VoD content unit."""

    unit_id: str
    n_frames: int
    frame_rate: float = 24.0
    gop_pattern: str = DEFAULT_GOP

    def frame_class(self, index: int) -> str:
        return self.gop_pattern[index % len(self.gop_pattern)]

    @property
    def duration(self) -> float:
        return self.n_frames / self.frame_rate


def build_movie(
    unit_id: str,
    duration_seconds: float = 60.0,
    frame_rate: float = 24.0,
    gop_pattern: str = DEFAULT_GOP,
) -> Movie:
    return Movie(
        unit_id=unit_id,
        n_frames=int(round(duration_seconds * frame_rate)),
        frame_rate=frame_rate,
        gop_pattern=gop_pattern,
    )


@dataclass(frozen=True)
class LearningObject:
    """One item of a distance-education topic."""

    object_id: int
    kind: str  # "notes" | "animation" | "quiz"
    difficulty: int  # 1 (easy) .. 3 (hard)
    body: str
    answer: int | None = None  # quizzes only
    links: tuple[int, ...] = ()  # hyper-links to other objects


@dataclass(frozen=True)
class Topic:
    """One distance-education content unit."""

    unit_id: str
    objects: tuple[LearningObject, ...]

    def get(self, object_id: int) -> LearningObject | None:
        if 0 <= object_id < len(self.objects):
            return self.objects[object_id]
        return None

    def quizzes(self) -> list[LearningObject]:
        return [o for o in self.objects if o.kind == "quiz"]


def build_topic(
    unit_id: str, n_objects: int = 12, seed: int = 0
) -> Topic:
    """A deterministic topic: notes/animation/quiz round-robin with
    difficulty rising along the object sequence."""
    rng = np.random.default_rng(seed)
    kinds = ["notes", "animation", "quiz"]
    objects = []
    for index in range(n_objects):
        kind = kinds[index % 3]
        difficulty = 1 + (index * 3) // max(1, n_objects)
        answer = int(rng.integers(0, 4)) if kind == "quiz" else None
        links = tuple(
            int(x) for x in rng.choice(n_objects, size=min(2, n_objects), replace=False)
        )
        objects.append(
            LearningObject(
                object_id=index,
                kind=kind,
                difficulty=min(difficulty, 3),
                body=f"{unit_id}:{kind}:{index}",
                answer=answer,
                links=links,
            )
        )
    return Topic(unit_id=unit_id, objects=tuple(objects))


@dataclass(frozen=True)
class Document:
    doc_id: int
    year: int
    terms: frozenset[str]


@dataclass(frozen=True)
class Corpus:
    """One search content unit: a static document collection."""

    unit_id: str
    documents: tuple[Document, ...]

    def matching(self, terms: set[str], within: list[int] | None = None) -> list[int]:
        """Doc ids containing all ``terms``, optionally restricted to the
        ``within`` id list (refinement)."""
        candidates = (
            self.documents
            if within is None
            else [self.documents[i] for i in within if i < len(self.documents)]
        )
        return [d.doc_id for d in candidates if terms <= d.terms]

    def after_year(self, year: int, within: list[int]) -> list[int]:
        return [
            self.documents[i].doc_id
            for i in within
            if i < len(self.documents) and self.documents[i].year > year
        ]


VOCABULARY = [
    "replication", "group", "view", "consensus", "multicast", "failure",
    "availability", "session", "video", "membership", "quorum", "partition",
]


def build_corpus(unit_id: str, n_documents: int = 200, seed: int = 0) -> Corpus:
    rng = np.random.default_rng(seed)
    documents = []
    for doc_id in range(n_documents):
        n_terms = int(rng.integers(2, 6))
        terms = frozenset(
            rng.choice(VOCABULARY, size=n_terms, replace=False).tolist()
        )
        year = int(rng.integers(1985, 2001))
        documents.append(Document(doc_id=doc_id, year=year, terms=terms))
    return Corpus(unit_id=unit_id, documents=tuple(documents))


__all__ = [
    "Corpus",
    "Document",
    "LearningObject",
    "Movie",
    "Topic",
    "build_corpus",
    "build_movie",
    "build_topic",
    "DEFAULT_GOP",
    "VOCABULARY",
]
