"""Distance education: the paper's second example service.

A session studies one *topic* (the content unit).  The session context is
the student's place in the topic: which object is open, the quiz grades so
far, and the adaptive detail level ("the service may provide more detailed
explanations if the last quiz grade is low").  All responses are immediate
reactions to client requests — this exercises the framework's
request/response path rather than the streaming path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.application import RequestResponseApplication, ResponseBody
from repro.services.content import Topic


@dataclass(frozen=True)
class EducationSessionState:
    unit_id: str
    current_object: int = 0
    detail_level: int = 1  # 1 normal, 2 detailed (after poor quiz results)
    grades: tuple[int, ...] = ()
    visited: tuple[int, ...] = ()
    responses_emitted: int = 0


class EducationApplication(RequestResponseApplication):
    """Education plug-in over a catalog of topics.

    Client updates:

    * ``{"op": "open", "object": k}`` — download object *k*; the response
      body includes extra explanation when the detail level is raised;
    * ``{"op": "answer", "object": k, "answer": a}`` — grade a quiz; a low
      grade raises the detail level and triggers a remedial response;
    * ``{"op": "follow", "link": i}`` — follow the i-th hyper-link of the
      current object;
    * ``{"op": "next"}`` — advance to the next object.
    """

    def __init__(self, topics: dict[str, Topic]) -> None:
        self.topics = dict(topics)

    def topic(self, unit_id: str) -> Topic:
        return self.topics[unit_id]

    def initial_state(self, unit_id: str, params: Any) -> EducationSessionState:
        params = params or {}
        return EducationSessionState(
            unit_id=unit_id, current_object=int(params.get("start_object", 0))
        )

    def apply_update(
        self, state: EducationSessionState, update: Any
    ) -> EducationSessionState:
        topic = self.topics[state.unit_id]
        op = update.get("op")
        if op == "open":
            target = int(update["object"])
            if topic.get(target) is None:
                return state
            return replace(
                state,
                current_object=target,
                visited=state.visited + (target,),
            )
        if op == "answer":
            quiz = topic.get(int(update["object"]))
            if quiz is None or quiz.kind != "quiz":
                return state
            grade = 100 if update.get("answer") == quiz.answer else 25
            detail = 2 if grade < 50 else 1
            return replace(
                state, grades=state.grades + (grade,), detail_level=detail
            )
        if op == "follow":
            obj = topic.get(state.current_object)
            if obj is None or not obj.links:
                return state
            target = obj.links[int(update.get("link", 0)) % len(obj.links)]
            return replace(
                state, current_object=target, visited=state.visited + (target,)
            )
        if op == "next":
            nxt = min(state.current_object + 1, len(topic.objects) - 1)
            return replace(
                state, current_object=nxt, visited=state.visited + (nxt,)
            )
        return state

    def respond_to_update(
        self, state: EducationSessionState, update: Any
    ) -> tuple[EducationSessionState, list[ResponseBody]]:
        topic = self.topics[state.unit_id]
        op = update.get("op")
        responses: list[ResponseBody] = []
        if op in ("open", "follow", "next"):
            obj = topic.get(state.current_object)
            if obj is not None:
                body = {"object": obj.object_id, "kind": obj.kind, "body": obj.body}
                if state.detail_level > 1:
                    body["extra_detail"] = f"detailed:{obj.object_id}"
                responses.append(
                    ResponseBody(
                        index=state.responses_emitted,
                        klass="object",
                        body=body,
                        size=8 if state.detail_level > 1 else 4,
                    )
                )
        elif op == "answer":
            grade = state.grades[-1] if state.grades else 0
            responses.append(
                ResponseBody(
                    index=state.responses_emitted,
                    klass="feedback",
                    body={"grade": grade, "detail_level": state.detail_level},
                    size=2,
                )
            )
            if grade < 50:
                remedial = topic.get(max(0, state.current_object - 1))
                if remedial is not None:
                    responses.append(
                        ResponseBody(
                            index=state.responses_emitted + 1,
                            klass="remedial",
                            body={"object": remedial.object_id, "body": remedial.body},
                            size=6,
                        )
                    )
        if responses:
            state = replace(
                state, responses_emitted=state.responses_emitted + len(responses)
            )
        return state, responses

    def is_finished(self, state: EducationSessionState) -> bool:
        topic = self.topics[state.unit_id]
        return len(set(state.visited)) >= len(topic.objects)


__all__ = ["EducationApplication", "EducationSessionState"]
