"""Refinement search: the paper's third example service.

"A search service which allows a client to make successively narrower
queries by restricting the search in one query to within the result set of
earlier ones ... in general, the session context is the list of previous
result sets."  The context unit is a document corpus; every query response
carries the new result set's index so later updates can reference it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.application import RequestResponseApplication, ResponseBody
from repro.services.content import Corpus


@dataclass(frozen=True)
class SearchSessionState:
    unit_id: str
    result_sets: tuple[tuple[int, ...], ...] = ()
    answered: int = 0  # result sets already reported to the client

    def result(self, index: int) -> list[int] | None:
        if 0 <= index < len(self.result_sets):
            return list(self.result_sets[index])
        return None


class SearchApplication(RequestResponseApplication):
    """Search plug-in over a catalog of corpora.

    Client updates:

    * ``{"op": "query", "terms": [...]}`` — fresh query over the corpus;
    * ``{"op": "refine", "base": k, "terms": [...]}`` — query restricted
      to result set *k*;
    * ``{"op": "after", "base": k, "year": y}`` — publication-date filter
      over result set *k* (the paper's example);
    * ``{"op": "intersect", "a": i, "b": j}`` — intersection of two
      earlier result sets (the paper's other example).

    Every operation appends a result set to the context and returns it.
    """

    def __init__(self, corpora: dict[str, Corpus]) -> None:
        self.corpora = dict(corpora)

    def corpus(self, unit_id: str) -> Corpus:
        return self.corpora[unit_id]

    def initial_state(self, unit_id: str, params: Any) -> SearchSessionState:
        return SearchSessionState(unit_id=unit_id)

    def _evaluate(self, state: SearchSessionState, update: Any) -> list[int] | None:
        corpus = self.corpora[state.unit_id]
        op = update.get("op")
        if op == "query":
            return corpus.matching(set(update.get("terms", ())))
        if op == "refine":
            base = state.result(int(update.get("base", -1)))
            if base is None:
                return None
            return corpus.matching(set(update.get("terms", ())), within=base)
        if op == "after":
            base = state.result(int(update.get("base", -1)))
            if base is None:
                return None
            return corpus.after_year(int(update.get("year", 0)), within=base)
        if op == "intersect":
            a = state.result(int(update.get("a", -1)))
            b = state.result(int(update.get("b", -1)))
            if a is None or b is None:
                return None
            b_set = set(b)
            return [doc for doc in a if doc in b_set]
        return None

    def apply_update(
        self, state: SearchSessionState, update: Any
    ) -> SearchSessionState:
        result = self._evaluate(state, update)
        if result is None:
            return state
        return replace(
            state, result_sets=state.result_sets + (tuple(result),)
        )

    def respond_to_update(
        self, state: SearchSessionState, update: Any
    ) -> tuple[SearchSessionState, list[ResponseBody]]:
        # apply_update already appended the result of a *valid* update (the
        # framework applies before responding); report any not-yet-answered
        # sets.  Invalid updates appended nothing and get no response.
        responses: list[ResponseBody] = []
        for index in range(state.answered, len(state.result_sets)):
            result_set = state.result_sets[index]
            responses.append(
                ResponseBody(
                    index=index,
                    klass="result",
                    body={"result_set": index, "doc_ids": list(result_set)},
                    size=1 + len(result_set) // 10,
                )
            )
        if responses:
            state = replace(state, answered=len(state.result_sets))
        return state, responses


__all__ = ["SearchApplication", "SearchSessionState"]
