"""Video-on-demand: the paper's running example (and the service of [2]).

The session context is the playback position within one movie, the
requested rate, and the pause state.  Frames stream on a timer; context
updates let the client skip ("skip to the start of scene 4"), pause,
resume, and change rate — exactly the operations Sections 2–3 describe.

Frames carry their MPEG class (I/P/B) so the selective uncertainty policy
can prefer duplicating I-frames over losing them (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.application import ResponseBody
from repro.services.content import Movie

FRAME_SIZE = {"I": 30, "P": 10, "B": 5}


@dataclass(frozen=True)
class VodSessionState:
    """Immutable VoD session context (frozen => snapshots are cheap and
    can never alias the live state)."""

    unit_id: str
    position: int = 0
    rate: float = 24.0
    paused: bool = False


class VodApplication:
    """The VoD plug-in: one application instance serves many movies."""

    def __init__(self, movies: dict[str, Movie]) -> None:
        self.movies = dict(movies)

    def movie(self, unit_id: str) -> Movie:
        return self.movies[unit_id]

    # ------------------------------------------------------------------
    # ServiceApplication
    # ------------------------------------------------------------------
    def initial_state(self, unit_id: str, params: Any) -> VodSessionState:
        params = params or {}
        movie = self.movies[unit_id]
        return VodSessionState(
            unit_id=unit_id,
            position=int(params.get("start", 0)),
            rate=float(params.get("rate", movie.frame_rate)),
            paused=bool(params.get("paused", False)),
        )

    def apply_update(self, state: VodSessionState, update: Any) -> VodSessionState:
        op = update.get("op")
        if op == "skip":
            movie = self.movies[state.unit_id]
            target = max(0, min(int(update["to"]), movie.n_frames))
            return replace(state, position=target)
        if op == "pause":
            return replace(state, paused=True)
        if op == "resume":
            return replace(state, paused=False)
        if op == "rate":
            return replace(state, rate=max(0.1, float(update["value"])))
        return state

    def respond_to_update(self, state, update):
        return state, []

    def response_interval(self, state: VodSessionState) -> float | None:
        if state.paused:
            return None
        return 1.0 / state.rate

    def next_responses(self, state: VodSessionState):
        movie = self.movies[state.unit_id]
        if state.paused or state.position >= movie.n_frames:
            return state, []
        frame = state.position
        klass = movie.frame_class(frame)
        response = ResponseBody(
            index=frame,
            klass=klass,
            body=("frame", state.unit_id, frame),
            size=FRAME_SIZE.get(klass, 10),
        )
        return replace(state, position=frame + 1), [response]

    def estimate_emitted(self, state: VodSessionState, elapsed: float) -> int:
        if state.paused:
            return 0
        movie = self.movies[state.unit_id]
        remaining = max(0, movie.n_frames - state.position)
        return min(remaining, int(elapsed * state.rate))

    def advance(self, state: VodSessionState, count: int) -> VodSessionState:
        movie = self.movies[state.unit_id]
        return replace(
            state, position=min(movie.n_frames, state.position + count)
        )

    def is_finished(self, state: VodSessionState) -> bool:
        movie = self.movies[state.unit_id]
        return state.position >= movie.n_frames


__all__ = ["FRAME_SIZE", "VodApplication", "VodSessionState"]
