"""Client behaviour drivers.

Workloads schedule realistic client activity on the simulator: VoD viewers
that occasionally skip/pause, students working through a topic, searchers
issuing refinement chains, and a Poisson session-arrival generator for
many-client load experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.client import ServiceClient, SessionHandle
from repro.core.service import ServiceCluster


@dataclass
class VodViewerWorkload:
    """A viewer of one movie: watches, occasionally skips or pauses.

    Args:
        skip_interval_mean: mean seconds between skip requests (exponential).
        pause_probability: chance that an interaction is a pause+resume
            instead of a skip.
        max_skip: largest forward/backward jump in frames.
    """

    cluster: ServiceCluster
    client: ServiceClient
    handle: SessionHandle
    rng: np.random.Generator
    skip_interval_mean: float = 10.0
    pause_probability: float = 0.2
    pause_duration: float = 1.0
    max_skip: int = 200
    movie_frames: int = 24 * 60
    active: bool = True
    interactions: int = 0

    def start(self) -> None:
        self._schedule_next()

    def stop(self) -> None:
        self.active = False

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.skip_interval_mean))
        self.cluster.sim.schedule(max(0.05, delay), self._interact)

    def _interact(self) -> None:
        if not self.active or not self.client.is_up():
            return
        self.interactions += 1
        if self.rng.random() < self.pause_probability:
            self.client.send_update(self.handle, {"op": "pause"})
            self.cluster.sim.schedule(
                self.pause_duration,
                lambda: self.active
                and self.client.is_up()
                and self.client.send_update(self.handle, {"op": "resume"}),
            )
        else:
            target = int(self.rng.integers(0, self.movie_frames))
            self.client.send_update(self.handle, {"op": "skip", "to": target})
        self._schedule_next()


@dataclass
class StudentWorkload:
    """A student stepping through a topic: open, quiz answers, next."""

    cluster: ServiceCluster
    client: ServiceClient
    handle: SessionHandle
    rng: np.random.Generator
    n_objects: int
    think_time_mean: float = 2.0
    correct_probability: float = 0.6
    active: bool = True
    steps_taken: int = 0

    def start(self) -> None:
        self.client.send_update(self.handle, {"op": "open", "object": 0})
        self._schedule_next()

    def stop(self) -> None:
        self.active = False

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.think_time_mean))
        self.cluster.sim.schedule(max(0.05, delay), self._step)

    def _step(self) -> None:
        if not self.active or not self.client.is_up():
            return
        self.steps_taken += 1
        current = self.steps_taken % self.n_objects
        if current % 3 == 2:  # quizzes sit at every third object
            answer = (
                int(self.rng.integers(0, 4))
                if self.rng.random() > self.correct_probability
                else None
            )
            self.client.send_update(
                self.handle,
                {"op": "answer", "object": current, "answer": answer},
            )
        self.client.send_update(self.handle, {"op": "next"})
        self._schedule_next()


@dataclass
class SearcherWorkload:
    """A searcher issuing a refinement chain over one corpus."""

    cluster: ServiceCluster
    client: ServiceClient
    handle: SessionHandle
    rng: np.random.Generator
    vocabulary: list[str]
    think_time_mean: float = 1.5
    active: bool = True
    queries_sent: int = 0

    def start(self) -> None:
        self._schedule_next()

    def stop(self) -> None:
        self.active = False

    def _schedule_next(self) -> None:
        delay = float(self.rng.exponential(self.think_time_mean))
        self.cluster.sim.schedule(max(0.05, delay), self._query)

    def _query(self) -> None:
        if not self.active or not self.client.is_up():
            return
        if self.queries_sent == 0 or self.rng.random() < 0.4:
            terms = self.rng.choice(self.vocabulary, size=1).tolist()
            update = {"op": "query", "terms": terms}
        elif self.rng.random() < 0.7:
            terms = self.rng.choice(self.vocabulary, size=1).tolist()
            update = {
                "op": "refine",
                "base": int(self.rng.integers(0, self.queries_sent)),
                "terms": terms,
            }
        else:
            update = {
                "op": "after",
                "base": int(self.rng.integers(0, self.queries_sent)),
                "year": 1995,
            }
        self.client.send_update(self.handle, update)
        self.queries_sent += 1
        self._schedule_next()


@dataclass
class SessionPopulation:
    """Keeps ``target`` concurrent VoD sessions alive across one unit set:
    used by the load and fairness experiments."""

    cluster: ServiceCluster
    unit_ids: list[str]
    rng: np.random.Generator
    target: int = 10
    started: int = 0
    handles: list[SessionHandle] = field(default_factory=list)
    workloads: list[VodViewerWorkload] = field(default_factory=list)

    def start(self, movie_frames: int = 24 * 60) -> None:
        for index in range(self.target):
            client = self.cluster.add_client(f"pop-c{index}")
            unit = self.unit_ids[index % len(self.unit_ids)]
            handle = client.start_session(unit)
            self.handles.append(handle)
            workload = VodViewerWorkload(
                cluster=self.cluster,
                client=client,
                handle=handle,
                rng=self.rng,
                movie_frames=movie_frames,
            )
            self.workloads.append(workload)
            workload.start()
            self.started += 1

    def stop(self) -> None:
        for workload in self.workloads:
            workload.stop()


__all__ = [
    "SearcherWorkload",
    "SessionPopulation",
    "StudentWorkload",
    "VodViewerWorkload",
]
