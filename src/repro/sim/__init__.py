"""Deterministic discrete-event simulation substrate.

This package provides the bottom layer of the reproduction: a
single-threaded, seeded, exactly reproducible discrete-event simulator with

* an event engine (:mod:`repro.sim.engine`),
* a process abstraction with timers and crash/recover lifecycle
  (:mod:`repro.sim.process`),
* a message-passing network with FIFO per-pair delivery, pluggable latency
  models and a mutable connectivity topology supporting partitions and
  non-transitive link cuts (:mod:`repro.sim.network`,
  :mod:`repro.sim.topology`, :mod:`repro.sim.latency`),
* named, seeded random streams (:mod:`repro.sim.rng`), and
* a structured trace log (:mod:`repro.sim.trace`).

The paper's evaluation is a fault-pattern risk analysis; a deterministic
simulator reproduces fault patterns, timing windows and message counts
exactly, which is what the experiments measure.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.latency import (
    FixedLatency,
    LatencyModel,
    UniformLatency,
    lan_latency,
    wan_latency,
)
from repro.sim.network import Message, Network
from repro.sim.process import Process, ProcessState
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "ProcessState",
    "Message",
    "Network",
    "Topology",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "lan_latency",
    "wan_latency",
    "RngRegistry",
    "TraceEvent",
    "TraceLog",
]
