"""Discrete-event simulation engine.

The engine is a classic calendar loop: a binary heap of events keyed by
``(time, sequence)``.  The monotonically increasing sequence number breaks
ties deterministically in insertion order, which makes every simulation run
exactly reproducible for a given seed and schedule of calls.

Nothing in the engine knows about networks or processes; those layers are
built on top (see :mod:`repro.sim.network` and :mod:`repro.sim.process`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in timestamp
    order with deterministic tie-breaking.  ``cancelled`` supports O(1)
    cancellation: the event stays in the heap but is skipped when popped.
    ``executed`` is set by the engine once the callback has run, so holders
    of an event reference (e.g. a process's timer list) can tell a fired
    one-shot from a still-pending one and release it.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    @property
    def finished(self) -> bool:
        """True once the event can never fire (again): cancelled or run."""
        return self.cancelled or self.executed


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run_until(10.0)

    The simulator clock starts at ``0.0`` and only advances when events are
    executed.  Callbacks may schedule further events (at or after the
    current time).
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._executed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.executed = True
            event.callback()
            return True
        return False

    def run_until(self, time: float, max_events: int | None = None) -> None:
        """Run events with timestamps ``<= time``.

        The clock is advanced to exactly ``time`` when the queue drains or
        only later events remain.  ``max_events`` bounds the number of
        executed events (a safety valve for runaway protocols in tests).
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time}")
        if self._running:
            raise SimulationError("run_until is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._queue:
                event = self._queue[0]
                if event.time > time:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self._executed += 1
                event.executed = True
                event.callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before t={time}"
                    )
            self._now = time
        finally:
            self._running = False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue is exhausted."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")

    def clear(self) -> None:
        """Drop all pending events (the clock is left unchanged)."""
        self._queue.clear()


@dataclass
class PeriodicTimer:
    """A repeating timer built on a :class:`Simulator`.

    The callback fires every ``period`` seconds starting ``period`` (or
    ``first_delay``) from :meth:`start`.  The timer stops rescheduling once
    :meth:`stop` is called.
    """

    sim: Simulator
    period: float
    callback: Callable[[], None]
    label: str = ""
    _event: Event | None = field(default=None, repr=False)
    _active: bool = field(default=False, repr=False)

    def start(self, first_delay: float | None = None) -> None:
        """Arm the timer; the first firing is after ``first_delay`` (default:
        one full period)."""
        if self.period <= 0:
            raise SimulationError(f"period must be positive (got {self.period})")
        self._active = True
        delay = self.period if first_delay is None else first_delay
        self._event = self.sim.schedule(delay, self._fire, label=self.label)

    def stop(self) -> None:
        """Disarm the timer; a pending firing is cancelled."""
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def active(self) -> bool:
        return self._active

    def _fire(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self._event = self.sim.schedule(self.period, self._fire, label=self.label)


def format_time(t: float) -> str:
    """Render a simulation timestamp for traces, e.g. ``12.3456s``."""
    return f"{t:.4f}s"


__all__ = [
    "Event",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "format_time",
]
