"""Discrete-event simulation engine.

The engine is a classic calendar loop: a binary heap of ``(time, seq,
event)`` tuples.  The monotonically increasing sequence number breaks
ties deterministically in insertion order, which makes every simulation
run exactly reproducible for a given seed and schedule of calls.

Performance notes (this is the hottest loop in the repository — every
benchmark, experiment, and chaos run funnels through it):

* Heap entries are plain tuples, so ``heapq`` comparisons run entirely in
  C on ``(float, int)`` prefixes instead of calling a generated dataclass
  ``__lt__`` that builds two tuples per comparison.
* :class:`Event` is a ``__slots__`` handle — no instance ``__dict__`` to
  allocate or walk.
* ``pending_events`` is an O(1) read of a live counter maintained on
  schedule/cancel/pop (it used to scan the whole queue per call).
* Cancellation stays O(1) (lazy deletion), but the engine now *compacts*
  the heap when cancelled entries exceed half the queue (above a small
  floor), so cancel-heavy workloads no longer drag dead weight through
  every subsequent heap operation.

Nothing in the engine knows about networks or processes; those layers are
built on top (see :mod:`repro.sim.network` and :mod:`repro.sim.process`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

#: Compaction trigger: rebuild the heap once more than half of at least
#: this many entries are cancelled.  The floor keeps tiny queues from
#: compacting constantly; the fraction bounds amortized cost at O(1) per
#: cancellation.
_COMPACT_MIN_DEAD = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback handle.

    The heap orders entries by ``(time, seq)`` tuple keys; the event
    object itself is never compared.  ``cancelled`` supports O(1)
    cancellation: the event stays in the heap but is skipped when popped.
    ``executed`` is set by the engine once the callback has run, so holders
    of an event reference (e.g. a process's timer list) can tell a fired
    one-shot from a still-pending one and release it.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "executed", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        label: str = "",
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.executed = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def finished(self) -> bool:
        """True once the event can never fire (again): cancelled or run."""
        return self.cancelled or self.executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "executed" if self.executed else "pending"
        return f"<Event t={self.time} seq={self.seq} {self.label!r} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run_until(10.0)

    The simulator clock starts at ``0.0`` and only advances when events are
    executed.  Callbacks may schedule further events (at or after the
    current time).
    """

    __slots__ = ("_queue", "_seq", "_now", "_executed", "_running", "_live", "_dead")

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._seq: Iterator[int] = itertools.count()
        self._now = 0.0
        self._executed = 0
        self._running = False
        self._live = 0  # scheduled, not cancelled, not yet popped
        self._dead = 0  # cancelled entries still sitting in the heap

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        seq = next(self._seq)
        event = Event(time, seq, callback, label, self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = next(self._seq)
        event = Event(time, seq, callback, label, self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def inject_at(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``time`` with an *explicit* sequence
        number instead of the next counter value.

        This is the replay primitive of the live runtime: a recorded run
        logs the ``(time, seq)`` of every ingress frame event, and replay
        re-injects each frame at its recorded coordinates (after
        :meth:`reserve_seqs` has fenced those numbers off from normal
        allocation), reproducing the exact heap order of the original
        execution.  The caller owns seq uniqueness — colliding with a
        live event's seq at the same time would make heap order compare
        the Event objects themselves.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot inject at t={time} before now={self._now}"
            )
        event = Event(time, seq, callback, label, self)
        heapq.heappush(self._queue, (time, seq, event))
        self._live += 1
        return event

    def reserve_seqs(self, seqs: Iterable[int]) -> None:
        """Fence the given sequence numbers off from normal allocation.

        After this call, :meth:`schedule`/:meth:`schedule_at` skip every
        reserved value, leaving them for :meth:`inject_at`.  Must be
        called before any events are scheduled past the smallest reserved
        value — reserving an already-issued seq raises.
        """
        reserved = frozenset(seqs)
        if not reserved:
            return
        counter = self._seq
        probe = next(counter)
        if any(seq < probe for seq in reserved):
            raise SimulationError(
                f"cannot reserve already-issued seqs (next={probe})"
            )

        def skipping(first: int) -> Iterator[int]:
            value = first
            while True:
                if value not in reserved:
                    yield value
                value = next(counter)

        self._seq = skipping(probe)

    def _note_cancelled(self) -> None:
        """Account for one cancellation; compact when dead weight piles up."""
        self._live -= 1
        self._dead += 1
        if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (lazy-deletion cleanup)."""
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._dead = 0

    def next_event_time(self) -> float | None:
        """Timestamp of the earliest live event, or ``None`` when the queue
        holds nothing that can still fire.

        Cancelled entries encountered at the head are popped eagerly (they
        are dead weight anyway), so the peek stays amortized O(1).  The
        live runtime's pacer uses this to sleep exactly until the next
        protocol deadline instead of polling."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._dead -= 1
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            event = pop(queue)[2]
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            self._now = event.time
            self._executed += 1
            event.executed = True
            event.callback()
            return True
        return False

    def run_until(self, time: float, max_events: int | None = None) -> None:
        """Run events with timestamps ``<= time``.

        The clock is advanced to exactly ``time`` when the queue drains or
        only later events remain.  ``max_events`` bounds the number of
        executed events (a safety valve for runaway protocols in tests).
        """
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time}")
        if self._running:
            raise SimulationError("run_until is not reentrant")
        self._running = True
        pop = heapq.heappop
        try:
            executed = 0
            queue = self._queue
            while queue:
                if queue[0][0] > time:
                    break
                event = pop(queue)[2]
                if event.cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                self._now = event.time
                self._executed += 1
                event.executed = True
                event.callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before t={time}"
                    )
                queue = self._queue  # compaction may have rebound the list
            self._now = time
        finally:
            self._running = False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue is exhausted."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")

    def clear(self) -> None:
        """Drop all pending events (the clock is left unchanged)."""
        for entry in self._queue:
            # detach so a later cancel() of a dropped handle cannot skew
            # the live/dead accounting of events no longer in the heap
            entry[2]._sim = None
        self._queue.clear()
        self._live = 0
        self._dead = 0


@dataclass(slots=True)
class PeriodicTimer:
    """A repeating timer built on a :class:`Simulator`.

    The callback fires every ``period`` seconds starting ``period`` (or
    ``first_delay``) from :meth:`start`.  The timer stops rescheduling once
    :meth:`stop` is called.
    """

    sim: Simulator
    period: float
    callback: Callable[[], None]
    label: str = ""
    _event: Event | None = field(default=None, repr=False)
    _active: bool = field(default=False, repr=False)

    def start(self, first_delay: float | None = None) -> None:
        """Arm the timer; the first firing is after ``first_delay`` (default:
        one full period)."""
        if self.period <= 0:
            raise SimulationError(f"period must be positive (got {self.period})")
        self._active = True
        delay = self.period if first_delay is None else first_delay
        self._event = self.sim.schedule(delay, self._fire, label=self.label)

    def stop(self) -> None:
        """Disarm the timer; a pending firing is cancelled."""
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def active(self) -> bool:
        return self._active

    def _fire(self) -> None:
        if not self._active:
            return
        self.callback()
        if self._active:
            self._event = self.sim.schedule(self.period, self._fire, label=self.label)


def format_time(t: float) -> str:
    """Render a simulation timestamp for traces, e.g. ``12.3456s``."""
    return f"{t:.4f}s"


__all__ = [
    "Event",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "format_time",
]
