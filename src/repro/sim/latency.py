"""Message latency models.

A latency model maps a ``(sender, receiver)`` pair to a one-way delay for a
particular message.  Models draw jitter from a named RNG stream so that the
sequence of draws — and hence the entire simulation — is reproducible.
"""

from __future__ import annotations

from typing import Hashable, Protocol

import numpy as np


class LatencyModel(Protocol):
    """Anything that can produce a per-message one-way delay in seconds."""

    def sample(self, sender: Hashable, receiver: Hashable) -> float:
        """Return the delay for one message from ``sender`` to ``receiver``."""
        ...


class FixedLatency:
    """A constant one-way delay for every message."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative (got {delay})")
        self.delay = delay

    def sample(self, sender: Hashable, receiver: Hashable) -> float:
        return self.delay


class UniformLatency:
    """Uniformly distributed delay in ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: np.random.Generator) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high (got {low}, {high})")
        self.low = low
        self.high = high
        self._rng = rng

    def sample(self, sender: Hashable, receiver: Hashable) -> float:
        return float(self._rng.uniform(self.low, self.high))


class LogNormalLatency:
    """Log-normal delay with a hard floor — a heavy-tailed WAN-ish model.

    ``median`` is the median delay; ``sigma`` controls the tail.  A floor of
    ``minimum`` keeps pathological near-zero draws from reordering the
    conceptual wire (FIFO is enforced by the network regardless).
    """

    def __init__(
        self,
        median: float,
        sigma: float,
        rng: np.random.Generator,
        minimum: float = 1e-4,
    ) -> None:
        if median <= 0 or sigma < 0:
            raise ValueError("median must be > 0 and sigma >= 0")
        self.median = median
        self.sigma = sigma
        self.minimum = minimum
        self._rng = rng

    def sample(self, sender: Hashable, receiver: Hashable) -> float:
        draw = float(self._rng.lognormal(mean=np.log(self.median), sigma=self.sigma))
        return max(self.minimum, draw)


class PairwiseLatency:
    """Different latency models for specific sender/receiver pairs.

    Useful for mixed clusters (e.g. two LAN sites joined by a WAN link).
    Unlisted pairs use the ``default`` model.
    """

    def __init__(self, default: LatencyModel) -> None:
        self.default = default
        self._overrides: dict[tuple[Hashable, Hashable], LatencyModel] = {}

    def set_pair(
        self,
        sender: Hashable,
        receiver: Hashable,
        model: LatencyModel,
        symmetric: bool = True,
    ) -> None:
        self._overrides[(sender, receiver)] = model
        if symmetric:
            self._overrides[(receiver, sender)] = model

    def sample(self, sender: Hashable, receiver: Hashable) -> float:
        model = self._overrides.get((sender, receiver), self.default)
        return model.sample(sender, receiver)


def lan_latency(rng: np.random.Generator) -> UniformLatency:
    """A typical switched-LAN delay: 0.1–0.5 ms."""
    return UniformLatency(0.0001, 0.0005, rng)


def wan_latency(rng: np.random.Generator) -> LogNormalLatency:
    """A typical WAN delay: ~30 ms median with a heavy tail."""
    return LogNormalLatency(median=0.030, sigma=0.35, rng=rng, minimum=0.005)


__all__ = [
    "FixedLatency",
    "LatencyModel",
    "LogNormalLatency",
    "PairwiseLatency",
    "UniformLatency",
    "lan_latency",
    "wan_latency",
]
