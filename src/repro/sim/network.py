"""Simulated message-passing network.

Semantics, chosen to match what the paper's GCS assumes of its transport:

* **FIFO per ordered pair** — delivery time is forced to be monotone per
  ``(sender, receiver)`` even when the latency model draws out of order.
* **Reliable while connected** — a message is delivered iff the topology
  permits ``sender -> receiver`` *both* when it is sent and when it would
  arrive, and the receiving process is up on arrival.  Messages in flight
  across a partition onset are therefore lost, exactly the window in which
  the GCS's view-change flush has to reconcile state.
* **No duplication, no corruption** — losses only, per the above.

The chaos engine (:mod:`repro.chaos`) can deliberately weaken the last two
guarantees through :meth:`Network.set_duplication` (a message may be
delivered twice) and :meth:`Network.set_reordering` (a message may bypass
the per-pair FIFO clamp with a bounded extra delay), and can inflate
individual links via :meth:`Network.set_link_delay` — the gray-failure
vocabulary Section 4's risk analysis worries about but hand-written fault
schedules could not express.  All adversity draws come from a dedicated
seeded ``chaos_rng`` stream, so a chaotic run stays bit-reproducible.

The network also keeps per-node send/receive accounting by message *kind*,
which experiment E2 (server load vs. configuration parameters) reads, and
per-*reason* drop counters (``random-loss``, ``disconnected-in-flight``,
``receiver-down``, ...) so chaos runs and tests can assert why messages
died rather than only how many.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    import numpy as np

from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.topology import NodeId, Topology
from repro.sim.trace import TraceLog


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    ``kind`` is a short string used for accounting and tracing (for example
    ``"heartbeat"``, ``"sequenced"``, ``"response"``); ``size`` is an
    abstract byte count used by the load metrics.  Slotted: the network
    allocates one of these per send, making it one of the hottest
    allocation sites in the simulator.
    """

    sender: NodeId
    receiver: NodeId
    payload: Any
    kind: str
    size: int
    send_time: float
    msg_id: int


@dataclass(slots=True)
class LinkStats:
    sent: int = 0
    received: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    dropped_by_reason: dict[str, int] = field(default_factory=dict)

    def record_drop(self, reason: str) -> None:
        self.dropped += 1
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1


class Network:
    """Connects :class:`~repro.sim.process.Process` instances through the
    simulator.

    Processes register themselves via :meth:`attach`; messages are scheduled
    as simulator events with a latency drawn from ``latency_model``.
    """

    __slots__ = (
        "sim",
        "topology",
        "latency_model",
        "trace",
        "loss_probability",
        "_loss_rng",
        "_chaos_rng",
        "duplicate_probability",
        "reorder_probability",
        "reorder_window",
        "_link_extra_delay",
        "total_duplicated",
        "total_reordered",
        "_handlers",
        "_is_up",
        "_msg_ids",
        "_last_delivery",
        "_last_send",
        "_stats_sent",
        "_stats_received",
        "total_sent",
        "total_delivered",
        "total_dropped",
        "dropped_by_reason",
    )

    def __init__(
        self,
        sim: Simulator,
        topology: Topology | None = None,
        latency_model: LatencyModel | None = None,
        trace: TraceLog | None = None,
        loss_probability: float = 0.0,
        loss_rng: np.random.Generator | None = None,
        chaos_rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if loss_probability > 0.0 and loss_rng is None:
            raise ValueError("a seeded loss_rng is required when losses are on")
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.latency_model = latency_model or FixedLatency(0.001)
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.loss_probability = loss_probability
        self._loss_rng = loss_rng
        # chaos adversity (all off by default; see repro.chaos)
        self._chaos_rng = chaos_rng
        self.duplicate_probability = 0.0
        self.reorder_probability = 0.0
        self.reorder_window = 0.0
        self._link_extra_delay: dict[tuple[NodeId, NodeId], float] = {}
        self.total_duplicated = 0
        self.total_reordered = 0
        self._handlers: dict[NodeId, Callable[[Message], None]] = {}
        self._is_up: dict[NodeId, Callable[[], bool]] = {}
        self._msg_ids = itertools.count()
        self._last_delivery: dict[tuple[NodeId, NodeId], float] = {}
        self._last_send: dict[tuple[NodeId, NodeId], float] = {}
        self._stats_sent: dict[NodeId, dict[str, LinkStats]] = defaultdict(
            lambda: defaultdict(LinkStats)
        )
        self._stats_received: dict[NodeId, dict[str, LinkStats]] = defaultdict(
            lambda: defaultdict(LinkStats)
        )
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0
        self.dropped_by_reason: dict[str, int] = {}

    # ------------------------------------------------------------------
    # chaos adversity controls (all deterministic given chaos_rng's seed)
    # ------------------------------------------------------------------
    def _require_chaos_rng(self) -> None:
        if self._chaos_rng is None:
            raise ValueError(
                "a seeded chaos_rng is required for duplication/reordering"
            )

    def set_duplication(self, probability: float) -> None:
        """Deliver each unicast twice with the given probability (the
        second copy lands shortly after the first, FIFO-exempt)."""
        if not 0.0 <= probability < 1.0:
            raise ValueError("duplicate probability must be in [0, 1)")
        if probability > 0.0:
            self._require_chaos_rng()
        self.duplicate_probability = probability

    def set_reordering(self, probability: float, window: float = 0.05) -> None:
        """With the given probability, delay a message by up to ``window``
        extra seconds *and* exempt it from the per-pair FIFO clamp, so it
        can arrive after messages sent later on the same link."""
        if not 0.0 <= probability < 1.0:
            raise ValueError("reorder probability must be in [0, 1)")
        if window < 0.0:
            raise ValueError("reorder window must be >= 0")
        if probability > 0.0:
            self._require_chaos_rng()
        self.reorder_probability = probability
        self.reorder_window = window

    def set_link_delay(
        self, a: NodeId, b: NodeId, extra: float, symmetric: bool = True
    ) -> None:
        """Add ``extra`` seconds of one-way delay to the ``a -> b`` link
        (a transient congestion spike; pass ``extra=0`` via
        :meth:`clear_link_delay` to lift it)."""
        if extra < 0.0:
            raise ValueError("extra link delay must be >= 0")
        self._link_extra_delay[(a, b)] = extra
        if symmetric:
            self._link_extra_delay[(b, a)] = extra

    def clear_link_delay(self, a: NodeId, b: NodeId, symmetric: bool = True) -> None:
        self._link_extra_delay.pop((a, b), None)
        if symmetric:
            self._link_extra_delay.pop((b, a), None)

    def clear_adversity(self) -> None:
        """Lift every chaos-induced weakening (used by the heal phase)."""
        self.duplicate_probability = 0.0
        self.reorder_probability = 0.0
        self.reorder_window = 0.0
        self._link_extra_delay.clear()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def attach(
        self,
        node: NodeId,
        handler: Callable[[Message], None],
        is_up: Callable[[], bool],
    ) -> None:
        """Register a node's delivery handler and liveness predicate."""
        self._handlers[node] = handler
        self._is_up[node] = is_up
        self.topology.add_node(node)

    def detach(self, node: NodeId) -> None:
        self._handlers.pop(node, None)
        self._is_up.pop(node, None)
        self.topology.remove_node(node)

    @property
    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self._handlers)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        kind: str = "msg",
        size: int = 1,
    ) -> Message:
        """Send one message; returns the :class:`Message` envelope.

        Drops (with accounting) if the topology forbids the send right now.
        Delivery is still conditional on connectivity and receiver liveness
        at arrival time.
        """
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            kind=kind,
            size=size,
            send_time=self.sim.now,
            msg_id=next(self._msg_ids),
        )
        self.total_sent += 1
        self._last_send[(sender, receiver)] = self.sim.now
        sent_stats = self._stats_sent[sender][kind]
        sent_stats.sent += 1
        sent_stats.bytes_sent += size

        if not self.topology.connected(sender, receiver):
            self._drop(message, reason="disconnected-at-send")
            return message
        if (
            self.loss_probability > 0.0
            and sender != receiver
            and self._loss_rng.random() < self.loss_probability
        ):
            self._drop(message, reason="random-loss")
            return message

        latency = self.latency_model.sample(sender, receiver)
        latency += self._link_extra_delay.get((sender, receiver), 0.0)
        arrival = self.sim.now + latency
        reordered = (
            self.reorder_probability > 0.0
            and sender != receiver
            and self._chaos_rng.random() < self.reorder_probability
        )
        key = (sender, receiver)
        if reordered:
            # FIFO-exempt: an extra bounded delay without advancing the
            # pair's monotone clamp, so later sends can overtake this one.
            arrival += float(self._chaos_rng.uniform(0.0, self.reorder_window))
            self.total_reordered += 1
        else:
            # Enforce FIFO per ordered pair.
            previous = self._last_delivery.get(key, -1.0)
            if arrival <= previous:
                arrival = previous + 1e-9
            self._last_delivery[key] = arrival
        self.sim.schedule_at(
            arrival, lambda: self._deliver(message), label=f"deliver:{kind}"
        )
        if (
            self.duplicate_probability > 0.0
            and sender != receiver
            and self._chaos_rng.random() < self.duplicate_probability
        ):
            # the duplicate trails the original and skips the FIFO clamp
            echo = arrival + float(self._chaos_rng.uniform(0.0, 0.002))
            self.total_duplicated += 1
            self.sim.schedule_at(
                echo, lambda: self._deliver(message), label=f"deliver-dup:{kind}"
            )
        return message

    def multicast(
        self,
        sender: NodeId,
        receivers: list[NodeId],
        payload: Any,
        kind: str = "msg",
        size: int = 1,
        include_self: bool = True,
    ) -> None:
        """Send ``payload`` point-to-point to each receiver (no IP multicast
        is assumed; the GCS builds its guarantees above this)."""
        for receiver in receivers:
            if receiver == sender and not include_self:
                continue
            self.send(sender, receiver, payload, kind=kind, size=size)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        receiver = message.receiver
        if not self.topology.connected(message.sender, receiver):
            self._drop(message, reason="disconnected-in-flight")
            return
        is_up = self._is_up.get(receiver)
        handler = self._handlers.get(receiver)
        if handler is None or is_up is None or not is_up():
            self._drop(message, reason="receiver-down")
            return
        self.total_delivered += 1
        stats = self._stats_received[receiver][message.kind]
        stats.received += 1
        stats.bytes_received += message.size
        self.trace.record(
            self.sim.now,
            receiver,
            "net.deliver",
            sender=message.sender,
            kind=message.kind,
        )
        handler(message)

    def _drop(self, message: Message, reason: str) -> None:
        self.total_dropped += 1
        self.dropped_by_reason[reason] = self.dropped_by_reason.get(reason, 0) + 1
        self._stats_sent[message.sender][message.kind].record_drop(reason)
        self.trace.record(
            self.sim.now,
            message.sender,
            "net.drop",
            receiver=message.receiver,
            kind=message.kind,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # accounting (read by experiment E2)
    # ------------------------------------------------------------------
    def dropped_count(
        self, reason: str | None = None, node: NodeId | None = None
    ) -> int:
        """Messages dropped, optionally filtered by drop reason and/or by
        the sending node (chaos oracles assert *why* messages died)."""
        if node is None:
            if reason is None:
                return self.total_dropped
            return self.dropped_by_reason.get(reason, 0)
        stats = self._stats_sent.get(node, {})
        if reason is None:
            return sum(s.dropped for s in stats.values())
        return sum(s.dropped_by_reason.get(reason, 0) for s in stats.values())

    def drop_reasons(self) -> dict[str, int]:
        """All drop reasons seen so far with their counts."""
        return dict(self.dropped_by_reason)

    def sent_count(self, node: NodeId, kind: str | None = None) -> int:
        stats = self._stats_sent.get(node, {})
        if kind is not None:
            return stats[kind].sent if kind in stats else 0
        return sum(s.sent for s in stats.values())

    def received_count(self, node: NodeId, kind: str | None = None) -> int:
        stats = self._stats_received.get(node, {})
        if kind is not None:
            return stats[kind].received if kind in stats else 0
        return sum(s.received for s in stats.values())

    def sent_kind_stats(self, node: NodeId) -> dict[str, tuple[int, int]]:
        """Per-kind ``(frames, abstract_bytes)`` sent by ``node`` — the
        source for the liveness-vs-data traffic split in stats reports
        and the membership bench."""
        return {
            kind: (stats.sent, stats.bytes_sent)
            for kind, stats in self._stats_sent.get(node, {}).items()
        }

    def received_bytes(self, node: NodeId, kind: str | None = None) -> int:
        stats = self._stats_received.get(node, {})
        if kind is not None:
            return stats[kind].bytes_received if kind in stats else 0
        return sum(s.bytes_received for s in stats.values())

    def last_sent_at(self, sender: NodeId, receiver: NodeId) -> float:
        """Simulation time of ``sender``'s most recent send to ``receiver``
        (``-inf`` if it never sent one).  This is transport-level metadata:
        the GCS heartbeat layer uses it to suppress an explicit heartbeat
        to a peer that recent protocol traffic already covers."""
        return self._last_send.get((sender, receiver), float("-inf"))

    def kinds_received(self, node: NodeId) -> dict[str, int]:
        """Per-kind received message counts for ``node``."""
        return {
            kind: stats.received
            for kind, stats in self._stats_received.get(node, {}).items()
        }

    def reset_stats(self) -> None:
        """Zero the accounting (used to exclude warm-up from measurements)."""
        self._stats_sent.clear()
        self._stats_received.clear()
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0
        self.dropped_by_reason.clear()
        self.total_duplicated = 0
        self.total_reordered = 0


__all__ = ["LinkStats", "Message", "Network"]
