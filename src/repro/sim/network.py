"""Simulated message-passing network.

Semantics, chosen to match what the paper's GCS assumes of its transport:

* **FIFO per ordered pair** — delivery time is forced to be monotone per
  ``(sender, receiver)`` even when the latency model draws out of order.
* **Reliable while connected** — a message is delivered iff the topology
  permits ``sender -> receiver`` *both* when it is sent and when it would
  arrive, and the receiving process is up on arrival.  Messages in flight
  across a partition onset are therefore lost, exactly the window in which
  the GCS's view-change flush has to reconcile state.
* **No duplication, no corruption** — losses only, per the above.

The network also keeps per-node send/receive accounting by message *kind*,
which experiment E2 (server load vs. configuration parameters) reads.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.engine import Simulator
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.topology import NodeId, Topology
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class Message:
    """One network message.

    ``kind`` is a short string used for accounting and tracing (for example
    ``"heartbeat"``, ``"sequenced"``, ``"response"``); ``size`` is an
    abstract byte count used by the load metrics.
    """

    sender: NodeId
    receiver: NodeId
    payload: Any
    kind: str
    size: int
    send_time: float
    msg_id: int


@dataclass
class LinkStats:
    sent: int = 0
    received: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class Network:
    """Connects :class:`~repro.sim.process.Process` instances through the
    simulator.

    Processes register themselves via :meth:`attach`; messages are scheduled
    as simulator events with a latency drawn from ``latency_model``.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology | None = None,
        latency_model: LatencyModel | None = None,
        trace: TraceLog | None = None,
        loss_probability: float = 0.0,
        loss_rng=None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if loss_probability > 0.0 and loss_rng is None:
            raise ValueError("a seeded loss_rng is required when losses are on")
        self.sim = sim
        self.topology = topology if topology is not None else Topology()
        self.latency_model = latency_model or FixedLatency(0.001)
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.loss_probability = loss_probability
        self._loss_rng = loss_rng
        self._handlers: dict[NodeId, Callable[[Message], None]] = {}
        self._is_up: dict[NodeId, Callable[[], bool]] = {}
        self._msg_ids = itertools.count()
        self._last_delivery: dict[tuple[NodeId, NodeId], float] = {}
        self._last_send: dict[tuple[NodeId, NodeId], float] = {}
        self._stats_sent: dict[NodeId, dict[str, LinkStats]] = defaultdict(
            lambda: defaultdict(LinkStats)
        )
        self._stats_received: dict[NodeId, dict[str, LinkStats]] = defaultdict(
            lambda: defaultdict(LinkStats)
        )
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def attach(
        self,
        node: NodeId,
        handler: Callable[[Message], None],
        is_up: Callable[[], bool],
    ) -> None:
        """Register a node's delivery handler and liveness predicate."""
        self._handlers[node] = handler
        self._is_up[node] = is_up
        self.topology.add_node(node)

    def detach(self, node: NodeId) -> None:
        self._handlers.pop(node, None)
        self._is_up.pop(node, None)
        self.topology.remove_node(node)

    @property
    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self._handlers)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        sender: NodeId,
        receiver: NodeId,
        payload: Any,
        kind: str = "msg",
        size: int = 1,
    ) -> Message:
        """Send one message; returns the :class:`Message` envelope.

        Drops (with accounting) if the topology forbids the send right now.
        Delivery is still conditional on connectivity and receiver liveness
        at arrival time.
        """
        message = Message(
            sender=sender,
            receiver=receiver,
            payload=payload,
            kind=kind,
            size=size,
            send_time=self.sim.now,
            msg_id=next(self._msg_ids),
        )
        self.total_sent += 1
        self._last_send[(sender, receiver)] = self.sim.now
        sent_stats = self._stats_sent[sender][kind]
        sent_stats.sent += 1
        sent_stats.bytes_sent += size

        if not self.topology.connected(sender, receiver):
            self._drop(message, reason="disconnected-at-send")
            return message
        if (
            self.loss_probability > 0.0
            and sender != receiver
            and self._loss_rng.random() < self.loss_probability
        ):
            self._drop(message, reason="random-loss")
            return message

        latency = self.latency_model.sample(sender, receiver)
        arrival = self.sim.now + latency
        # Enforce FIFO per ordered pair.
        key = (sender, receiver)
        previous = self._last_delivery.get(key, -1.0)
        if arrival <= previous:
            arrival = previous + 1e-9
        self._last_delivery[key] = arrival
        self.sim.schedule_at(
            arrival, lambda: self._deliver(message), label=f"deliver:{kind}"
        )
        return message

    def multicast(
        self,
        sender: NodeId,
        receivers: list[NodeId],
        payload: Any,
        kind: str = "msg",
        size: int = 1,
        include_self: bool = True,
    ) -> None:
        """Send ``payload`` point-to-point to each receiver (no IP multicast
        is assumed; the GCS builds its guarantees above this)."""
        for receiver in receivers:
            if receiver == sender and not include_self:
                continue
            self.send(sender, receiver, payload, kind=kind, size=size)

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        receiver = message.receiver
        if not self.topology.connected(message.sender, receiver):
            self._drop(message, reason="disconnected-in-flight")
            return
        is_up = self._is_up.get(receiver)
        handler = self._handlers.get(receiver)
        if handler is None or is_up is None or not is_up():
            self._drop(message, reason="receiver-down")
            return
        self.total_delivered += 1
        stats = self._stats_received[receiver][message.kind]
        stats.received += 1
        stats.bytes_received += message.size
        self.trace.record(
            self.sim.now,
            receiver,
            "net.deliver",
            sender=message.sender,
            kind=message.kind,
        )
        handler(message)

    def _drop(self, message: Message, reason: str) -> None:
        self.total_dropped += 1
        self._stats_sent[message.sender][message.kind].dropped += 1
        self.trace.record(
            self.sim.now,
            message.sender,
            "net.drop",
            receiver=message.receiver,
            kind=message.kind,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # accounting (read by experiment E2)
    # ------------------------------------------------------------------
    def sent_count(self, node: NodeId, kind: str | None = None) -> int:
        stats = self._stats_sent.get(node, {})
        if kind is not None:
            return stats[kind].sent if kind in stats else 0
        return sum(s.sent for s in stats.values())

    def received_count(self, node: NodeId, kind: str | None = None) -> int:
        stats = self._stats_received.get(node, {})
        if kind is not None:
            return stats[kind].received if kind in stats else 0
        return sum(s.received for s in stats.values())

    def received_bytes(self, node: NodeId, kind: str | None = None) -> int:
        stats = self._stats_received.get(node, {})
        if kind is not None:
            return stats[kind].bytes_received if kind in stats else 0
        return sum(s.bytes_received for s in stats.values())

    def last_sent_at(self, sender: NodeId, receiver: NodeId) -> float:
        """Simulation time of ``sender``'s most recent send to ``receiver``
        (``-inf`` if it never sent one).  This is transport-level metadata:
        the GCS heartbeat layer uses it to suppress an explicit heartbeat
        to a peer that recent protocol traffic already covers."""
        return self._last_send.get((sender, receiver), float("-inf"))

    def kinds_received(self, node: NodeId) -> dict[str, int]:
        """Per-kind received message counts for ``node``."""
        return {
            kind: stats.received
            for kind, stats in self._stats_received.get(node, {}).items()
        }

    def reset_stats(self) -> None:
        """Zero the accounting (used to exclude warm-up from measurements)."""
        self._stats_sent.clear()
        self._stats_received.clear()
        self.total_sent = 0
        self.total_delivered = 0
        self.total_dropped = 0


__all__ = ["LinkStats", "Message", "Network"]
