"""Process abstraction: a node with an inbox, timers and a crash lifecycle.

A :class:`Process` is the unit of failure in the reproduction.  Crashing a
process cancels all of its timers and makes the network drop messages
addressed to it; recovering gives it a fresh *incarnation number* so that
higher layers (the GCS membership) can distinguish a restarted process from
the old one.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.sim.engine import Event, PeriodicTimer, Simulator
from repro.sim.network import Message, Network
from repro.sim.topology import NodeId


class ProcessState(enum.Enum):
    UP = "up"
    CRASHED = "crashed"


class Process:
    """Base class for simulated nodes.

    Subclasses override :meth:`on_message` (and optionally :meth:`on_start`,
    :meth:`on_crash`, :meth:`on_recover`).  All interaction with the world
    goes through :meth:`send`, :meth:`set_timer` and
    :meth:`set_periodic_timer`, which are automatically neutered while the
    process is crashed.
    """

    # Slotted: the base attributes are touched on every message delivery
    # and timer fire.  Subclasses without __slots__ still get a __dict__
    # for their own attributes; the hot base fields stay slot-backed.
    __slots__ = (
        "node_id",
        "network",
        "sim",
        "state",
        "incarnation",
        "dispatch_delay",
        "_muted",
        "_timers",
        "_periodic",
    )

    def __init__(self, node_id: NodeId, network: Network) -> None:
        self.node_id = node_id
        self.network = network
        self.sim: Simulator = network.sim
        self.state = ProcessState.UP
        self.incarnation = 0
        self.dispatch_delay = 0.0
        self._muted = False
        self._timers: list[Event] = []
        self._periodic: list[PeriodicTimer] = []
        network.attach(node_id, self._receive, self.is_up)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def is_up(self) -> bool:
        return self.state is ProcessState.UP

    def start(self) -> None:
        """Run the subclass start hook (call once after construction)."""
        self.on_start()

    def crash(self) -> None:
        """Fail-stop: all timers die, future deliveries are dropped."""
        if self.state is ProcessState.CRASHED:
            return
        self.state = ProcessState.CRASHED
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for periodic in self._periodic:
            periodic.stop()
        self._periodic.clear()
        self._muted = False
        self.network.trace.record(self.sim.now, self.node_id, "process.crash")
        self.on_crash()

    def mute_sends(self) -> None:
        """Suppress all outgoing traffic until the process crashes.

        Used by crash-at-hook fault injection: the hook wants the process
        dead *at this instant*, but tearing it down inline would make the
        rest of the currently-running handler blow up on ``set_timer``.
        Instead the hook mutes output and schedules the real crash as a
        zero-delay event — the handler finishes harmlessly, and nothing it
        tried to say after the hook point ever reaches the wire."""
        self._muted = True

    def recover(self) -> None:
        """Restart with a new incarnation; volatile state is the subclass's
        responsibility to reset in :meth:`on_recover`."""
        if self.state is ProcessState.UP:
            return
        self.state = ProcessState.UP
        self.incarnation += 1
        self.network.trace.record(
            self.sim.now, self.node_id, "process.recover", incarnation=self.incarnation
        )
        self.on_recover()

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(
        self, receiver: NodeId, payload: Any, kind: str = "msg", size: int = 1
    ) -> None:
        """Send a point-to-point message (silently ignored while crashed)."""
        if not self.is_up() or self._muted:
            return
        self.network.send(self.node_id, receiver, payload, kind=kind, size=size)

    def multicast(
        self,
        receivers: list[NodeId],
        payload: Any,
        kind: str = "msg",
        size: int = 1,
        include_self: bool = True,
    ) -> None:
        if not self.is_up() or self._muted:
            return
        self.network.multicast(
            self.node_id,
            receivers,
            payload,
            kind=kind,
            size=size,
            include_self=include_self,
        )

    def _receive(self, message: Message) -> None:
        if not self.is_up():
            return
        if self.dispatch_delay > 0.0:
            self._defer(lambda: self.on_message(message))
            return
        self.on_message(message)

    # ------------------------------------------------------------------
    # gray failure: slowed dispatch
    # ------------------------------------------------------------------
    def set_dispatch_delay(self, delay: float) -> None:
        """Model a gray failure: the process is alive but slow — every
        message handler and timer callback runs ``delay`` seconds after it
        normally would.  ``0.0`` restores normal speed."""
        if delay < 0.0:
            raise ValueError("dispatch delay must be >= 0")
        self.dispatch_delay = delay
        if delay > 0.0:
            self.network.trace.record(
                self.sim.now, self.node_id, "process.slowdown", delay=delay
            )
        else:
            self.network.trace.record(self.sim.now, self.node_id, "process.speed_restored")

    def _defer(self, callback: Callable[[], None]) -> None:
        self.sim.schedule(
            self.dispatch_delay,
            lambda: self.is_up() and callback(),
            label=f"slow:{self.node_id}",
        )

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def set_timer(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """One-shot timer; auto-cancelled if the process crashes first."""
        if not self.is_up():
            raise RuntimeError(f"{self.node_id} is crashed; cannot set timer")

        def guarded() -> None:
            if not self.is_up():
                return
            if self.dispatch_delay > 0.0:
                self._defer(callback)
                return
            callback()

        event = self.sim.schedule(delay, guarded, label=label or f"{self.node_id}")
        self._timers.append(event)
        if len(self._timers) > 256:
            # Evict timers that can never fire again — both cancelled ones
            # and already-fired one-shots (``executed`` is stamped by the
            # engine).  Filtering on ``cancelled`` alone kept every fired
            # event forever, an unbounded leak on request-heavy long runs.
            self._timers = [t for t in self._timers if not t.finished]
        return event

    def set_periodic_timer(
        self,
        period: float,
        callback: Callable[[], None],
        label: str = "",
        first_delay: float | None = None,
    ) -> PeriodicTimer:
        """Repeating timer; stops when the process crashes."""
        if not self.is_up():
            raise RuntimeError(f"{self.node_id} is crashed; cannot set timer")

        def guarded() -> None:
            if not self.is_up():
                return
            if self.dispatch_delay > 0.0:
                self._defer(callback)
                return
            callback()

        timer = PeriodicTimer(
            sim=self.sim,
            period=period,
            callback=guarded,
            label=label or f"{self.node_id}",
        )
        timer.start(first_delay=first_delay)
        self._periodic.append(timer)
        return timer

    def trace(self, category: str, **detail: Any) -> None:
        """Record a trace event attributed to this process."""
        self.network.trace.record(self.sim.now, self.node_id, category, **detail)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the process is started."""

    def on_message(self, message: Message) -> None:
        """Called for every delivered message while the process is up."""
        raise NotImplementedError

    def on_crash(self) -> None:
        """Called when the process crashes (after timers are cancelled)."""

    def on_recover(self) -> None:
        """Called when the process recovers (new incarnation)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.node_id} {self.state.value}>"


__all__ = ["Process", "ProcessState"]
