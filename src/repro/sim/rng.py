"""Named, seeded random-number streams.

Every source of randomness in the reproduction (latency jitter, fault
schedules, workload behaviour, ...) draws from its own named stream derived
from a single root seed.  Adding a new consumer therefore never perturbs the
draws of existing ones, which keeps experiment results stable as the code
evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent named :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> lat = rngs.stream("latency")
    >>> lat is rngs.stream("latency")
    True
    >>> rngs.stream("faults") is lat
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                _derive_seed(self.seed, name)
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose streams are independent of this
        registry's (used to give each experiment repetition its own world)."""
        return RngRegistry(seed=_derive_seed(self.seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams so the next use re-creates them from scratch."""
        self._streams.clear()


__all__ = ["RngRegistry"]
