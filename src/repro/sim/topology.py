"""Connectivity topology: who can currently talk to whom.

The paper's risk analysis distinguishes *transitive* connectivity (typical
of a LAN: partitions split the system into clean components) from
*non-transitive* connectivity (occasionally seen in WANs: two servers cannot
talk to each other yet both can talk to the client).  The second pattern is
exactly the one that lets a session group split with two sides each
believing it owns the client (Section 4, third bullet).  The topology layer
therefore supports both whole-set partitions and individual directed link
cuts.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

NodeId = Hashable


class Topology:
    """Mutable connectivity among node identifiers.

    By default every pair of nodes is connected.  Connectivity is reduced
    either by *partitioning* (grouping nodes into components; traffic only
    flows within a component) or by cutting individual directed links.  Both
    mechanisms compose: a link is usable only if the partition allows it and
    it is not individually cut.

    The structure is intentionally simple — experiments mutate it over time
    through :mod:`repro.faults`.
    """

    def __init__(self, nodes: Iterable[NodeId] = ()) -> None:
        self._nodes: set[NodeId] = set(nodes)
        self._component_of: dict[NodeId, int] = {}
        self._cut_links: set[tuple[NodeId, NodeId]] = set()
        self._down: set[NodeId] = set()
        self._generation = 0

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        self._nodes.add(node)

    def remove_node(self, node: NodeId) -> None:
        self._nodes.discard(node)
        self._component_of.pop(node, None)
        self._down.discard(node)
        self._cut_links = {
            (a, b) for (a, b) in self._cut_links if a != node and b != node
        }
        self._generation += 1

    @property
    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self._nodes)

    @property
    def generation(self) -> int:
        """Bumped on every connectivity change; lets caches invalidate."""
        return self._generation

    # ------------------------------------------------------------------
    # node up/down (process crash is modelled in Process; *network* down
    # here models an unplugged machine whose packets vanish)
    # ------------------------------------------------------------------
    def set_node_down(self, node: NodeId, down: bool = True) -> None:
        if down:
            self._down.add(node)
        else:
            self._down.discard(node)
        self._generation += 1

    def is_node_down(self, node: NodeId) -> bool:
        return node in self._down

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, *components: Iterable[NodeId]) -> None:
        """Split the listed nodes into components.

        Nodes not mentioned in any component keep full connectivity with
        each other but are isolated from all partitioned nodes only if the
        partitioned node's component excludes them — i.e. unmentioned nodes
        form one implicit extra component.
        """
        self._component_of = {}
        for index, component in enumerate(components):
            for node in component:
                self._component_of[node] = index
        self._generation += 1

    def heal_partition(self) -> None:
        """Remove all partition constraints (cut links remain cut)."""
        self._component_of = {}
        self._generation += 1

    def _same_component(self, a: NodeId, b: NodeId) -> bool:
        ca = self._component_of.get(a, -1)
        cb = self._component_of.get(b, -1)
        return ca == cb

    # ------------------------------------------------------------------
    # individual link cuts (directed; cut both directions for a symmetric
    # failure).  These create non-transitive connectivity.
    # ------------------------------------------------------------------
    def cut_link(self, a: NodeId, b: NodeId, symmetric: bool = True) -> None:
        self._cut_links.add((a, b))
        if symmetric:
            self._cut_links.add((b, a))
        self._generation += 1

    def restore_link(self, a: NodeId, b: NodeId, symmetric: bool = True) -> None:
        self._cut_links.discard((a, b))
        if symmetric:
            self._cut_links.discard((b, a))
        self._generation += 1

    def restore_all_links(self) -> None:
        self._cut_links.clear()
        self._generation += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def connected(self, sender: NodeId, receiver: NodeId) -> bool:
        """Can a message sent now by ``sender`` reach ``receiver``?"""
        if sender == receiver:
            return sender not in self._down
        if sender in self._down or receiver in self._down:
            return False
        if not self._same_component(sender, receiver):
            return False
        return (sender, receiver) not in self._cut_links

    def component_members(self, node: NodeId) -> frozenset[NodeId]:
        """All nodes bidirectionally connected to ``node`` (direct links)."""
        return frozenset(
            other
            for other in self._nodes
            if self.connected(node, other) and self.connected(other, node)
        )

    def is_transitive(self) -> bool:
        """True when current connectivity is an equivalence relation.

        Non-transitive states arise from asymmetric/selective link cuts and
        are the WAN pattern from the paper's Section 4.
        """
        nodes = [n for n in self._nodes if n not in self._down]
        for a in nodes:
            for b in nodes:
                if not self.connected(a, b):
                    continue
                for c in nodes:
                    if self.connected(b, c) and not self.connected(a, c):
                        return False
        return True

    def snapshot(self) -> dict:
        """A JSON-friendly dump used by traces and debugging."""
        return {
            "nodes": sorted(map(str, self._nodes)),
            "down": sorted(map(str, self._down)),
            "components": {str(n): c for n, c in self._component_of.items()},
            "cut_links": sorted((str(a), str(b)) for a, b in self._cut_links),
        }


__all__ = ["NodeId", "Topology"]
