"""Structured trace log.

Every interesting action in the stack (message delivery, view installation,
primary takeover, ...) can be recorded as a :class:`TraceEvent`.  Traces are
the raw material for the experiment metrics and make failed property tests
debuggable: a test can dump the interleaving that broke an invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: time, originating node, category, and details."""

    time: float
    node: Any
    category: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        details = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.4f}s] {self.node} {self.category} {details}"


class TraceLog:
    """An append-only log of :class:`TraceEvent` with simple querying.

    Recording can be disabled wholesale (``enabled=False``) or filtered to a
    set of categories, which keeps long benchmark runs cheap.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Iterable[str] | None = None,
        capacity: int | None = None,
    ) -> None:
        self.enabled = enabled
        self._categories = set(categories) if categories is not None else None
        self._capacity = capacity
        self._events: list[TraceEvent] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def record(self, time: float, node: Any, category: str, **detail: Any) -> None:
        """Append an event (no-op when disabled or category filtered out)."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        event = TraceEvent(time=time, node=node, category=category, detail=detail)
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            del self._events[: len(self._events) - self._capacity]
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` synchronously for every future event."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def select(
        self,
        category: str | None = None,
        node: Any | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TraceEvent]:
        """Return events matching all given filters."""
        result: list[TraceEvent] = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if node is not None and event.node != node:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            result.append(event)
        return result

    def count(self, category: str) -> int:
        return sum(1 for event in self._events if event.category == category)

    def clear(self) -> None:
        self._events.clear()

    def dump(self, limit: int | None = None) -> str:  # pragma: no cover
        """Render the (tail of the) trace for debugging."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(str(event) for event in events)


__all__ = ["TraceEvent", "TraceLog"]
