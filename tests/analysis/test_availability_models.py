"""Unit and property tests for the Section-4 analytic models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.availability import (
    context_loss_probability,
    expected_duplicate_responses,
    expected_lost_updates_per_failover,
    per_server_load,
    takeover_gap_estimate,
    total_outage_probability,
)
from repro.analysis.montecarlo import MonteCarlo


class TestContextLoss:
    def test_known_value(self):
        # lambda=0.1, T=1, s=1: 1 - e^-0.1 ~ 0.09516
        assert context_loss_probability(0.1, 1.0, 1) == pytest.approx(
            1 - math.exp(-0.1)
        )

    def test_monotone_decreasing_in_group_size(self):
        values = [context_loss_probability(0.1, 1.0, s) for s in range(1, 6)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_monotone_increasing_in_period(self):
        values = [
            context_loss_probability(0.1, t, 2) for t in (0.1, 0.5, 1.0, 2.0)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_zero_failure_rate(self):
        assert context_loss_probability(0.0, 1.0, 3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            context_loss_probability(0.1, 0.0, 1)
        with pytest.raises(ValueError):
            context_loss_probability(0.1, 1.0, 0)
        with pytest.raises(ValueError):
            context_loss_probability(-0.1, 1.0, 1)

    @given(
        rate=st.floats(min_value=0.0, max_value=10.0),
        period=st.floats(min_value=0.001, max_value=10.0),
        size=st.integers(min_value=1, max_value=10),
    )
    def test_is_a_probability(self, rate, period, size):
        p = context_loss_probability(rate, period, size)
        assert 0.0 <= p <= 1.0

    @given(
        rate=st.floats(min_value=0.001, max_value=1.0),
        period=st.floats(min_value=0.01, max_value=5.0),
        size=st.integers(min_value=1, max_value=6),
    )
    def test_adding_a_backup_never_hurts(self, rate, period, size):
        assert context_loss_probability(
            rate, period, size + 1
        ) <= context_loss_probability(rate, period, size)


class TestTotalOutage:
    def test_known_value(self):
        # lambda = mu -> each server down half the time
        assert total_outage_probability(1.0, 1.0, 2) == pytest.approx(0.25)

    def test_monotone_in_replication(self):
        values = [total_outage_probability(0.1, 1.0, r) for r in range(1, 6)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            total_outage_probability(0.1, 0.0, 1)
        with pytest.raises(ValueError):
            total_outage_probability(0.1, 1.0, 0)


class TestDuplicatesAndLoad:
    def test_expected_duplicates_half_window(self):
        assert expected_duplicate_responses(0.5, 24.0) == pytest.approx(6.0)

    def test_expected_duplicates_validation(self):
        with pytest.raises(ValueError):
            expected_duplicate_responses(0.0, 24.0)

    def test_expected_lost_updates_scales_with_loss_probability(self):
        few = expected_lost_updates_per_failover(1.0, 0.5, 3, 0.1)
        many = expected_lost_updates_per_failover(1.0, 0.5, 1, 0.1)
        assert few < many

    def test_per_server_load_breakdown_adds_up(self):
        load = per_server_load(
            n_sessions=10, n_servers=5, content_group_size=5,
            propagation_period=0.5, num_backups=2,
            update_rate=1.0, response_rate=10.0,
        )
        assert load["total"] == pytest.approx(
            load["propagation"]
            + load["backup_updates"]
            + load["primary_updates"]
            + load["responses"]
        )
        assert load["propagation"] == pytest.approx(10 * 5 / 5 / 0.5)
        assert load["backup_updates"] == pytest.approx(2 * 2.0)

    def test_per_server_load_validation(self):
        with pytest.raises(ValueError):
            per_server_load(1, 0, 1, 0.5, 0, 1.0, 1.0)

    def test_takeover_gap_estimate_join_larger(self):
        fail = takeover_gap_estimate(0.35)
        join = takeover_gap_estimate(0.35, state_exchange=True)
        assert join > fail


class TestMonteCarlo:
    def test_runs_and_aggregates(self):
        mc = MonteCarlo(
            fn=lambda seed: {"x": float(seed % 3), "y": 1.0},
            n_reps=6,
            base_seed=0,
        ).run()
        assert len(mc.replications) == 6
        assert mc.metric_names() == ["x", "y"]
        agg = mc.aggregate("y")
        assert agg.mean == 1.0 and agg.std == 0.0 and agg.n == 6

    def test_seeds_distinct_per_rep(self):
        mc = MonteCarlo(fn=lambda s: {"seed": float(s)}, n_reps=4).run()
        assert len(set(mc.values("seed"))) == 4

    def test_missing_metric_gives_nan(self):
        mc = MonteCarlo(fn=lambda s: {}, n_reps=2).run()
        assert math.isnan(mc.aggregate("nope").mean)

    def test_summary(self):
        mc = MonteCarlo(fn=lambda s: {"a": 2.0}, n_reps=2).run()
        assert set(mc.summary()) == {"a"}


class TestManagerDerivations:
    def test_backups_for_target_monotone(self):
        from repro.core.manager import backups_for_target

        loose = backups_for_target(1e-1, 0.1, 0.5)
        tight = backups_for_target(1e-6, 0.1, 0.5)
        assert tight >= loose

    def test_backups_for_target_achieves_target(self):
        from repro.core.manager import backups_for_target

        target = 1e-4
        backups = backups_for_target(target, 0.05, 0.5)
        assert context_loss_probability(0.05, 0.5, backups + 1) <= target

    def test_backups_for_target_validation(self):
        from repro.core.manager import backups_for_target

        with pytest.raises(ValueError):
            backups_for_target(0.0, 0.1, 0.5)

    def test_period_for_target_meets_target(self):
        from repro.core.manager import period_for_target

        target = 1e-3
        period = period_for_target(target, 0.1, num_backups=1)
        assert context_loss_probability(0.1, period, 2) <= target * 1.01

    def test_period_for_target_longer_with_more_backups(self):
        from repro.core.manager import period_for_target

        assert period_for_target(1e-4, 0.1, 2) >= period_for_target(1e-4, 0.1, 1)
