"""Tests for the Markov availability models."""

import math

import pytest

from repro.analysis.availability import total_outage_probability
from repro.analysis.markov import (
    all_down_hitting_probability,
    steady_state_all_down,
    steady_state_distribution,
)


class TestSteadyState:
    def test_matches_binomial_for_independent_repair(self):
        # independent repair => all-down probability = (lam/(lam+mu))^n
        for n in (1, 2, 4):
            markov = steady_state_all_down(n, 0.1, 0.5)
            simple = total_outage_probability(0.1, 0.5, n)
            assert markov == pytest.approx(simple, rel=1e-9)

    def test_distribution_sums_to_one(self):
        pi = steady_state_distribution(5, 0.2, 1.0)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_single_repairman_has_heavier_tail(self):
        shared = steady_state_all_down(4, 0.2, 0.5, single_repairman=True)
        independent = steady_state_all_down(4, 0.2, 0.5)
        assert shared > independent

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_distribution(0, 0.1, 1.0)


class TestHittingProbability:
    def test_single_replica_closed_form(self):
        # n=1: time-to-failure exponential(lam); P(hit within T) = 1-e^-lam*T
        lam, horizon = 0.1, 10.0
        p = all_down_hitting_probability(1, lam, 1.0, horizon)
        assert p == pytest.approx(1 - math.exp(-lam * horizon), rel=1e-6)

    def test_monotone_in_horizon(self):
        values = [
            all_down_hitting_probability(3, 0.1, 0.5, t) for t in (1, 10, 100)
        ]
        assert values[0] < values[1] < values[2]

    def test_monotone_decreasing_in_replication(self):
        values = [
            all_down_hitting_probability(n, 0.1, 0.5, 60.0) for n in (1, 2, 3, 4)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_zero_horizon(self):
        assert all_down_hitting_probability(3, 0.1, 0.5, 0.0) == pytest.approx(0.0)

    def test_is_probability(self):
        for n in (1, 3):
            for t in (0.5, 5.0, 500.0):
                p = all_down_hitting_probability(n, 0.3, 0.4, t)
                assert 0.0 <= p <= 1.0

    def test_single_repairman_riskier(self):
        shared = all_down_hitting_probability(
            3, 0.2, 0.5, 60.0, single_repairman=True
        )
        independent = all_down_hitting_probability(3, 0.2, 0.5, 60.0)
        assert shared > independent

    def test_validation(self):
        with pytest.raises(ValueError):
            all_down_hitting_probability(2, 0.1, 0.0, 1.0)

    def test_matches_e5_regime_roughly(self):
        """E5 measured ~100% of sessions lost at r<=2 and ~0-25% at r>=4
        with lam=0.1, mttr=3s over 60s; the hitting model should predict
        the same ordering."""
        predictions = {
            n: all_down_hitting_probability(n, 0.1, 1 / 3.0, 60.0)
            for n in (1, 2, 3, 4, 5)
        }
        assert predictions[1] > 0.9
        assert predictions[2] > 0.5
        assert predictions[5] < 0.3
        values = [predictions[n] for n in (1, 2, 3, 4, 5)]
        assert all(a > b for a, b in zip(values, values[1:]))
