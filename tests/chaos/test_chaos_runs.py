"""Integration tests for the chaos engine: full deterministic runs,
the planted-bug regression (find -> shrink -> artifact -> replay), and
the fixed-seed clean smoke that CI relies on."""

import json

import pytest

from repro.chaos.config import ChaosConfig
from repro.chaos.engine import _run_seed, explore, replay
from repro.chaos.runner import run_schedule
from repro.faults.schedule import FaultSchedule


def _layered_schedule() -> FaultSchedule:
    """Every adversity mechanism in one schedule: crash/recover, gray
    slowdown, link delay, duplication and reordering (the chaos-RNG
    paths most likely to break determinism if mis-seeded)."""
    return (
        FaultSchedule()
        .crash(2.0, "s0")
        .recover(5.0, "s0")
        .slowdown(6.0, "s1", 4.0)
        .restore_speed(9.0, "s1")
        .delay_link(3.0, "s1", "s2", 0.08)
        .restore_delay(8.0, "s1", "s2")
        .duplicate(3.0, 0.05)
        .duplicate(12.0, 0.0)
        .reorder(4.0, 0.05)
        .reorder(12.0, 0.0)
        .crash_at(7.0, "s2", "post-update")
        .recover(10.0, "s2")
    )


class TestDeterminism:
    def test_same_inputs_same_trace(self):
        # a run is a pure function of (config, seed, schedule): the full
        # event trace — including randomized duplication/reordering and
        # workload behavior — must be byte-identical across re-runs
        config = ChaosConfig(duration=14.0, establish=2.0, settle=6.0)
        schedule = _layered_schedule()
        a = run_schedule(config, 424242, schedule)
        b = run_schedule(config, 424242, schedule)
        assert a.digest == b.digest
        assert a.responses == b.responses
        assert a.updates == b.updates
        assert [v.to_json() for v in a.violations] == [
            v.to_json() for v in b.violations
        ]

    def test_seed_changes_trace(self):
        config = ChaosConfig(duration=8.0, establish=2.0, settle=4.0)
        schedule = FaultSchedule().crash(2.0, "s0").recover(4.0, "s0")
        a = run_schedule(config, 1, schedule)
        b = run_schedule(config, 2, schedule)
        assert a.digest != b.digest

    def test_schedule_changes_trace(self):
        config = ChaosConfig(duration=8.0, establish=2.0, settle=4.0)
        a = run_schedule(config, 7, FaultSchedule().crash(2.0, "s0").recover(4.0, "s0"))
        b = run_schedule(config, 7, FaultSchedule().crash(2.5, "s0").recover(4.0, "s0"))
        assert a.digest != b.digest


class TestPlantRegression:
    """End-to-end validation of the whole pipeline against a failure
    known to exist: ``handoff-stall`` disables the handoff-timeout
    fallback, and root seed 8 deterministically produces a pre-handoff
    crash that the heal-phase rebalance does not cure."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        artifact_dir = tmp_path_factory.mktemp("chaos-artifacts")
        config = ChaosConfig(profile="crashes", plant="handoff-stall")
        return explore(config, seed=8, iterations=2, artifact_dir=artifact_dir)

    def test_plant_is_found(self, report):
        assert report.violations_found >= 1
        failing = [it for it in report.iterations if it.failed]
        names = {v.oracle for it in failing for v in it.result.violations}
        # the stall signature: the session goes silent and never converges
        assert "convergence" in names

    def test_shrink_reduces_schedule(self, report):
        failing = next(it for it in report.iterations if it.failed)
        assert failing.shrunk is not None
        assert len(failing.shrunk) < failing.event_count
        assert failing.shrink_runs > 0

    def test_artifact_written_and_replayable(self, report):
        assert report.artifacts
        path = report.artifacts[0]
        data = json.loads(open(path).read())
        assert data["format"] == "repro-chaos/1"
        assert data["shrunk_event_count"] <= data["original_event_count"]
        result, recorded, reproduced = replay(path)
        assert reproduced
        assert {v["oracle"] for v in recorded} <= result.oracle_names()

    def test_replay_is_exact(self, report):
        # the artifact pins (config, seed, schedule): two replays are the
        # same run, digest and all
        path = report.artifacts[0]
        a, _, _ = replay(path)
        b, _, _ = replay(path)
        assert a.digest == b.digest


class TestCleanSmoke:
    def test_fixed_seed_mixed_smoke_is_clean(self):
        # the CI gate: one iteration per profile at a pinned seed must
        # report zero violations on the real (unplanted) implementation
        report = explore(ChaosConfig(profile="mixed"), seed=1, iterations=3)
        assert report.violations_found == 0
        assert {it.profile for it in report.iterations} == {
            "crashes",
            "partitions",
            "gray",
        }
        # every run actually exercised the cluster
        assert all(it.result.responses > 0 for it in report.iterations)

    def test_run_seed_decoupled_from_generator(self):
        # adding generator draws must never change the run seed sequence
        assert _run_seed(8, 1) == (8 * 1_000_003 + 8_191 + 1) % (2**31 - 1)
        seeds = [_run_seed(1, i) for i in range(4)]
        assert len(set(seeds)) == 4
