"""Unit tests for the chaos engine's pieces: config, generation,
disruption windows, shrinking, and artifacts (no full cluster runs)."""

import numpy as np
import pytest

from repro.chaos.artifact import FORMAT, load_artifact, write_artifact
from repro.chaos.config import ChaosConfig
from repro.chaos.generator import PROFILES, generate_schedule, resolve_profile
from repro.chaos.oracles import ORACLES, Violation
from repro.chaos.runner import disruption_spans
from repro.chaos.shrink import shrink_events
from repro.faults.schedule import FaultSchedule


class TestConfig:
    def test_defaults_valid(self):
        config = ChaosConfig()
        assert config.spare == "s3"
        assert config.spare not in config.faultable_servers
        assert len(config.client_ids) == config.n_sessions

    def test_sessions_share_one_unit(self):
        # controlled migrations only happen in multi-session units
        assert ChaosConfig(n_sessions=3).unit_ids == ["m0"]

    def test_rejects_tiny_cluster(self):
        with pytest.raises(ValueError):
            ChaosConfig(n_servers=2)

    def test_rejects_unknown_profile_and_plant(self):
        with pytest.raises(ValueError):
            ChaosConfig(profile="meteors")
        with pytest.raises(ValueError):
            ChaosConfig(plant="nonexistent-bug")

    def test_json_round_trip(self):
        config = ChaosConfig(n_servers=5, profile="gray", plant="handoff-stall")
        assert ChaosConfig.from_json(config.to_json()) == config

    def test_from_json_rejects_unknown_keys(self):
        data = ChaosConfig().to_json()
        data["meteor_rate"] = 1.0
        with pytest.raises(ValueError, match="meteor_rate"):
            ChaosConfig.from_json(data)

    def test_plant_disables_handoff_timeout(self):
        normal = ChaosConfig().build_policy()
        planted = ChaosConfig(plant="handoff-stall").build_policy()
        assert planted.handoff_timeout > 1e6 > normal.handoff_timeout

    def test_full_session_groups(self):
        policy = ChaosConfig(n_servers=5).build_policy()
        assert policy.num_backups == 4


class TestGenerator:
    def test_mixed_round_robins_all_profiles(self):
        config = ChaosConfig(profile="mixed")
        seen = {resolve_profile(config, i) for i in range(6)}
        assert seen == set(PROFILES)

    def test_fixed_profile_sticks(self):
        config = ChaosConfig(profile="gray")
        assert resolve_profile(config, 0) == resolve_profile(config, 5) == "gray"

    @pytest.mark.parametrize("profile", PROFILES)
    def test_schedules_deterministic_and_spare_safe(self, profile):
        config = ChaosConfig()
        a = generate_schedule(np.random.default_rng([3, 1]), config, profile)
        b = generate_schedule(np.random.default_rng([3, 1]), config, profile)
        assert [e.key() for e in a.sorted_events()] == [
            e.key() for e in b.sorted_events()
        ]
        for event in a.events:
            if event.kind in ("crash", "slowdown", "crash_at"):
                assert event.target != config.spare
            if event.kind == "partition":
                # clients must be placed explicitly (unlisted nodes end
                # up isolated in an implicit extra component)
                members = {n for comp in event.args["components"] for n in comp}
                assert set(config.client_ids) <= members
                assert config.spare in members

    def test_events_within_injection_window(self):
        config = ChaosConfig()
        for profile in PROFILES:
            schedule = generate_schedule(
                np.random.default_rng([9, 2]), config, profile
            )
            assert all(0 <= e.time <= config.duration for e in schedule.events)


class TestDisruptionSpans:
    def test_opener_closed_by_matching_closer(self):
        schedule = FaultSchedule().crash(1.0, "s0").recover(4.0, "s0")
        assert disruption_spans(schedule, t0=10.0, heal_time=40.0) == [(11.0, 14.0)]

    def test_unclosed_opener_runs_to_heal(self):
        schedule = FaultSchedule().crash(2.0, "s1")
        assert disruption_spans(schedule, t0=0.0, heal_time=30.0) == [(2.0, 30.0)]

    def test_closer_scoped_per_target(self):
        schedule = (
            FaultSchedule().crash(1.0, "s0").crash(2.0, "s1").recover(3.0, "s1")
        )
        spans = disruption_spans(schedule, t0=0.0, heal_time=10.0)
        # s0 stays down to heal; s1's span closes at 3.0 and merges into it
        assert spans == [(1.0, 10.0)]

    def test_crash_at_conservative_to_heal(self):
        schedule = FaultSchedule().crash_at(5.0, "s0", "pre-handoff")
        assert disruption_spans(schedule, t0=0.0, heal_time=20.0) == [(5.0, 20.0)]

    def test_message_adversity_closes_at_zero_probability(self):
        schedule = FaultSchedule().duplicate(1.0, 0.05).duplicate(6.0, 0.0)
        assert disruption_spans(schedule, t0=0.0, heal_time=20.0) == [(1.0, 6.0)]


class TestShrink:
    def test_finds_single_culprit(self):
        events = list(range(16))

        calls = []

        def still_fails(subset):
            calls.append(len(subset))
            return 11 in subset

        shrunk, runs = shrink_events(events, still_fails, budget=64)
        assert shrunk == [11]
        assert runs == len(calls)

    def test_finds_interacting_pair(self):
        events = list(range(12))

        def still_fails(subset):
            return 3 in subset and 9 in subset

        shrunk, _ = shrink_events(events, still_fails, budget=64)
        assert shrunk == [3, 9]

    def test_budget_caps_re_runs(self):
        events = list(range(64))

        def still_fails(subset):
            return 63 in subset

        _, runs = shrink_events(events, still_fails, budget=5)
        assert runs <= 5

    def test_trivial_schedules_untouched(self):
        assert shrink_events([], lambda s: True, budget=8) == ([], 0)
        assert shrink_events([1], lambda s: True, budget=8) == ([1], 0)


class TestArtifact:
    def test_round_trip(self, tmp_path):
        config = ChaosConfig(profile="crashes")
        schedule = FaultSchedule().crash(1.5, "s0").recover(3.0, "s0")
        violations = [
            Violation(oracle="responsiveness", session_id="c0#0", detail={"max_gap": 9.0})
        ]
        path = tmp_path / "repro.json"
        write_artifact(
            path,
            config=config,
            seed=12345,
            schedule=schedule,
            violations=violations,
            profile="crashes",
            original_event_count=17,
            shrink_runs=8,
        )
        loaded = load_artifact(path)
        assert loaded["config"] == config
        assert loaded["seed"] == 12345
        assert loaded["profile"] == "crashes"
        assert [e.key() for e in loaded["schedule"].sorted_events()] == [
            e.key() for e in schedule.sorted_events()
        ]
        assert loaded["violations"][0]["oracle"] == "responsiveness"

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="format"):
            load_artifact(path)

    def test_format_name_stable(self):
        # replay compatibility contract: bump deliberately, not by accident
        assert FORMAT == "repro-chaos/1"


class TestOracleTable:
    def test_lossless_oracles_exclude_partitions(self):
        # "no silent lost updates" is only an invariant when no
        # partition-class fault ran (the paper accepts minority loss)
        by_name = {o.name: o for o in ORACLES}
        lost = by_name["silent-lost-updates"]
        assert lost.applies_to is not None
        assert "partition" not in lost.applies_to
        assert "crash" in lost.applies_to

    def test_unconditional_oracles(self):
        by_name = {o.name: o for o in ORACLES}
        assert by_name["gcs-spec"].applies_to is None
        assert by_name["convergence"].applies_to is None
