"""Chaos on the live wire: real-socket runs, the planted live-mode bug,
and bit-reproducible replay from the ingress frame log.

These tests run wall-clock seconds each (the pacer runs the simulator
against real time), so the phases are kept as short as the live_lan
timings allow.
"""

import json

import pytest

from repro.chaos import ChaosConfig, replay, run_schedule, write_artifact
from repro.chaos.live import replay_live
from repro.faults.schedule import FaultSchedule


def _clean_config(**overrides):
    base = dict(
        n_servers=3,
        n_sessions=1,
        duration=1.0,
        establish=1.5,
        settle=1.5,
        profile="partitions",
        mode="live",
    )
    base.update(overrides)
    return ChaosConfig(**base)


@pytest.fixture(scope="module")
def planted_run():
    """One live 5-node run of the partition-amnesia plant under a
    partition + heal schedule (shared: live runs cost wall seconds)."""
    config = _clean_config(
        n_servers=5,
        duration=2.5,
        establish=2.0,
        settle=2.5,
        plant="partition-amnesia",
    )
    schedule = (
        FaultSchedule()
        .partition(0.3, ["s0", "s1", "c0"], ["s2", "s3", "s4"])
        .heal(1.8)
    )
    result = run_schedule(config, seed=7, schedule=schedule)
    return config, schedule, result


def test_clean_live_run_replays_bit_identically():
    config = _clean_config()
    result = run_schedule(config, seed=11, schedule=FaultSchedule())
    assert result.mode == "live"
    assert not result.violations
    assert result.responses > 0
    assert result.replay_log  # the ingress frame log rode along
    replayed = replay_live(config, 11, FaultSchedule(), result.replay_log)
    assert replayed.digest == result.digest
    assert not replayed.violations


def test_partition_amnesia_fires_on_the_live_wire(planted_run):
    _config, _schedule, result = planted_run
    # both sides evict each other, the heal never re-merges the views,
    # and two primaries persist into the settle phase
    assert "convergence" in result.oracle_names()
    assert result.mode == "live"
    assert result.replay_log


def test_planted_failure_replays_bit_identically(planted_run):
    config, schedule, result = planted_run
    replayed = replay_live(config, 7, schedule, result.replay_log)
    assert replayed.digest == result.digest
    assert replayed.oracle_names() == result.oracle_names()


def test_live_artifact_roundtrip_and_digest_gate(tmp_path, planted_run):
    config, schedule, result = planted_run
    path = write_artifact(
        tmp_path / "live-artifact.json",
        config=config,
        seed=7,
        schedule=schedule,
        violations=result.violations,
        profile="partitions",
        original_event_count=len(schedule),
        shrink_runs=0,
        mode=result.mode,
        trace_digest=result.digest,
        replay_log=result.replay_log,
    )
    rerun, recorded, reproduced = replay(path)
    assert reproduced
    assert rerun.digest == result.digest
    assert {v["oracle"] for v in recorded} <= rerun.oracle_names()

    # a tampered digest must flip the verdict even though the oracles
    # still fire — "reproduced" means bit-for-bit, not just "same bug"
    data = json.loads(path.read_text())
    data["trace_digest"] = "0" * 64
    path.write_text(json.dumps(data))
    _rerun, _recorded, reproduced = replay(path)
    assert not reproduced


def test_live_mode_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(mode="hybrid")
    with pytest.raises(ValueError):
        ChaosConfig(wan_profile="us-eu")  # wan requires live mode
    config = ChaosConfig(mode="live", wan_profile="us-eu")
    assert config.wan_profile == "us-eu"


def test_cli_rejects_live_with_workers(capsys):
    from repro.__main__ import main

    assert main(["chaos", "--live", "--workers", "2"]) == 2
    assert "--workers 1" in capsys.readouterr().err


def test_cli_rejects_wan_without_live(capsys):
    from repro.__main__ import main

    assert main(["chaos", "--wan", "us-eu"]) == 2
    assert "wan_profile requires mode='live'" in capsys.readouterr().err
