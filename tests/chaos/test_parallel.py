"""Determinism of the sharded runner: parallel must equal serial.

The whole fast path leans on one claim — a chaos run is a pure function
of ``(config, seed, schedule)``, so sharding seeds across processes and
merging by index reproduces the serial run bit-for-bit.  These tests pin
that claim at three levels: the run itself, the merge primitive, and the
end-to-end explorer.
"""

from repro.chaos import ChaosConfig, explore
from repro.chaos.runner import run_schedule
from repro.faults.schedule import FaultSchedule
from repro.parallel import effective_workers, map_sharded, starmap_sharded

TINY = ChaosConfig(n_servers=3, n_sessions=1, duration=4.0, profile="mixed")


def test_run_schedule_is_deterministic_in_process():
    first = run_schedule(TINY, 7, FaultSchedule(events=[]))
    second = run_schedule(TINY, 7, FaultSchedule(events=[]))
    assert first.digest == second.digest
    assert first.responses == second.responses


def _square(x):
    return x * x


def _add(a, b):
    return a + b


class TestMergePrimitive:
    def test_results_come_back_in_task_order(self):
        tasks = list(range(20))
        assert map_sharded(_square, tasks, workers=4) == [
            _square(t) for t in tasks
        ]

    def test_serial_path_matches_pool_path(self):
        tasks = list(range(8))
        assert map_sharded(_square, tasks, workers=1) == map_sharded(
            _square, tasks, workers=3
        )

    def test_starmap_order(self):
        tasks = [(i, 10 * i) for i in range(6)]
        assert starmap_sharded(_add, tasks, workers=3) == [
            a + b for a, b in tasks
        ]

    def test_effective_workers(self):
        assert effective_workers(5) == 5
        assert effective_workers(None) >= 1
        assert effective_workers(0) >= 1


class TestExplorerSharding:
    def test_worker_count_does_not_change_the_report(self):
        serial = explore(TINY, seed=3, iterations=4, artifact_dir=None)
        sharded = explore(
            TINY, seed=3, iterations=4, artifact_dir=None, workers=4
        )
        assert [it.result.digest for it in serial.iterations] == [
            it.result.digest for it in sharded.iterations
        ]
        assert [it.run_seed for it in serial.iterations] == [
            it.run_seed for it in sharded.iterations
        ]
        assert [it.index for it in sharded.iterations] == [0, 1, 2, 3]
        assert serial.violations_found == sharded.violations_found

    def test_progress_lines_identical_and_ordered(self):
        serial_lines: list[str] = []
        sharded_lines: list[str] = []
        explore(
            TINY, seed=3, iterations=3, artifact_dir=None,
            echo=serial_lines.append,
        )
        explore(
            TINY, seed=3, iterations=3, artifact_dir=None,
            echo=sharded_lines.append, workers=3,
        )
        assert serial_lines == sharded_lines
