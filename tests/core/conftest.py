"""Fixtures for the framework integration tests: a small VoD deployment."""

from __future__ import annotations

import pytest

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.services import VodApplication, build_movie


def make_vod_cluster(
    n_servers=3,
    replication=3,
    num_backups=1,
    propagation_period=0.5,
    frame_rate=10.0,
    duration=120.0,
    n_movies=1,
    seed=7,
    **policy_kwargs,
):
    movies = {
        f"m{i}": build_movie(f"m{i}", duration_seconds=duration, frame_rate=frame_rate)
        for i in range(n_movies)
    }
    app = VodApplication(movies)
    policy = AvailabilityPolicy(
        num_backups=num_backups,
        propagation_period=propagation_period,
        **policy_kwargs,
    )
    cluster = ServiceCluster.build(
        n_servers=n_servers,
        units={unit: app for unit in movies},
        replication=replication,
        policy=policy,
        seed=seed,
    )
    cluster.settle()
    return cluster


def start_streaming_session(cluster, client_id="c0", unit="m0", run=3.0):
    client = cluster.add_client(client_id)
    handle = client.start_session(unit)
    cluster.run(run)
    return client, handle


@pytest.fixture
def vod_cluster():
    return make_vod_cluster()


@pytest.fixture
def streaming(vod_cluster):
    client, handle = start_streaming_session(vod_cluster)
    return vod_cluster, client, handle
