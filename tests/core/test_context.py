"""Unit tests for the three-level context model."""

from repro.core.context import BackupContext, ContextSnapshot, PrimaryContext


def apply(state, update):
    return state + [update]


def snap(update_counter=0, response_counter=0, epoch=0, state=None):
    return ContextSnapshot(
        app_state=state if state is not None else [],
        update_counter=update_counter,
        response_counter=response_counter,
        stamped_at=1.0,
        epoch=epoch,
    )


class TestContextSnapshot:
    def test_freshness_ordered_by_update_progress_first(self):
        # Epochs are per-lineage counters: an epoch-richer but
        # update-poorer snapshot (a stale dual primary) must lose.
        assert snap(update_counter=0, epoch=9).freshness_key() < snap(
            update_counter=1, epoch=1
        ).freshness_key()

    def test_freshness_then_responses_then_epoch(self):
        a = snap(update_counter=1, response_counter=0, epoch=9)
        b = snap(update_counter=1, response_counter=5, epoch=1)
        assert a.freshness_key() < b.freshness_key()
        c = snap(update_counter=1, response_counter=5, epoch=2)
        assert b.freshness_key() < c.freshness_key()


class TestPrimaryContext:
    def test_snapshot_shares_state_by_reference(self):
        # Application states are immutable by contract (every application
        # method is functional), so capture is O(1) reference sharing —
        # the old deep copy was a simulator artifact that inflated the
        # measured cost of the propagation-frequency knob.
        ctx = PrimaryContext(app_state=("a",))
        captured = ctx.snapshot(now=5.0)
        assert captured.app_state is ctx.app_state
        # a functional update rebinds, never mutates: the capture is safe
        ctx.app_state = ctx.app_state + ("b",)
        assert captured.app_state == ("a",)

    def test_snapshot_advances_epoch(self):
        ctx = PrimaryContext(app_state=[])
        s1 = ctx.snapshot(now=1.0)
        s2 = ctx.snapshot(now=2.0)
        assert s2.epoch == s1.epoch + 1
        assert s2.stamped_at == 2.0

    def test_from_snapshot_roundtrip(self):
        original = snap(update_counter=3, response_counter=7, epoch=2, state=(1,))
        ctx = PrimaryContext.from_snapshot(original)
        assert ctx.update_counter == 3
        assert ctx.response_counter == 7
        assert ctx.epoch == 2
        ctx.app_state = ctx.app_state + (2,)  # functional rebind
        assert original.app_state == (1,)  # snapshot unaffected


class TestBackupContext:
    def test_updates_newer_than_base_are_logged(self):
        backup = BackupContext(base=snap(update_counter=2))
        backup.apply_update(2, "old")  # not newer; ignored
        backup.apply_update(3, "new")
        assert backup.update_log == [(3, "new")]
        assert backup.effective_update_counter == 3

    def test_rebase_prunes_covered_updates(self):
        backup = BackupContext(base=snap(update_counter=0, epoch=1))
        backup.apply_update(1, "u1")
        backup.apply_update(2, "u2")
        backup.rebase(snap(update_counter=1, epoch=2))
        assert backup.update_log == [(2, "u2")]

    def test_rebase_ignores_stale_snapshot(self):
        backup = BackupContext(base=snap(update_counter=5, epoch=3))
        backup.apply_update(6, "u6")
        backup.rebase(snap(update_counter=4, epoch=9))  # update-poorer
        assert backup.base.update_counter == 5
        assert backup.update_log == [(6, "u6")]

    def test_effective_replays_log_in_order(self):
        backup = BackupContext(base=snap(update_counter=0, state=[]))
        backup.apply_update(2, "b")
        backup.apply_update(1, "a")
        effective = backup.effective(apply)
        assert effective.app_state == ["a", "b"]
        assert effective.update_counter == 2

    def test_effective_does_not_mutate_base(self):
        backup = BackupContext(base=snap(state=[]))
        backup.apply_update(1, "x")
        backup.effective(apply)
        assert backup.base.app_state == []

    def test_backup_at_least_as_fresh_as_unit_db(self):
        """The paper's invariant: the session group's knowledge of client
        updates is >= the unit database's."""
        db_snapshot = snap(update_counter=4, epoch=7)
        backup = BackupContext(base=db_snapshot)
        assert backup.effective_update_counter >= db_snapshot.update_counter
        backup.apply_update(5, "newer")
        assert backup.effective_update_counter > db_snapshot.update_counter
