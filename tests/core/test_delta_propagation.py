"""Delta (copy-on-write) context propagation: diffing, wire cost,
reconstruction, and the end-to-end primary→backup path.

The contract under test: a receiver that applies a delta to its record at
the delta's base epoch ends up with *exactly* the snapshot a full
propagation would have carried — and a receiver anywhere else refuses the
delta (counted as a gap) rather than building a frankenstate.
"""

from dataclasses import dataclass

import pytest

from repro.core.context import (
    BackupContext,
    ContextDelta,
    ContextSnapshot,
    PrimaryContext,
    apply_state_delta,
    estimate_size,
    state_delta,
)
from repro.core.wire import Propagate

from .conftest import make_vod_cluster, start_streaming_session


@dataclass(frozen=True)
class PlayState:
    position: int = 0
    rate: float = 1.0
    buffer: tuple = ()


class TestStateDelta:
    def test_same_object_is_empty_delta(self):
        state = PlayState()
        assert state_delta(state, state) == ()

    def test_changed_fields_only(self):
        old = PlayState(position=3, buffer=("a", "b"))
        new = PlayState(position=4, buffer=("a", "b"))
        assert state_delta(old, new) == (("position", 4),)

    def test_roundtrip(self):
        old = PlayState(position=3, rate=1.0)
        new = PlayState(position=9, rate=2.0)
        assert apply_state_delta(old, state_delta(old, new)) == new

    def test_undiffable_states_return_none(self):
        assert state_delta([1], [1, 2]) is None
        assert state_delta(PlayState(), (1, 2)) is None


class TestContextDelta:
    def test_delta_reconstructs_exactly_what_full_would_ship(self):
        ctx = PrimaryContext(app_state=PlayState(position=1))
        base = ctx.snapshot(now=1.0)
        ctx.app_state = PlayState(position=2)
        ctx.update_counter = 5
        delta = ctx.delta(now=2.0)
        assert delta is not None
        rebuilt = delta.apply_to(base)
        assert rebuilt == ContextSnapshot(
            app_state=PlayState(position=2),
            update_counter=5,
            response_counter=0,
            stamped_at=2.0,
            epoch=base.epoch + 1,
        )

    def test_delta_refuses_wrong_base_epoch(self):
        ctx = PrimaryContext(app_state=PlayState())
        ctx.snapshot(now=1.0)
        ctx.app_state = PlayState(position=1)
        delta = ctx.delta(now=2.0)
        stranger = ContextSnapshot(app_state=PlayState(), epoch=999)
        with pytest.raises(ValueError):
            delta.apply_to(stranger)

    def test_no_capture_yet_means_no_delta(self):
        ctx = PrimaryContext(app_state=PlayState())
        assert ctx.delta(now=1.0) is None  # caller falls back to full

    def test_undiffable_state_means_no_delta(self):
        ctx = PrimaryContext(app_state=[1, 2])
        ctx.snapshot(now=1.0)
        ctx.app_state = [1, 2, 3]
        assert ctx.delta(now=2.0) is None

    def test_delta_is_cheaper_on_the_wire_than_full(self):
        big_buffer = tuple(f"frame-{i}" for i in range(200))
        ctx = PrimaryContext(app_state=PlayState(position=0, buffer=big_buffer))
        full = ctx.snapshot(now=1.0)
        ctx.app_state = PlayState(position=1, buffer=big_buffer)
        delta = ctx.delta(now=2.0)
        assert delta.size_estimate < full.size_estimate / 10
        full_msg = Propagate(session_id="s", unit_id="u", snapshot=full)
        delta_msg = Propagate(session_id="s", unit_id="u", delta=delta)
        assert delta_msg.size_estimate == delta.size_estimate
        assert full_msg.size_estimate == full.size_estimate

    def test_estimate_size_is_deterministic(self):
        value = {"a": [1, 2.5, "xy"], "b": PlayState(buffer=("f",))}
        assert estimate_size(value) == estimate_size(value)


class TestBackupLogReplay:
    def test_empty_log_returns_base_without_copying(self):
        base = ContextSnapshot(app_state=PlayState())
        backup = BackupContext(base=base)
        assert backup.effective(lambda s, u: s) is base

    def test_tying_counters_with_unorderable_payloads(self):
        # update payloads are opaque application values: dicts here, which
        # are not orderable — the replay sort must key on the counter only
        # (sorting the raw tuples raised TypeError on ties)
        backup = BackupContext(base=ContextSnapshot(app_state=(), update_counter=0))
        backup.apply_update(2, {"op": "b"})
        backup.apply_update(1, {"op": "a"})
        backup.apply_update(2, {"op": "c"})
        effective = backup.effective(lambda s, u: s + (u["op"],))
        assert effective.app_state == ("a", "b", "c")
        assert effective.update_counter == 2


class TestClusterDeltaPath:
    def test_steady_state_sends_mostly_deltas(self):
        cluster = make_vod_cluster(propagation_period=0.3)
        _, handle = start_streaming_session(cluster, run=8.0)
        deltas = sum(
            s.counters["propagations_delta"] for s in cluster.servers.values()
        )
        fulls = sum(
            s.counters["propagations_full"] for s in cluster.servers.values()
        )
        gaps = sum(
            s.counters["propagation_delta_gaps"]
            for s in cluster.servers.values()
        )
        assert deltas > fulls  # full only at start + every Nth
        assert gaps == 0  # totally ordered propagation: bases always match
        assert len(handle.received) > 0

    def test_delta_bytes_cheaper_than_full_only(self):
        def bytes_processed(**policy_kwargs):
            cluster = make_vod_cluster(
                propagation_period=0.3, **policy_kwargs
            )
            start_streaming_session(cluster, run=8.0)
            return sum(
                s.counters["propagation_bytes_processed"]
                for s in cluster.servers.values()
            )

        with_deltas = bytes_processed(delta_propagation=True)
        full_only = bytes_processed(delta_propagation=False)
        assert 0 < with_deltas < full_only

    def test_failover_freshness_with_deltas_on(self):
        cluster = make_vod_cluster(propagation_period=0.3)
        _, handle = start_streaming_session(cluster, run=6.0)
        victim = cluster.primaries_of(handle.session_id)[0]
        before = len(handle.received)
        cluster.crash_server(victim)
        cluster.run(8.0)
        assert cluster.primaries_of(handle.session_id)[0] != victim
        assert len(handle.received) > before  # stream survived the takeover

    def test_epoch_gap_falls_back_instead_of_corrupting(self):
        cluster = make_vod_cluster(propagation_period=0.3)
        _, handle = start_streaming_session(cluster, run=4.0)
        session = handle.session_id
        primary = cluster.primaries_of(session)[0]
        observer = next(
            s
            for sid, s in cluster.servers.items()
            if sid != primary and "m0" in s.unit_dbs
        )
        record = observer.unit_dbs["m0"].get(session)
        assert record is not None
        before_epoch = record.snapshot.epoch
        gaps_before = observer.counters["propagation_delta_gaps"]
        stray = Propagate(
            session_id=session,
            unit_id="m0",
            delta=ContextDelta(
                base_epoch=before_epoch + 40,  # a future lineage we missed
                epoch=before_epoch + 41,
                update_counter=999,
                response_counter=999,
                stamped_at=99.0,
                changes=(("position", 12345),),
            ),
        )
        observer._on_propagate(stray)
        assert observer.counters["propagation_delta_gaps"] == gaps_before + 1
        # the record was left untouched rather than patched off-base
        assert observer.unit_dbs["m0"].get(session).snapshot.epoch == before_epoch
