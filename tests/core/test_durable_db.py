"""Tests for the durable unit database extension (beyond-paper option)."""

from tests.core.conftest import make_vod_cluster, start_streaming_session


def crash_all_then_recover(cluster, down_for=3.0, settle=6.0):
    for server_id in list(cluster.servers):
        cluster.crash_server(server_id)
    cluster.run(down_for)
    for server_id in list(cluster.servers):
        cluster.recover_server(server_id)
    cluster.run(settle)


class TestVolatileBaseline:
    def test_total_crash_erases_sessions(self):
        cluster = make_vod_cluster()
        client, handle = start_streaming_session(cluster)
        crash_all_then_recover(cluster)
        assert cluster.primaries_of(handle.session_id) == []
        for server in cluster.servers.values():
            assert handle.session_id not in server.unit_dbs["m0"]


class TestDurableUnitDb:
    def test_total_crash_resumes_sessions(self):
        cluster = make_vod_cluster(durable_unit_db=True)
        client, handle = start_streaming_session(cluster)
        position_before = handle.received[-1].index
        crash_all_then_recover(cluster)
        # the session came back without any client action
        assert len(cluster.primaries_of(handle.session_id)) == 1
        cluster.run(3.0)
        tail = handle.response_indices()[-3:]
        assert tail and tail[-1] > position_before

    def test_resumed_context_no_fresher_than_last_propagation(self):
        cluster = make_vod_cluster(durable_unit_db=True, propagation_period=0.5)
        client, handle = start_streaming_session(cluster)
        position_before = handle.received[-1].index
        crash_all_then_recover(cluster)
        cluster.run(2.0)
        resumed_indices = [
            r.index for r in handle.received if r.time > cluster.sim.now - 4.0
        ]
        # restart replays from the last propagated snapshot: at most the
        # propagation window is re-sent, nothing beyond the crash point +
        # the stream keeps going
        assert resumed_indices
        assert min(resumed_indices) >= position_before - 10

    def test_solo_durable_restart(self):
        cluster = make_vod_cluster(n_servers=1, replication=1, durable_unit_db=True)
        client, handle = start_streaming_session(cluster)
        cluster.crash_server("s0")
        cluster.run(2.0)
        cluster.recover_server("s0")
        cluster.run(5.0)
        assert cluster.primaries_of(handle.session_id) == ["s0"]
        assert cluster.servers["s0"].counters["solo_restarts"] >= 1

    def test_client_updates_apply_after_restart(self):
        cluster = make_vod_cluster(durable_unit_db=True)
        client, handle = start_streaming_session(cluster)
        crash_all_then_recover(cluster)
        client.send_update(handle, {"op": "skip", "to": 900})
        cluster.run(3.0)
        tail = handle.response_indices()[-3:]
        assert all(index >= 900 for index in tail)

    def test_spec_holds_with_durable_db(self):
        cluster = make_vod_cluster(durable_unit_db=True)
        client, handle = start_streaming_session(cluster)
        crash_all_then_recover(cluster)
        cluster.monitor.check_all()
