"""Tests for the future-work extensions: RSM and availability manager."""

import pytest

from repro.core.manager import AvailabilityManager
from repro.core.statemachine import ReplicatedStateMachine
from repro.experiments.e10_extensions import _rsm_world
from tests.core.conftest import make_vod_cluster


class TestReplicatedStateMachine:
    def test_concurrent_updates_converge(self):
        sim, hosts = _rsm_world(3)
        names = sorted(hosts)
        for index in range(30):
            hosts[names[index % 3]].rsm.submit((f"k{index % 5}", index))
        sim.run_until(sim.now + 3.0)
        states = [sorted(hosts[n].rsm.state.items()) for n in names]
        assert states[0] == states[1] == states[2]
        assert hosts[names[0]].rsm.applied_count == 30

    def test_total_order_gives_identical_last_writer(self):
        sim, hosts = _rsm_world(3)
        names = sorted(hosts)
        # everyone writes the same key concurrently; replicas must agree
        for index in range(9):
            hosts[names[index % 3]].rsm.submit(("contested", index))
        sim.run_until(sim.now + 3.0)
        winners = {hosts[n].rsm.state["contested"] for n in names}
        assert len(winners) == 1

    def test_survivors_consistent_across_crash(self):
        sim, hosts = _rsm_world(3)
        names = sorted(hosts)
        for index in range(10):
            hosts[names[0]].rsm.submit((f"k{index}", index))
        sim.run_until(sim.now + 2.0)
        hosts[names[1]].daemon.crash()
        for index in range(10, 20):
            hosts[names[0]].rsm.submit((f"k{index}", index))
        sim.run_until(sim.now + 3.0)
        assert sorted(hosts[names[0]].rsm.state.items()) == sorted(
            hosts[names[2]].rsm.state.items()
        )
        assert len(hosts[names[0]].rsm.state) == 20

    def test_rejoiner_receives_state_transfer(self):
        sim, hosts = _rsm_world(3)
        names = sorted(hosts)
        hosts[names[2]].daemon.crash()
        sim.run_until(sim.now + 2.0)
        for index in range(12):
            hosts[names[0]].rsm.submit((f"k{index}", index))
        sim.run_until(sim.now + 2.0)
        hosts[names[2]].daemon.recover()
        sim.run_until(sim.now + 2.0)
        # rebuild the host's RSM membership (the daemon state is volatile)
        hosts[names[2]].daemon.join("content-updates")
        sim.run_until(sim.now + 4.0)
        assert sorted(hosts[names[2]].rsm.state.items()) == sorted(
            hosts[names[0]].rsm.state.items()
        )

    def test_submissions_after_transfer_apply_everywhere(self):
        sim, hosts = _rsm_world(2)
        names = sorted(hosts)
        hosts[names[0]].rsm.submit(("a", 1))
        sim.run_until(sim.now + 2.0)
        hosts[names[1]].rsm.submit(("b", 2))
        sim.run_until(sim.now + 2.0)
        for name in names:
            assert hosts[name].rsm.state == {"a": 1, "b": 2}


class TestAvailabilityManager:
    def test_evaluate_updates_policy(self):
        cluster = make_vod_cluster()
        manager = AvailabilityManager(cluster=cluster, target_loss=1e-4)
        cluster.availability_manager = manager
        # simulate an observed crash history: high rate
        for t in (1.0, 2.0, 3.0, 4.0):
            manager.record_crash(t)
        cluster.run(5.0)
        decision = manager.evaluate()
        assert decision.num_backups >= 1
        assert cluster.policy.num_backups == decision.num_backups

    def test_low_failure_rate_needs_no_backups(self):
        cluster = make_vod_cluster()
        manager = AvailabilityManager(cluster=cluster, target_loss=0.5)
        cluster.run(30.0)
        decision = manager.evaluate()
        assert decision.num_backups == 0

    def test_spawn_needed_when_cluster_too_small(self):
        cluster = make_vod_cluster(n_servers=2, replication=2)
        manager = AvailabilityManager(
            cluster=cluster, target_loss=1e-9, max_backups=4
        )
        for t in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
            manager.record_crash(t)
        cluster.run(5.0)
        decision = manager.evaluate()
        assert decision.spawn_needed > 0

    def test_periodic_evaluation(self):
        cluster = make_vod_cluster()
        manager = AvailabilityManager(cluster=cluster, target_loss=1e-3)
        manager.start(period=2.0)
        cluster.run(7.0)
        assert len(manager.decisions) == 3

    def test_injector_reports_crashes_to_manager(self):
        from repro.faults.injector import inject
        from repro.faults.schedule import FaultSchedule

        cluster = make_vod_cluster()
        manager = AvailabilityManager(cluster=cluster, target_loss=1e-3)
        cluster.availability_manager = manager
        inject(cluster, FaultSchedule().crash(1.0, "s1"))
        cluster.run(2.0)
        assert len(manager.crash_times) == 1

    def test_new_sessions_pick_up_adjusted_policy(self):
        cluster = make_vod_cluster(num_backups=0)
        cluster.policy.num_backups = 2  # as the manager would
        client = cluster.add_client("late")
        handle = client.start_session("m0")
        cluster.run(3.0)
        primary = cluster.primaries_of(handle.session_id)[0]
        record = cluster.servers[primary].unit_dbs["m0"].get(handle.session_id)
        assert len(record.backups) == 2
