"""Framework integration tests: the Section 3.3/3.4 behaviours."""

import pytest

from repro.core.wire import content_group, session_group
from tests.core.conftest import make_vod_cluster, start_streaming_session


# ---------------------------------------------------------------------------
# discovery and session establishment
# ---------------------------------------------------------------------------


def test_client_discovers_catalog(vod_cluster):
    client = vod_cluster.add_client("c0")
    client.connect()
    vod_cluster.run(1.0)
    assert client.catalog == {"m0": "content:m0"}


def test_session_starts_and_client_notified(streaming):
    cluster, client, handle = streaming
    assert handle.started
    assert handle.primary_seen in cluster.servers


def test_exactly_one_primary_selected(streaming):
    cluster, client, handle = streaming
    assert len(cluster.primaries_of(handle.session_id)) == 1


def test_backups_join_session_group(streaming):
    cluster, client, handle = streaming
    backup_holders = [
        sid
        for sid, server in cluster.servers.items()
        if handle.session_id in server.backup_sessions()
    ]
    assert len(backup_holders) == 1  # num_backups=1
    primary = cluster.primaries_of(handle.session_id)[0]
    group_members = cluster.servers[primary].daemon.members_of(
        session_group(handle.session_id)
    )
    assert set(group_members) == {primary, *backup_holders}


def test_responses_stream_to_client(streaming):
    cluster, client, handle = streaming
    assert len(handle.received) > 10
    indices = handle.response_indices()
    assert indices == sorted(indices)
    assert indices[0] == 0


def test_unit_databases_identical_across_replicas(streaming):
    cluster, client, handle = streaming
    cluster.run(1.0)
    dbs = [
        server.unit_dbs["m0"]
        for server in cluster.servers.values()
        if server.is_up()
    ]
    for other in dbs[1:]:
        assert dbs[0].equals(other)


def test_session_records_allocation_in_db(streaming):
    cluster, client, handle = streaming
    primary = cluster.primaries_of(handle.session_id)[0]
    record = cluster.servers[primary].unit_dbs["m0"].get(handle.session_id)
    assert record.primary == primary
    assert len(record.backups) == 1


def test_duplicate_start_session_is_ignored(vod_cluster):
    client = vod_cluster.add_client("c0")
    handle = client.start_session("m0")
    # client retry through a second contact produces a duplicate multicast
    from repro.core.wire import StartSession

    client.gcs.mcast(
        content_group("m0"),
        StartSession(
            client_id=client.client_id,
            session_id=handle.session_id,
            unit_id="m0",
            params=None,
        ),
    )
    vod_cluster.run(3.0)
    assert len(vod_cluster.primaries_of(handle.session_id)) == 1


# ---------------------------------------------------------------------------
# context updates
# ---------------------------------------------------------------------------


def test_skip_update_moves_stream(streaming):
    cluster, client, handle = streaming
    client.send_update(handle, {"op": "skip", "to": 500})
    cluster.run(2.0)
    tail = handle.response_indices()[-5:]
    assert all(index >= 500 for index in tail)


def test_pause_and_resume(streaming):
    cluster, client, handle = streaming
    client.send_update(handle, {"op": "pause"})
    cluster.run(1.0)
    count_at_pause = len(handle.received)
    cluster.run(2.0)
    assert len(handle.received) <= count_at_pause + 1  # at most one in flight
    client.send_update(handle, {"op": "resume"})
    cluster.run(2.0)
    assert len(handle.received) > count_at_pause + 5


def test_rate_change(streaming):
    cluster, client, handle = streaming
    before = len(handle.received)
    client.send_update(handle, {"op": "rate", "value": 40.0})
    cluster.run(2.0)
    received_after = len(handle.received) - before
    assert received_after > 2.0 * 10 * 1.5  # noticeably faster than 10 fps


def test_backup_records_updates(streaming):
    cluster, client, handle = streaming
    backup = next(
        server
        for server in cluster.servers.values()
        if handle.session_id in server.backup_sessions()
    )
    client.send_update(handle, {"op": "skip", "to": 700})
    cluster.run(1.0)
    backup_ctx = backup.backups[handle.session_id]
    assert backup_ctx.effective_update_counter >= 1


def test_backup_freshness_invariant(streaming):
    """Backups' knowledge of client updates >= unit database's (Section 3.1)."""
    cluster, client, handle = streaming
    for i in range(5):
        client.send_update(handle, {"op": "skip", "to": 100 * (i + 1)})
        cluster.run(0.4)
    for server in cluster.servers.values():
        if handle.session_id in server.backup_sessions():
            backup_counter = server.backups[
                handle.session_id
            ].effective_update_counter
            db_counter = (
                server.unit_dbs["m0"].get(handle.session_id).snapshot.update_counter
            )
            assert backup_counter >= db_counter


# ---------------------------------------------------------------------------
# propagation
# ---------------------------------------------------------------------------


def test_propagation_updates_unit_db(streaming):
    cluster, client, handle = streaming
    cluster.run(2.0)
    for server in cluster.servers.values():
        snapshot = server.unit_dbs["m0"].get(handle.session_id).snapshot
        assert snapshot.epoch >= 1
        assert snapshot.response_counter > 0


def test_propagation_snapshot_lags_bounded_by_period(streaming):
    cluster, client, handle = streaming
    cluster.run(2.0)
    primary_id = cluster.primaries_of(handle.session_id)[0]
    primary = cluster.servers[primary_id]
    live = primary.primaries[handle.session_id].ctx
    snapshot = primary.unit_dbs["m0"].get(handle.session_id).snapshot
    # at 10 fps and 0.5 s period, the snapshot lags <= ~6 frames
    lag = live.response_counter - snapshot.response_counter
    assert 0 <= lag <= 8


def test_propagation_period_respected(vod_cluster):
    client, handle = start_streaming_session(vod_cluster, run=5.0)
    primary_id = vod_cluster.primaries_of(handle.session_id)[0]
    sent = vod_cluster.servers[primary_id].counters["propagations_sent"]
    assert 6 <= sent <= 11  # about 5 s / 0.5 s, allowing start offset


# ---------------------------------------------------------------------------
# teardown
# ---------------------------------------------------------------------------


def test_end_session_cleans_up_everywhere(streaming):
    cluster, client, handle = streaming
    client.end_session(handle)
    cluster.run(3.0)
    assert cluster.primaries_of(handle.session_id) == []
    for server in cluster.servers.values():
        assert handle.session_id not in server.unit_dbs["m0"]
        assert handle.session_id not in server.backup_sessions()


def test_responses_stop_after_end(streaming):
    cluster, client, handle = streaming
    client.end_session(handle)
    cluster.run(1.0)
    count = len(handle.received)
    cluster.run(3.0)
    assert len(handle.received) <= count + 1


def test_movie_completion_stops_stream(vod_cluster):
    client = vod_cluster.add_client("c0")
    handle = client.start_session("m0", params={"start": 1190})
    vod_cluster.run(5.0)
    indices = handle.response_indices()
    assert max(indices) == 1199  # movie has 1200 frames
    count = len(handle.received)
    vod_cluster.run(2.0)
    assert len(handle.received) == count


# ---------------------------------------------------------------------------
# load-balanced placement of many sessions
# ---------------------------------------------------------------------------


def test_sessions_spread_across_servers(vod_cluster):
    handles = []
    for i in range(9):
        client = vod_cluster.add_client(f"c{i}")
        handles.append(client.start_session("m0"))
    vod_cluster.run(4.0)
    primaries = [vod_cluster.primaries_of(h.session_id) for h in handles]
    assert all(len(p) == 1 for p in primaries)
    counts = {}
    for (p,) in primaries:
        counts[p] = counts.get(p, 0) + 1
    assert max(counts.values()) - min(counts.values()) <= 2
    assert len(counts) == 3


def test_gcs_spec_holds_through_framework_run(streaming):
    cluster, client, handle = streaming
    client.send_update(handle, {"op": "skip", "to": 300})
    cluster.run(2.0)
    client.end_session(handle)
    cluster.run(2.0)
    cluster.monitor.check_all()
