"""Framework behaviour under faults: takeover, migration, partitions.

These tests exercise the scenarios of the paper's Section 4 analysis in
miniature; the experiment suite measures them quantitatively.
"""

import pytest

from repro.core.responses import SkipUncertain
from tests.core.conftest import make_vod_cluster, start_streaming_session


# ---------------------------------------------------------------------------
# failure takeover
# ---------------------------------------------------------------------------


def test_primary_crash_fails_over(streaming):
    cluster, client, handle = streaming
    old_primary = cluster.primaries_of(handle.session_id)[0]
    cluster.crash_server(old_primary)
    cluster.run(4.0)
    primaries = cluster.primaries_of(handle.session_id)
    assert len(primaries) == 1
    assert primaries[0] != old_primary


def test_failover_prefers_backup(streaming):
    cluster, client, handle = streaming
    old_primary = cluster.primaries_of(handle.session_id)[0]
    backup = next(
        sid
        for sid, server in cluster.servers.items()
        if handle.session_id in server.backup_sessions()
    )
    cluster.crash_server(old_primary)
    cluster.run(4.0)
    assert cluster.primaries_of(handle.session_id) == [backup]


def test_stream_continues_after_failover(streaming):
    cluster, client, handle = streaming
    count_before = len(handle.received)
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(6.0)
    assert len(handle.received) > count_before + 20


def test_failover_duplicates_bounded_by_propagation_window(streaming):
    """ResendAll at 10 fps and T=0.5 s: expect roughly <= T * rate + a few
    detection-time frames of duplicates, not dozens (Section 3.1)."""
    cluster, client, handle = streaming
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(6.0)
    indices = handle.response_indices()
    duplicates = len(indices) - len(set(indices))
    assert 1 <= duplicates <= 15


def test_failover_no_frame_loss_with_resend_all(streaming):
    cluster, client, handle = streaming
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(6.0)
    indices = handle.response_indices()
    seen = set(indices)
    assert seen == set(range(max(seen) + 1))  # gap-free


def test_skip_policy_avoids_duplicates_but_loses_frames():
    cluster = make_vod_cluster(uncertainty_policy=SkipUncertain())
    client, handle = start_streaming_session(cluster)
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(6.0)
    indices = handle.response_indices()
    duplicates = len(indices) - len(set(indices))
    assert duplicates == 0
    missing = set(range(max(indices) + 1)) - set(indices)
    assert missing  # the uncertainty window was skipped


def test_client_update_survives_failover_via_backup(streaming):
    """The paper's key claim for backups: client context updates are not
    lost on migration to a backup."""
    cluster, client, handle = streaming
    client.send_update(handle, {"op": "skip", "to": 800})
    cluster.run(0.1)  # update reaches session group; propagation hasn't run
    cluster.crash_server(cluster.primaries_of(handle.session_id)[0])
    cluster.run(5.0)
    tail = handle.response_indices()[-10:]
    assert all(index >= 800 for index in tail)


def test_update_lost_without_backups_in_window():
    """With num_backups=0 ([2]'s design), an update arriving just before
    the crash and after the last propagation can be lost."""
    cluster = make_vod_cluster(num_backups=0, propagation_period=5.0)
    client, handle = start_streaming_session(cluster)
    primary = cluster.primaries_of(handle.session_id)[0]
    # Deliver the update, then crash before the (5 s) propagation fires.
    client.send_update(handle, {"op": "skip", "to": 900})
    cluster.run(0.3)
    cluster.crash_server(primary)
    cluster.run(6.0)
    tail = handle.response_indices()[-5:]
    assert tail and all(index < 900 for index in tail)  # context regressed


def test_double_crash_with_two_backups():
    cluster = make_vod_cluster(n_servers=4, replication=4, num_backups=2)
    client, handle = start_streaming_session(cluster)
    for _ in range(2):
        primary = cluster.primaries_of(handle.session_id)[0]
        cluster.crash_server(primary)
        cluster.run(4.0)
    assert len(cluster.primaries_of(handle.session_id)) == 1
    count = len(handle.received)
    cluster.run(3.0)
    assert len(handle.received) > count


def test_total_content_group_crash_is_outage(streaming):
    cluster, client, handle = streaming
    for server_id in list(cluster.servers):
        cluster.crash_server(server_id)
    cluster.run(2.0)
    count = len(handle.received)
    cluster.run(5.0)
    assert len(handle.received) == count  # nobody can serve
    assert cluster.primaries_of(handle.session_id) == []


# ---------------------------------------------------------------------------
# recovery / join-type changes (state exchange)
# ---------------------------------------------------------------------------


def test_recovered_server_reintegrates(streaming):
    cluster, client, handle = streaming
    victim = cluster.primaries_of(handle.session_id)[0]
    cluster.crash_server(victim)
    cluster.run(4.0)
    cluster.recover_server(victim)
    cluster.run(6.0)
    # the recovered server has a merged database again
    db = cluster.servers[victim].unit_dbs["m0"]
    assert handle.session_id in db
    cluster.monitor.check_all()


def test_join_triggers_state_exchange(streaming):
    cluster, client, handle = streaming
    victim = next(
        sid
        for sid in cluster.servers
        if sid not in cluster.primaries_of(handle.session_id)
    )
    cluster.crash_server(victim)
    cluster.run(4.0)
    before = {
        sid: server.counters["exchanges_started"]
        for sid, server in cluster.servers.items()
    }
    cluster.recover_server(victim)
    cluster.run(6.0)
    started = sum(
        server.counters["exchanges_started"] - before[sid]
        for sid, server in cluster.servers.items()
    )
    assert started >= 2  # every member of the new view exchanges


def test_rebalance_distributes_to_joiner():
    cluster = make_vod_cluster(n_servers=3, replication=3)
    handles = []
    for i in range(9):
        client = cluster.add_client(f"c{i}")
        handles.append(client.start_session("m0"))
    cluster.run(4.0)
    cluster.crash_server("s2")
    cluster.run(4.0)
    cluster.recover_server("s2")
    cluster.run(8.0)
    counts = {}
    for handle in handles:
        primaries = cluster.primaries_of(handle.session_id)
        assert len(primaries) == 1
        counts[primaries[0]] = counts.get(primaries[0], 0) + 1
    assert counts.get("s2", 0) >= 2  # the joiner took a fair share


def test_controlled_migration_preserves_context():
    """A rebalance-driven migration (old primary alive) must not lose the
    client's context: the handoff carries the exact state."""
    cluster = make_vod_cluster(n_servers=3, replication=3)
    handles = []
    clients = []
    for i in range(6):
        client = cluster.add_client(f"c{i}")
        clients.append(client)
        handles.append(client.start_session("m0"))
    cluster.run(3.0)
    # park every session at a distinctive position
    for i, (client, handle) in enumerate(zip(clients, handles)):
        client.send_update(handle, {"op": "skip", "to": 400 + i})
    cluster.run(1.0)
    cluster.crash_server("s2")
    cluster.run(3.0)
    cluster.recover_server("s2")
    cluster.run(8.0)
    for i, handle in enumerate(handles):
        tail = handle.response_indices()[-3:]
        assert tail and all(index >= 400 for index in tail), (i, tail[-5:])


# ---------------------------------------------------------------------------
# partitions
# ---------------------------------------------------------------------------


def test_partition_majority_side_keeps_serving(streaming):
    cluster, client, handle = streaming
    primary = cluster.primaries_of(handle.session_id)[0]
    others = [s for s in cluster.servers if s != primary]
    # isolate the primary; client stays connected to the others
    cluster.partition({primary}, set(others) | {client.client_id})
    cluster.run(6.0)
    live_primaries = [
        s
        for s in cluster.primaries_of(handle.session_id)
        if s != primary
    ]
    assert len(live_primaries) == 1
    recent = [r for r in handle.received if r.time > cluster.sim.now - 2.0]
    assert recent and all(r.sender == live_primaries[0] for r in recent)


def test_partition_heal_restores_single_primary(streaming):
    cluster, client, handle = streaming
    primary = cluster.primaries_of(handle.session_id)[0]
    others = [s for s in cluster.servers if s != primary]
    cluster.partition({primary}, set(others) | {client.client_id})
    cluster.run(5.0)
    cluster.heal()
    cluster.run(8.0)
    assert len(cluster.primaries_of(handle.session_id)) == 1
    cluster.monitor.check_all()


def test_non_transitive_cut_can_create_two_primaries():
    """The WAN scenario of Section 4: two servers cannot talk to each
    other but both can talk to the client -> both may serve the session."""
    cluster = make_vod_cluster(n_servers=2, replication=2, num_backups=1)
    client, handle = start_streaming_session(cluster)
    topo = cluster.network.topology
    topo.cut_link("s0", "s1")  # client keeps both links
    cluster.run(6.0)
    primaries = cluster.primaries_of(handle.session_id)
    assert len(primaries) == 2
    senders = {r.sender for r in handle.received if r.time > cluster.sim.now - 2.0}
    assert len(senders) == 2  # the client hears two 'primaries'
