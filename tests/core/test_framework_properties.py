"""Property-based framework tests: invariants under randomized schedules.

Hypothesis drives random sequences of crashes, recoveries, client updates
and waits against a VoD deployment, then checks the paper's design-goal
invariants:

* after stabilization there is exactly one primary per live session;
* unit databases are identical across all members of the content view;
* a backup's effective update counter is >= the unit database's (the
  paper's freshness ordering);
* the GCS spec monitor stays clean (total order, virtual synchrony, ...).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.core.conftest import make_vod_cluster

N_SERVERS = 3

action_strategy = st.one_of(
    st.tuples(st.just("crash"), st.integers(min_value=0, max_value=N_SERVERS - 1)),
    st.tuples(st.just("recover"), st.integers(min_value=0, max_value=N_SERVERS - 1)),
    st.tuples(st.just("skip"), st.integers(min_value=0, max_value=1000)),
    st.tuples(st.just("pause"), st.just(0)),
    st.tuples(st.just("resume"), st.just(0)),
    st.tuples(st.just("wait"), st.integers(min_value=1, max_value=30)),
)


def run_schedule(actions):
    cluster = make_vod_cluster(
        n_servers=N_SERVERS, replication=N_SERVERS, num_backups=1, frame_rate=5.0
    )
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(3.0)
    for action, arg in actions:
        if action == "crash":
            cluster.servers[f"s{arg}"].crash()
        elif action == "recover":
            server = cluster.servers[f"s{arg}"]
            if not server.is_up():
                server.recover()
        elif action == "skip":
            client.send_update(handle, {"op": "skip", "to": arg})
        elif action == "pause":
            client.send_update(handle, {"op": "pause"})
        elif action == "resume":
            client.send_update(handle, {"op": "resume"})
        elif action == "wait":
            cluster.run(arg / 10.0)
        cluster.run(0.05)
    # stabilize: everyone back up, long settle
    for server in cluster.servers.values():
        if not server.is_up():
            server.recover()
    cluster.run(8.0)
    return cluster, client, handle


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(action_strategy, min_size=1, max_size=8))
def test_framework_invariants_after_stabilization(actions):
    cluster, client, handle = run_schedule(actions)

    # exactly one primary for the session (if it survived total loss)
    primaries = cluster.primaries_of(handle.session_id)
    session_known = any(
        handle.session_id in server.unit_dbs["m0"]
        for server in cluster.servers.values()
    )
    if session_known:
        assert len(primaries) == 1, primaries
    else:
        assert primaries == []

    # unit databases identical across live members
    dbs = [
        server.unit_dbs["m0"]
        for server in cluster.servers.values()
        if server.is_up()
    ]
    for other in dbs[1:]:
        assert dbs[0].equals(other)

    # backup freshness invariant
    for server in cluster.servers.values():
        if not server.is_up():
            continue
        for session_id in server.backup_sessions():
            record = server.unit_dbs["m0"].get(session_id)
            if record is None:
                continue
            assert (
                server.backups[session_id].effective_update_counter
                >= record.snapshot.update_counter
            )

    # GCS safety held throughout
    cluster.monitor.check_all()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(
        st.integers(min_value=0, max_value=550), min_size=1, max_size=6
    )
)
def test_last_skip_wins_after_stabilization(skips):
    """Whatever interleaving of skips and faults, once stable the stream
    position reflects the *last* skip (no context regression)."""
    cluster = make_vod_cluster(
        n_servers=3, replication=3, num_backups=1, frame_rate=5.0
    )
    client = cluster.add_client("c0")
    handle = client.start_session("m0")
    cluster.run(3.0)
    for index, target in enumerate(skips):
        client.send_update(handle, {"op": "skip", "to": target})
        if index == len(skips) // 2:
            primaries = cluster.primaries_of(handle.session_id)
            if primaries:
                cluster.servers[primaries[0]].crash()
        cluster.run(0.4)
    cluster.run(6.0)
    tail = handle.response_indices()[-3:]
    if tail:
        # the position must reflect (at least) the last skip: the movie is
        # 600 frames, skips stay <= 550, and streaming only advances
        last = skips[-1]
        assert tail[-1] >= last, (skips, tail)
