"""The full framework over lossy links.

Ordered traffic (updates, propagations, state exchange) is recovered by
the GCS's retransmission machinery, so context is never lost to packet
loss; responses ride plain point-to-point sends and lose roughly the loss
rate of frames — exactly the UDP-like behaviour a real VoD service has.
"""

import pytest

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.services import VodApplication, build_movie


@pytest.fixture(scope="module")
def lossy_cluster():
    movie = build_movie("m0", duration_seconds=300, frame_rate=10)
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"m0": VodApplication({"m0": movie})},
        replication=3,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=0.5),
        seed=17,
        loss_probability=0.05,
        trace=False,
    )
    cluster.settle()
    return cluster


def test_session_establishes_despite_loss(lossy_cluster):
    client = lossy_cluster.add_client("c0")
    handle = client.start_session("m0")
    lossy_cluster.run(5.0)
    assert handle.started
    assert len(lossy_cluster.primaries_of(handle.session_id)) == 1


def test_updates_reliable_frames_lossy(lossy_cluster):
    client = lossy_cluster.add_client("c1")
    handle = client.start_session("m0")
    lossy_cluster.run(4.0)
    # context updates are carried by the GCS: reliable despite loss
    client.send_update(handle, {"op": "skip", "to": 1500})
    lossy_cluster.run(4.0)
    indices = [r.index for r in handle.received if r.index >= 1500]
    assert indices, "the skip must take effect despite packet loss"
    # frames are point-to-point: expect ~5% of them missing
    received = set(indices)
    expected = set(range(1500, max(received) + 1))
    loss_rate = 1 - len(received) / len(expected)
    assert 0.0 <= loss_rate < 0.2


def test_failover_under_loss(lossy_cluster):
    client = lossy_cluster.add_client("c2")
    handle = client.start_session("m0")
    lossy_cluster.run(4.0)
    victim = lossy_cluster.primaries_of(handle.session_id)[0]
    lossy_cluster.crash_server(victim)
    lossy_cluster.run(6.0)
    survivors = lossy_cluster.primaries_of(handle.session_id)
    assert len(survivors) == 1 and survivors[0] != victim
    recent = [r for r in handle.received if r.time > lossy_cluster.sim.now - 2.0]
    assert recent
    lossy_cluster.monitor.check_all()
