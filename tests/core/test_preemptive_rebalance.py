"""Tests for preemptive load-balancing migration (Section 3.1)."""

import pytest

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.core.selection import jain_fairness
from repro.services import VodApplication, build_movie


def skewed_cluster():
    """All sessions land on s0/s1 (s2 joins later without a rebalance)."""
    movie = build_movie("m0", duration_seconds=600, frame_rate=5)
    cluster = ServiceCluster.build(
        n_servers=3,
        units={"m0": VodApplication({"m0": movie})},
        replication=3,
        policy=AvailabilityPolicy(
            num_backups=1, propagation_period=0.5, rebalance_on_join=False
        ),
        seed=23,
        trace=False,
    )
    cluster.crash_server("s2")
    cluster.settle()
    handles = []
    for index in range(8):
        client = cluster.add_client(f"c{index}")
        handles.append(client.start_session("m0"))
    cluster.run(4.0)
    cluster.recover_server("s2")
    cluster.run(5.0)
    return cluster, handles


def primary_counts(cluster, handles):
    counts = {}
    for handle in handles:
        for primary in cluster.primaries_of(handle.session_id):
            counts[primary] = counts.get(primary, 0) + 1
    return counts


def test_skew_exists_without_rebalance():
    cluster, handles = skewed_cluster()
    counts = primary_counts(cluster, handles)
    assert counts.get("s2", 0) == 0  # the ablation left s2 idle


def test_preemptive_rebalance_evens_load():
    cluster, handles = skewed_cluster()
    cluster.servers["s0"].request_rebalance("m0")
    cluster.run(5.0)
    counts = primary_counts(cluster, handles)
    assert jain_fairness(list(counts.values())) > 0.95
    assert counts.get("s2", 0) >= 2


def test_preemptive_migration_preserves_context():
    cluster, handles = skewed_cluster()
    clients = list(cluster.clients.values())
    for index, handle in enumerate(handles):
        clients[index].send_update(handle, {"op": "skip", "to": 1000 + index})
    cluster.run(1.0)
    cluster.servers["s1"].request_rebalance("m0")
    cluster.run(5.0)
    for index, handle in enumerate(handles):
        tail = [r.index for r in handle.received][-3:]
        assert tail and all(i >= 1000 for i in tail), (index, tail)


def test_rebalance_keeps_single_primary_everywhere():
    cluster, handles = skewed_cluster()
    cluster.servers["s0"].request_rebalance("m0")
    cluster.run(5.0)
    for handle in handles:
        assert len(cluster.primaries_of(handle.session_id)) == 1
    cluster.monitor.check_all()


def test_rebalance_on_unhosted_unit_rejected():
    cluster, handles = skewed_cluster()
    with pytest.raises(ValueError):
        cluster.servers["s0"].request_rebalance("nope")


def test_rebalance_noop_when_balanced():
    cluster, handles = skewed_cluster()
    cluster.servers["s0"].request_rebalance("m0")
    cluster.run(5.0)
    before = primary_counts(cluster, handles)
    cluster.servers["s0"].request_rebalance("m0")
    cluster.run(5.0)
    assert primary_counts(cluster, handles) == before
