"""Unit tests for the uncertainty policies and the availability policy."""

import pytest

from repro.core.config import AvailabilityPolicy
from repro.core.responses import (
    ResendAll,
    SelectiveResend,
    SkipUncertain,
    mpeg_policy,
)
from repro.services.content import build_movie
from repro.services.vod import VodApplication


@pytest.fixture
def vod():
    movie = build_movie("m", duration_seconds=10, frame_rate=10)
    return VodApplication({"m": movie})


@pytest.fixture
def state(vod):
    return vod.initial_state("m", {})


class TestResendAll:
    def test_no_skip_no_presend(self, vod, state):
        new_state, resend = ResendAll().resolve(vod, state, estimated_uncertain=7)
        assert new_state.position == state.position
        assert resend == []


class TestSkipUncertain:
    def test_advances_past_window(self, vod, state):
        new_state, resend = SkipUncertain().resolve(vod, state, 7)
        assert new_state.position == state.position + 7
        assert resend == []

    def test_zero_window_noop(self, vod, state):
        new_state, _ = SkipUncertain().resolve(vod, state, 0)
        assert new_state.position == state.position

    def test_clamped_at_movie_end(self, vod, state):
        new_state, _ = SkipUncertain().resolve(vod, state, 10_000)
        assert new_state.position == vod.movie("m").n_frames


class TestSelectiveResend:
    def test_keeps_only_matching_classes(self, vod, state):
        policy = SelectiveResend(keep=lambda r: r.klass == "I")
        new_state, resend = policy.resolve(vod, state, 12)
        # GOP "IBBPBBPBBPBB": one I frame per 12 frames
        assert [r.klass for r in resend] == ["I"]
        assert new_state.position == state.position + 12

    def test_mpeg_policy_prefers_i_frames(self, vod, state):
        new_state, resend = mpeg_policy().resolve(vod, state, 24)
        assert all(r.klass == "I" for r in resend)
        assert len(resend) == 2

    def test_stops_at_stream_end(self, vod):
        near_end = vod.advance(vod.initial_state("m", {}), 95)
        policy = SelectiveResend(keep=lambda r: True)
        new_state, resend = policy.resolve(vod, near_end, 50)
        assert len(resend) == 5  # only 5 frames remained
        assert vod.is_finished(new_state)


class TestAvailabilityPolicy:
    def test_defaults(self):
        policy = AvailabilityPolicy()
        assert policy.num_backups == 1
        assert policy.propagation_period == 0.5
        assert policy.session_group_size == 2

    def test_no_backup_matches_vod_paper(self):
        policy = AvailabilityPolicy(num_backups=0)
        assert policy.session_group_size == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityPolicy(num_backups=-1)
        with pytest.raises(ValueError):
            AvailabilityPolicy(propagation_period=0.0)
