"""Scale sanity: a larger deployment (8 servers, 3 units, 24 sessions)
behaves correctly through a rolling restart."""

import pytest

from repro.core import AvailabilityPolicy, ServiceCluster
from repro.services import VodApplication, build_movie


@pytest.fixture(scope="module")
def big_cluster():
    movies = {
        f"m{i}": build_movie(f"m{i}", duration_seconds=600, frame_rate=5)
        for i in range(3)
    }
    app = VodApplication(movies)
    cluster = ServiceCluster.build(
        n_servers=8,
        units={unit: app for unit in movies},
        replication=4,
        policy=AvailabilityPolicy(num_backups=1, propagation_period=0.5),
        seed=33,
        trace=False,
    )
    cluster.settle()
    handles = []
    for index in range(24):
        client = cluster.add_client(f"c{index}")
        handles.append(client.start_session(f"m{index % 3}"))
    cluster.run(5.0)
    return cluster, handles


def test_partial_replication_placement(big_cluster):
    cluster, handles = big_cluster
    for unit, hosts in cluster.placement.items():
        assert len(hosts) == 4
    # not every server hosts every unit (partial replication, §2)
    host_sets = {frozenset(hosts) for hosts in cluster.placement.values()}
    assert len(host_sets) == 3


def test_all_sessions_have_unique_primary(big_cluster):
    cluster, handles = big_cluster
    for handle in handles:
        assert len(cluster.primaries_of(handle.session_id)) == 1


def test_primaries_respect_placement(big_cluster):
    cluster, handles = big_cluster
    for handle in handles:
        (primary,) = cluster.primaries_of(handle.session_id)
        assert primary in cluster.hosts_of(handle.unit_id)


def test_rolling_restart_preserves_all_sessions(big_cluster):
    cluster, handles = big_cluster
    for server_id in list(cluster.servers)[:4]:
        cluster.crash_server(server_id)
        cluster.run(3.0)
        cluster.recover_server(server_id)
        cluster.run(5.0)
    for handle in handles:
        primaries = cluster.primaries_of(handle.session_id)
        assert len(primaries) == 1, (handle.session_id, primaries)
    # streams kept flowing for everyone
    for handle in handles:
        recent = [r for r in handle.received if r.time > cluster.sim.now - 3.0]
        assert recent, handle.session_id


def test_dbs_consistent_per_unit_after_churn(big_cluster):
    cluster, handles = big_cluster
    cluster.run(2.0)
    for unit, hosts in cluster.placement.items():
        dbs = [
            cluster.servers[h].unit_dbs[unit]
            for h in hosts
            if cluster.servers[h].is_up()
        ]
        for other in dbs[1:]:
            assert dbs[0].equals(other), unit
