"""Unit tests for deterministic primary/backup selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.context import ContextSnapshot
from repro.core.selection import (
    allocate_sessions,
    jain_fairness,
    select_for_session,
)
from repro.core.unit_db import UnitDatabase


def snap():
    return ContextSnapshot(app_state={}, stamped_at=0.0)


def make_db(allocations):
    """allocations: dict sid -> (primary, backups)"""
    db = UnitDatabase("u")
    for sid, (primary, backups) in allocations.items():
        db.add_session(sid, f"client-{sid}", None, snap())
        db.set_allocation(sid, primary, backups)
    return db


def record(primary, backups):
    db = make_db({"s": (primary, tuple(backups))})
    return db.get("s")


class TestSelectForSession:
    def test_prefers_surviving_primary(self):
        rec = record("s1", ("s2",))
        loads = {"s0": 0.0, "s1": 5.0, "s2": 0.0}
        primary, backups = select_for_session(rec, ["s0", "s1", "s2"], 1, loads)
        assert primary == "s1"  # kept despite heavy load

    def test_falls_back_to_first_surviving_backup(self):
        rec = record("dead", ("also-dead", "s2"))
        loads = {"s0": 0.0, "s2": 9.0}
        primary, _ = select_for_session(rec, ["s0", "s2"], 1, loads)
        assert primary == "s2"

    def test_falls_back_to_least_loaded(self):
        rec = record("dead", ("dead2",))
        loads = {"s0": 3.0, "s1": 1.0}
        primary, _ = select_for_session(rec, ["s0", "s1"], 0, loads)
        assert primary == "s1"

    def test_backups_prefer_former_backups(self):
        rec = record("s0", ("s1", "s2"))
        loads = {"s0": 0.0, "s1": 9.0, "s2": 9.0, "s3": 0.0}
        _, backups = select_for_session(rec, ["s0", "s1", "s2", "s3"], 2, loads)
        assert backups == ("s1", "s2")

    def test_backups_filled_from_least_loaded(self):
        rec = record("s0", ())
        loads = {"s0": 0.0, "s1": 2.0, "s2": 1.0}
        _, backups = select_for_session(rec, ["s0", "s1", "s2"], 2, loads)
        assert backups == ("s2", "s1")

    def test_primary_never_doubles_as_backup(self):
        rec = record("s0", ("s0",))
        loads = {"s0": 0.0, "s1": 0.0}
        primary, backups = select_for_session(rec, ["s0", "s1"], 1, loads)
        assert primary == "s0"
        assert "s0" not in backups

    def test_backup_count_capped_by_membership(self):
        rec = record("s0", ())
        loads = {"s0": 0.0, "s1": 0.0}
        _, backups = select_for_session(rec, ["s0", "s1"], 5, loads)
        assert backups == ("s1",)

    def test_empty_membership(self):
        rec = record("s0", ())
        assert select_for_session(rec, [], 1, {}) == (None, ())

    def test_charges_loads(self):
        rec = record(None, ())
        loads = {"s0": 0.0, "s1": 0.0}
        select_for_session(rec, ["s0", "s1"], 1, loads)
        assert loads["s0"] == 1.0  # deterministic tie-break: s0 primary
        assert loads["s1"] == 0.25


class TestAllocateSessions:
    def test_failure_mode_preserves_surviving_roles(self):
        db = make_db(
            {"a": ("s0", ("s1",)), "b": ("s1", ("s2",)), "c": ("s2", ("s0",))}
        )
        allocation = allocate_sessions(db, ["s0", "s1"], 1, rebalance=False)
        assert allocation["a"][0] == "s0"
        assert allocation["b"][0] == "s1"
        assert allocation["c"][0] == "s0"  # former backup s0 takes over

    def test_failure_mode_fills_missing_backups(self):
        db = make_db({"a": ("s0", ("dead",))})
        allocation = allocate_sessions(db, ["s0", "s1", "s2"], 1, rebalance=False)
        primary, backups = allocation["a"]
        assert primary == "s0"
        assert len(backups) == 1 and backups[0] in ("s1", "s2")

    def test_rebalance_spreads_sessions_evenly(self):
        db = make_db({f"s{i:02d}": ("s0", ()) for i in range(12)})
        allocation = allocate_sessions(
            db, ["s0", "s1", "s2", "s3"], 0, rebalance=True
        )
        counts = {}
        for primary, _ in allocation.values():
            counts[primary] = counts.get(primary, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1
        assert set(counts) == {"s0", "s1", "s2", "s3"}

    def test_rebalance_fairness_index_high(self):
        db = make_db({f"x{i:03d}": (None, ()) for i in range(40)})
        allocation = allocate_sessions(db, [f"s{i}" for i in range(5)], 1, True)
        counts = {f"s{i}": 0.0 for i in range(5)}
        for primary, _ in allocation.values():
            counts[primary] += 1
        assert jain_fairness(list(counts.values())) > 0.95

    def test_empty_membership_unassigns(self):
        db = make_db({"a": ("s0", ())})
        allocation = allocate_sessions(db, [], 1, rebalance=False)
        assert allocation["a"] == (None, ())

    def test_deterministic_across_calls(self):
        db = make_db({f"x{i}": (None, ()) for i in range(9)})
        a1 = allocate_sessions(db, ["s0", "s1", "s2"], 2, rebalance=True)
        a2 = allocate_sessions(db, ["s0", "s1", "s2"], 2, rebalance=True)
        assert a1 == a2


class TestJainFairness:
    def test_perfectly_even(self):
        assert jain_fairness([3, 3, 3]) == pytest.approx(1.0)

    def test_single_server_hogging(self):
        assert jain_fairness([9, 0, 0]) == pytest.approx(1 / 3)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0


@given(
    n_sessions=st.integers(min_value=0, max_value=30),
    n_servers=st.integers(min_value=1, max_value=6),
    n_backups=st.integers(min_value=0, max_value=3),
)
def test_allocation_invariants(n_sessions, n_servers, n_backups):
    """For any population: every session gets a primary from the view,
    backups are distinct from the primary, and sizes respect the policy."""
    db = make_db({f"x{i:02d}": (None, ()) for i in range(n_sessions)})
    members = [f"s{i}" for i in range(n_servers)]
    allocation = allocate_sessions(db, members, n_backups, rebalance=True)
    assert set(allocation) == set(db.session_ids())
    for primary, backups in allocation.values():
        assert primary in members
        assert primary not in backups
        assert len(backups) == min(n_backups, n_servers - 1)
        assert len(set(backups)) == len(backups)
