"""Tests for dynamic server spawning and client session resumption."""

import pytest

from repro.core.manager import AvailabilityManager
from tests.core.conftest import make_vod_cluster, start_streaming_session


class TestSpawnServer:
    def test_spawned_server_joins_and_serves(self):
        cluster = make_vod_cluster(n_servers=2, replication=2)
        client, handle = start_streaming_session(cluster)
        new = cluster.spawn_server("s9")
        cluster.run(8.0)
        assert new.is_up()
        # the newcomer merged into the single configuration
        assert set(new.daemon.config.members) == {"s0", "s1", "s9"}
        # and learned the session through the state exchange
        assert handle.session_id in new.unit_dbs["m0"]

    def test_spawned_server_takes_new_sessions(self):
        cluster = make_vod_cluster(n_servers=2, replication=2)
        handles = []
        for index in range(4):
            client = cluster.add_client(f"c{index}")
            handles.append(client.start_session("m0"))
        cluster.run(4.0)
        cluster.spawn_server("s9")
        cluster.run(8.0)
        late = cluster.add_client("late")
        late_handles = [late.start_session("m0") for _ in range(3)]
        cluster.run(4.0)
        primaries = set()
        for handle in handles + late_handles:
            primaries.update(cluster.primaries_of(handle.session_id))
        assert "s9" in primaries  # the newcomer carries load

    def test_existing_daemons_heartbeat_newcomer(self):
        cluster = make_vod_cluster(n_servers=2, replication=2)
        cluster.spawn_server("s9")
        for server in cluster.servers.values():
            assert "s9" in server.daemon.world

    def test_duplicate_id_rejected(self):
        cluster = make_vod_cluster()
        with pytest.raises(ValueError):
            cluster.spawn_server("s0")

    def test_manager_auto_spawn(self):
        cluster = make_vod_cluster(n_servers=2, replication=2)
        manager = AvailabilityManager(
            cluster=cluster, target_loss=1e-9, max_backups=4, auto_spawn=True
        )
        cluster.availability_manager = manager
        for t in (0.5, 1.0, 1.5, 2.0, 2.5):
            manager.record_crash(t)
        cluster.run(3.0)
        decision = manager.evaluate()
        assert decision.spawn_needed > 0
        assert len(manager.spawned) == decision.spawn_needed
        cluster.run(6.0)
        for server_id in manager.spawned:
            assert cluster.servers[server_id].is_up()
        cluster.monitor.check_all()


class TestResumeSession:
    def test_resume_after_total_loss(self):
        cluster = make_vod_cluster(n_servers=2, replication=2)
        client, handle = start_streaming_session(cluster)
        last_seen = handle.received[-1].index
        # total content loss: both replicas die and come back empty
        cluster.crash_server("s0")
        cluster.crash_server("s1")
        cluster.run(3.0)
        cluster.recover_server("s0")
        cluster.recover_server("s1")
        cluster.run(4.0)
        assert cluster.primaries_of(handle.session_id) == []
        # the client resumes near where it stopped
        resumed = client.resume_session(handle, params={"start": last_seen + 1})
        cluster.run(4.0)
        assert resumed.started
        assert resumed.resumed_from == handle.session_id
        indices = [r.index for r in resumed.received]
        assert indices and indices[0] == last_seen + 1

    def test_resume_closes_old_handle(self):
        cluster = make_vod_cluster()
        client, handle = start_streaming_session(cluster)
        resumed = client.resume_session(handle, params={"start": 0})
        assert handle.ended_at is not None
        assert resumed.session_id != handle.session_id
